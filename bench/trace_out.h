// Shared --trace-out / --timeseries-out plumbing for the figure benches.
//
// `--trace-out=PREFIX` attaches the observability sinks (obs/trace.h,
// obs/audit.h) to one designated run of the bench and writes
//   <PREFIX>.trace.json   Chrome trace_event JSON (chrome://tracing, Perfetto)
//   <PREFIX>.audit.jsonl  one decision record per control period
//   <PREFIX>.audit.csv    the same records as a spreadsheet-friendly table
//   <PREFIX>.counters.json  the run's counter/gauge snapshot, plus the
//                           trace sink's own record/drop tallies
//   <PREFIX>.lifecycle.jsonl  per-command issued->acked->applied timelines
//                             (gcinspect --lifecycle), when the run has any
// `--timeseries-out=PREFIX` additionally (or independently) attaches the
// per-control-period recorder (obs/timeseries.h) and writes
//   <PREFIX>.timeseries.csv  the columnar per-period record
//   <PREFIX>.prom            Prometheus text exposition of the counters,
//                            the run's response-time histogram and the
//                            lifecycle per-stage latency histograms
// Both prefixes may be the same; gcinspect consumes the whole artifact set.
// All sinks stay strictly observational, so the printed tables are
// identical with or without the flags.
#pragma once

#include <fstream>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <string>

#include "cp/lifecycle.h"
#include "obs/audit.h"
#include "obs/prometheus.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "sim/metrics.h"
#include "sim/simulation.h"
#include "util/cli.h"

namespace gcbench {

class TraceOut {
 public:
  explicit TraceOut(const gc::CliArgs& args) {
    if (const auto prefix = args.get("trace-out")) {
      if (prefix->empty()) {
        throw std::invalid_argument("--trace-out needs a file prefix");
      }
      prefix_ = *prefix;
    }
    if (const auto prefix = args.get("timeseries-out")) {
      if (prefix->empty()) {
        throw std::invalid_argument("--timeseries-out needs a file prefix");
      }
      ts_prefix_ = *prefix;
    }
  }

  [[nodiscard]] bool enabled() const noexcept {
    return prefix_.has_value() || ts_prefix_.has_value();
  }

  // Wires the sinks into one run's options.  Attach to exactly one run per
  // bench invocation (the sinks are not shareable across parallel runs).
  void attach(gc::SimulationOptions& sim) noexcept {
    if (prefix_) {
      sim.trace = &trace_;
      sim.audit = &audit_;
    }
    if (ts_prefix_) sim.timeseries = &timeseries_;
  }

  void write(const gc::SimResult& result) const {
    if (prefix_) {
      trace_.write_chrome_json(*prefix_ + ".trace.json");
      audit_.write_jsonl(*prefix_ + ".audit.jsonl");
      audit_.write_csv(*prefix_ + ".audit.csv");
      {
        // The trace sink meters itself into the written snapshot so ring
        // overflow is visible offline, not only on stderr.
        gc::CountersSnapshot snap = result.counters;
        snap.add_counter("obs.trace.records", trace_.size());
        snap.add_counter("obs.trace.dropped", trace_.dropped());
        std::ofstream out(*prefix_ + ".counters.json");
        out << snap.to_json() << '\n';
        if (!out) {
          throw std::runtime_error("trace-out: cannot write " + *prefix_ +
                                   ".counters.json");
        }
      }
      if (!result.command_lifecycles.empty()) {
        std::ofstream out(*prefix_ + ".lifecycle.jsonl");
        gc::write_lifecycle_jsonl(out, result.command_lifecycles);
        if (!out) {
          throw std::runtime_error("trace-out: cannot write " + *prefix_ +
                                   ".lifecycle.jsonl");
        }
        std::cerr << "trace-out: " << *prefix_ << ".lifecycle.jsonl ("
                  << result.command_lifecycles.size() << " commands)\n";
      }
      std::cerr << "trace-out: " << *prefix_
                << ".{trace.json,audit.jsonl,audit.csv,"
                << "counters.json} (" << trace_.size() << " trace records, "
                << trace_.dropped() << " dropped; " << audit_.size()
                << " audit records)\n";
      if (trace_.dropped() > 0) {
        // Ring overflow means the trace silently lost its oldest spans —
        // make the gap loud so nobody analyses a truncated trace unaware.
        std::cerr << "trace-out: WARNING: trace ring overflowed; "
                  << trace_.dropped()
                  << " records dropped (raise TraceCollector capacity)\n";
      }
    }
    if (ts_prefix_) {
      timeseries_.write_csv(*ts_prefix_ + ".timeseries.csv");
      // Also drop the counters snapshot under the timeseries prefix when no
      // --trace-out wrote one: gcinspect then finds counters + timeseries
      // side by side under a single prefix.
      if (!prefix_ || *prefix_ != *ts_prefix_) {
        std::ofstream out(*ts_prefix_ + ".counters.json");
        out << result.counters.to_json() << '\n';
        if (!out) {
          throw std::runtime_error("timeseries-out: cannot write " +
                                   *ts_prefix_ + ".counters.json");
        }
      }
      {
        std::ofstream out(*ts_prefix_ + ".prom");
        out << gc::to_prometheus_text(
            result.counters,
            {{"response_time_seconds", &result.response_hist},
             {"cp.lifecycle.ack_latency_seconds", &result.lifecycle_ack_hist},
             {"cp.lifecycle.apply_latency_seconds",
              &result.lifecycle_apply_hist},
             {"cp.lifecycle.e2e_seconds", &result.lifecycle_e2e_hist},
             {"cp.lifecycle.obs_age_seconds", &result.lifecycle_obs_age_hist}});
        if (!out) {
          throw std::runtime_error("timeseries-out: cannot write " +
                                   *ts_prefix_ + ".prom");
        }
      }
      std::cerr << "timeseries-out: " << *ts_prefix_
                << ".{timeseries.csv,prom} (" << timeseries_.size()
                << " rows, stride " << timeseries_.stride() << ", "
                << timeseries_.periods() << " periods)\n";
    }
  }

 private:
  std::optional<std::string> prefix_;
  std::optional<std::string> ts_prefix_;
  gc::TraceCollector trace_;
  gc::DecisionAuditLog audit_;
  gc::TimeSeriesRecorder timeseries_;
};

}  // namespace gcbench
