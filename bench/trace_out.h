// Shared --trace-out plumbing for the figure benches.
//
// `--trace-out=PREFIX` attaches the observability sinks (obs/trace.h,
// obs/audit.h) to one designated run of the bench and writes
//   <PREFIX>.trace.json   Chrome trace_event JSON (chrome://tracing, Perfetto)
//   <PREFIX>.audit.jsonl  one decision record per control period
//   <PREFIX>.audit.csv    the same records as a spreadsheet-friendly table
//   <PREFIX>.counters.json  the run's counter/gauge snapshot
// Tracing stays strictly observational, so the printed tables are identical
// with or without the flag.
#pragma once

#include <fstream>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <string>

#include "obs/audit.h"
#include "obs/trace.h"
#include "sim/metrics.h"
#include "sim/simulation.h"
#include "util/cli.h"

namespace gcbench {

class TraceOut {
 public:
  explicit TraceOut(const gc::CliArgs& args) {
    if (const auto prefix = args.get("trace-out")) {
      if (prefix->empty()) {
        throw std::invalid_argument("--trace-out needs a file prefix");
      }
      prefix_ = *prefix;
    }
  }

  [[nodiscard]] bool enabled() const noexcept { return prefix_.has_value(); }

  // Wires the sinks into one run's options.  Attach to exactly one run per
  // bench invocation (the sinks are not shareable across parallel runs).
  void attach(gc::SimulationOptions& sim) noexcept {
    if (!prefix_) return;
    sim.trace = &trace_;
    sim.audit = &audit_;
  }

  void write(const gc::SimResult& result) const {
    if (!prefix_) return;
    trace_.write_chrome_json(*prefix_ + ".trace.json");
    audit_.write_jsonl(*prefix_ + ".audit.jsonl");
    audit_.write_csv(*prefix_ + ".audit.csv");
    {
      std::ofstream out(*prefix_ + ".counters.json");
      out << result.counters.to_json() << '\n';
      if (!out) {
        throw std::runtime_error("trace-out: cannot write " + *prefix_ +
                                 ".counters.json");
      }
    }
    std::cerr << "trace-out: " << *prefix_ << ".{trace.json,audit.jsonl,audit.csv,"
              << "counters.json} (" << trace_.size() << " trace records, "
              << trace_.dropped() << " dropped; " << audit_.size()
              << " audit records)\n";
  }

 private:
  std::optional<std::string> prefix_;
  gc::TraceCollector trace_;
  gc::DecisionAuditLog audit_;
};

}  // namespace gcbench
