// F8 — Replay of the (synthetic) real-workload trace: power trajectory of
// Combined/DCP vs DVFS-only over three compressed "days" of WC98-like
// traffic (the paper's real-trace validation figure).
//
// Every policy replays the *identical* arrival trace.  Expected shape:
// combined's power hugs the diurnal load curve, dropping to a few servers
// at night, while dvfs-only is floored at M * P_idle; the ramp across days
// lifts both; combined's cumulative energy ends 30-50% lower.
//
// --shards=K (K >= 1) runs the combined-DCP replay through the sharded
// engine (sim/sharded.h) instead of run_simulation — the CI TSan lane
// replays at K=4 to drive the parallel barrier loop under race detection.
// Note the sharded engine is a distinct model (round-robin trace dispatch;
// DESIGN.md §11.1), so its numbers differ slightly from the sequential run.
//
// --days=N (default 3) stretches the synthesized trace to N compressed
// days.  The CI soak lane records a longer horizon here and replays it
// through gcreplay with a mid-recording kill/restore (EXPERIMENTS.md F17).
#include <algorithm>
#include <iostream>

#include "control/policies.h"
#include "exp/scenario.h"
#include "sim/sharded.h"
#include "sim/simulation.h"
#include "trace_out.h"
#include "util/cli.h"
#include "util/format.h"
#include "util/table.h"
#include "workload/trace.h"

int main(int argc, char** argv) {
  const gc::CliArgs args(argc, argv);
  gcbench::TraceOut trace_out(args);

  const gc::ClusterConfig config = gc::bench_cluster_config();
  const double day_s = 2400.0;
  const double days =
      static_cast<double>(std::max(args.get_int_or("days", 3), 1ll));

  // Synthesize the trace once; both policies replay the same arrivals.
  const auto profile = gc::make_wc98_like_profile(
      0.7 * config.max_feasible_arrival_rate(), days, /*seed=*/13, day_s);
  const gc::Trace trace = gc::Trace::from_profile(*profile, days * day_s, /*seed=*/13);

  const gc::Provisioner solver(config);
  gc::PolicyOptions popts;
  popts.dcp = gc::bench_dcp_params();

  gc::SimResult results[2];
  const gc::PolicyKind kinds[2] = {gc::PolicyKind::kDvfsOnly,
                                   gc::PolicyKind::kCombinedDcp};
  for (int i = 0; i < 2; ++i) {
    gc::Workload workload = gc::Workload::trace_replay(
        trace, gc::Distribution::exponential(config.mu_max), /*seed=*/21);
    const auto controller = gc::make_policy(kinds[i], &solver, popts);
    gc::ClusterOptions cluster;
    cluster.num_servers = config.max_servers;
    cluster.power = config.power;
    cluster.transition = config.transition;
    cluster.initial_active = config.max_servers;
    gc::SimulationOptions sim;
    sim.t_ref_s = config.t_ref_s;
    sim.warmup_s = 2.0 * popts.dcp.long_period_s;
    sim.record_interval_s = 240.0;
    // The combined-dcp replay is the figure's subject; that is the run the
    // observability sinks watch.
    const auto shards =
        static_cast<unsigned>(std::max(args.get_int_or("shards", 0), 0ll));
    if (kinds[i] == gc::PolicyKind::kCombinedDcp) {
      trace_out.attach(sim);
      if (shards >= 1) {
        gc::ShardedOptions sharded;
        sharded.num_shards = shards;
        results[i] = run_sharded_simulation(
            trace, gc::Distribution::exponential(config.mu_max), /*seed=*/21,
            cluster, *controller, sim, sharded);
        continue;
      }
    }
    results[i] = run_simulation(workload, cluster, *controller, sim);
  }
  trace_out.write(results[1]);

  gc::TablePrinter table(gc::format(
      "Fig 8: WC98-like trace replay ({:.0f} compressed days), power over time",
      days));
  table.column("t", {.precision = 0, .unit = "s"})
      .column("lambda", {.precision = 1, .unit = "jobs/s"})
      .column("dvfs P", {.precision = 0, .unit = "W"})
      .column("comb P", {.precision = 0, .unit = "W"})
      .column("comb m", {.precision = 0});
  const std::size_t n = std::min(results[0].timeline.size(), results[1].timeline.size());
  for (std::size_t i = 0; i < n; ++i) {
    const gc::TimelinePoint& dvfs = results[0].timeline[i];
    const gc::TimelinePoint& comb = results[1].timeline[i];
    table.row()
        .cell(comb.time)
        .cell(comb.arrival_rate)
        .cell(dvfs.power_watts)
        .cell(comb.power_watts)
        .cell(static_cast<long long>(comb.serving));
  }
  std::cout << table;

  for (int i = 0; i < 2; ++i) {
    std::cout << gc::format(
        "\n{:>12}: energy {:.3f} kWh | mean T {:.0f} ms | p95 {:.0f} ms | "
        "p99 {:.0f} ms | viol {:.2f}% | SLA {}",
        to_string(kinds[i]), results[i].energy.total_j() / 3.6e6,
        results[i].mean_response_s * 1e3, results[i].p95_response_s * 1e3,
        results[i].p99_response_s * 1e3, results[i].job_violation_ratio * 100.0,
        results[i].sla_met(config.t_ref_s) ? "met" : "MISSED");
  }
  std::cout << gc::format("\ncombined saves {:.1f}% vs dvfs-only on the same trace\n",
                          (1.0 - results[1].energy.total_j() /
                                     results[0].energy.total_j()) * 100.0);
  return 0;
}
