// F7 — Sensitivity to the control periods.
//
// Sweeps the short period T_S (with T_L pinned) and then the long period
// T_L (with T_S pinned).  Expected shape: very short T_S buys little
// (frequency already tracks well) while very long T_S lets the frequency
// go stale between corrections; longer T_L saves boots but reacts slower,
// raising the response time under the diurnal ramp.
#include <iostream>

#include "exp/runner.h"
#include "util/table.h"

namespace {

void sweep(const char* title, const std::vector<gc::DcpParams>& grid,
           const std::vector<double>& knob) {
  std::vector<gc::Cell> cells;
  for (const gc::DcpParams& dcp : grid) {
    gc::RunSpec spec;
    spec.config = gc::bench_cluster_config();
    spec.policy = gc::PolicyKind::kCombinedDcp;
    spec.policy_options.dcp = dcp;
    spec.seed = 808;
    const gc::Scenario scenario =
        gc::make_scenario(gc::ScenarioKind::kDiurnal, spec.config, 0.7, 99, 3600.0);
    cells.push_back({scenario, spec});
  }
  const auto results = gc::run_all(cells);

  gc::TablePrinter table(title);
  table.column("period", {.precision = 1, .unit = "s"})
      .column("energy", {.precision = 3, .unit = "kWh"})
      .column("mean T", {.precision = 0, .unit = "ms"})
      .column("viol", {.precision = 2, .unit = "%"})
      .column("boots", {.precision = 0});
  for (std::size_t i = 0; i < results.size(); ++i) {
    table.row()
        .cell(knob[i])
        .cell(results[i].energy.total_j() / 3.6e6)
        .cell(results[i].mean_response_s * 1e3)
        .cell(results[i].job_violation_ratio * 100.0)
        .cell(static_cast<long long>(static_cast<long long>(results[i].boots)));
  }
  std::cout << table << '\n';
}

}  // namespace

int main() {
  {
    std::vector<gc::DcpParams> grid;
    std::vector<double> knob;
    for (const double ts : {1.0, 2.5, 5.0, 12.5, 25.0}) {
      gc::DcpParams dcp = gc::bench_dcp_params();
      dcp.short_period_s = ts;
      grid.push_back(dcp);
      knob.push_back(ts);
    }
    sweep("Fig 7a: short period T_S sweep (T_L = 25 s)", grid, knob);
  }
  {
    std::vector<gc::DcpParams> grid;
    std::vector<double> knob;
    for (const double tl : {10.0, 25.0, 50.0, 100.0, 200.0}) {
      gc::DcpParams dcp = gc::bench_dcp_params();
      dcp.long_period_s = tl;
      dcp.short_period_s = std::min(dcp.short_period_s, tl);
      grid.push_back(dcp);
      knob.push_back(tl);
    }
    sweep("Fig 7b: long period T_L sweep (T_S = 5 s)", grid, knob);
  }
  return 0;
}
