// F17 — Crash recovery of the controller process (extension; not in the
// paper): a 30-minute controller outage lands across the flash-crowd
// morning ramp, and the controller comes back in one of three ways
// (ControllerRecoveryMode, sim/control_channel.h):
//
//   preserve — the process paused, its memory survived (historical model);
//   warm     — the process crashed and restarts from durable state: the
//              facade is serialized (cp/snapshot.h), torn down, rebuilt
//              and restored at the recovery instant;
//   cold     — the process crashed and its durable state is *lost*: it
//              restarts from the pristine t = 0 image and re-learns the
//              operating point from scratch.
//
// Expected shape: warm is indistinguishable from preserve — the snapshot
// bit-identity contract says restore(snapshot()) is a state transplant,
// and this bench *asserts* the two runs match to the last bit (exit 1
// otherwise).  Cold pays for amnesia: the restored boot observation is
// hours stale, the estimator restarts flat and the predictor history is
// gone, so the first post-recovery plans chase the ramp from behind —
// extra violations and/or an energy premium relative to warm, bounded by
// the watchdog's safe-mode floor underneath.
#include <cstring>
#include <iostream>

#include "exp/runner.h"
#include "exp/scenario.h"
#include "trace_out.h"
#include "util/cli.h"
#include "util/format.h"
#include "util/table.h"

namespace {

// Bitwise equality — NaN-free by construction, and "close" is not the
// claim here, identity is.
bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  const gc::CliArgs args(argc, argv);
  gcbench::TraceOut trace_out(args);

  const gc::ClusterConfig config = gc::bench_cluster_config();
  const gc::DcpParams dcp = gc::bench_dcp_params();
  // The ramp is where lost controller memory hurts: the pre-crash state
  // (EWMA level, predictor history, acked actuation points) encodes where
  // the day is heading.
  const gc::Scenario scenario =
      gc::make_scenario(gc::ScenarioKind::kFlashCrowd, config, 0.8);

  const gc::ControllerRecoveryMode modes[3] = {
      gc::ControllerRecoveryMode::kPreserve,
      gc::ControllerRecoveryMode::kWarmRestart,
      gc::ControllerRecoveryMode::kColdRestart,
  };
  const char* mode_names[3] = {"preserve", "warm", "cold"};

  gc::TablePrinter table(
      "Fig 17: 30-min controller crash on the ramp — recovery modes");
  table.column("recovery")
      .column("energy", {.precision = 3, .unit = "kWh"})
      .column("mean T", {.precision = 1, .unit = "ms"})
      .column("p95 T", {.precision = 1, .unit = "ms"})
      .column("viol", {.precision = 2, .unit = "% jobs"})
      .column("missed", {.precision = 0, .unit = "ticks"})
      .column("safe", {.precision = 0, .unit = "s"})
      .column("SLA");

  gc::SimResult results[3];
  for (int i = 0; i < 3; ++i) {
    gc::RunSpec spec;
    spec.config = config;
    spec.policy = gc::PolicyKind::kCombinedDcp;
    spec.policy_options.dcp = dcp;
    spec.seed = 7;
    // Generation-stamped command path + ack/retry on, zero loss: recovery
    // semantics are the only variable across the three rows.
    spec.sim.channel.enabled = true;
    spec.sim.channel.seed = 0xf17cULL;
    spec.sim.actuator.enabled = true;
    spec.sim.actuator.ack_timeout_s = 5.0;
    spec.sim.controller_faults.script = {
        {scenario.horizon_s * 0.25, /*duration_s=*/1800.0}};
    spec.sim.controller_faults.recovery = modes[i];
    if (i == 2) trace_out.attach(spec.sim);
    results[i] = gc::run_one(scenario, spec);
    table.row()
        .cell(mode_names[i])
        .cell(results[i].energy.total_j() / 3.6e6)
        .cell(results[i].mean_response_s * 1e3)
        .cell(results[i].p95_response_s * 1e3)
        .cell(results[i].job_violation_ratio * 100.0)
        .cell(static_cast<long long>(results[i].ticks_missed))
        .cell(results[i].safe_mode_time_s)
        .cell(results[i].sla_met(config.t_ref_s) ? "yes" : "NO");
  }
  std::cout << table;
  trace_out.write(results[2]);

  // The oracle: a warm restart must be a bit-identical state transplant.
  const bool identical =
      same_bits(results[0].energy.total_j(), results[1].energy.total_j()) &&
      same_bits(results[0].mean_response_s, results[1].mean_response_s) &&
      same_bits(results[0].p95_response_s, results[1].p95_response_s) &&
      same_bits(results[0].job_violation_ratio,
                results[1].job_violation_ratio) &&
      results[0].ticks_missed == results[1].ticks_missed;
  std::cout << gc::format(
      "\nwarm restart vs preserve: {}\n",
      identical ? "bit-identical (snapshot transplant holds)"
                : "DIVERGED — snapshot round trip is lossy");
  std::cout << gc::format(
      "cold restart premium vs warm: {:+.2f}% energy, {:+.2f} pp violations\n",
      (results[2].energy.total_j() / results[1].energy.total_j() - 1.0) * 100.0,
      (results[2].job_violation_ratio - results[1].job_violation_ratio) * 100.0);
  return identical ? 0 : 1;
}
