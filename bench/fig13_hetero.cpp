// F13 (extension) — Heterogeneous fleet provisioning.
//
// A pod of 8 new-generation servers (faster, frugal) plus 8 old ones
// (slower, hungry).  Compares three operators at each load:
//   * hetero-aware  — the HeteroProvisioner optimum;
//   * naive-worst   — treats the fleet as 16 worst-class servers (the
//                     homogeneous solver with old-class parameters);
//   * new-only      — refuses to use the old generation at all.
//
// Expected shape: hetero-aware == new-only until the new class saturates
// (~80 jobs/s), then spills onto the old class smoothly; naive-worst pays
// the old-class power curve everywhere; new-only goes infeasible past the
// new class's capacity.
#include <iostream>

#include "core/hetero.h"
#include "exp/hetero_sim.h"
#include "util/format.h"
#include "util/table.h"

int main() {
  gc::HeteroConfig config;
  config.t_ref_s = 0.5;
  {
    gc::ServerClass fresh;
    fresh.name = "new";
    fresh.count = 8;
    fresh.mu_max = 12.0;
    fresh.power.p_idle_watts = 100.0;
    fresh.power.p_max_watts = 200.0;
    fresh.power.utilization_gated = false;
    config.classes.push_back(fresh);
    gc::ServerClass old = fresh;
    old.name = "old";
    old.mu_max = 10.0;
    old.power.p_idle_watts = 180.0;
    old.power.p_max_watts = 300.0;
    config.classes.push_back(old);
  }
  const gc::HeteroProvisioner hetero(config);

  gc::ClusterConfig naive;
  naive.max_servers = 16;
  naive.mu_max = 10.0;
  naive.t_ref_s = 0.5;
  naive.power = config.classes[1].power;
  const gc::Provisioner naive_solver(naive);

  gc::ClusterConfig new_only;
  new_only.max_servers = 8;
  new_only.mu_max = 12.0;
  new_only.t_ref_s = 0.5;
  new_only.power = config.classes[0].power;
  const gc::Provisioner new_solver(new_only);

  gc::TablePrinter table(
      "Fig 13: heterogeneous fleet (8 new + 8 old) — power vs load per operator");
  table.column("load", {.precision = 1, .unit = "jobs/s"})
      .column("hetero", {.precision = 0, .unit = "W"})
      .column("n_new", {.precision = 0})
      .column("n_old", {.precision = 0})
      .column("naive-worst", {.precision = 0, .unit = "W"})
      .column("new-only", {.precision = 0, .unit = "W"})
      .column("hetero saves", {.precision = 1, .unit = "% vs naive"});

  const double max_rate = config.max_feasible_arrival_rate();
  for (double frac = 0.05; frac <= 1.0001; frac += 0.05) {
    const double lambda = frac * max_rate;
    const gc::HeteroOperatingPoint hp = hetero.solve(lambda);
    const gc::OperatingPoint naive_pt = naive_solver.solve(lambda);
    const gc::OperatingPoint new_pt = new_solver.solve(lambda);
    table.row()
        .cell(lambda)
        .cell(hp.power_watts)
        .cell(static_cast<long long>(hp.allocations[0].servers))
        .cell(static_cast<long long>(hp.allocations[1].servers))
        .cell(naive_pt.feasible ? naive_pt.power_watts : -1.0)
        .cell(new_pt.feasible ? new_pt.power_watts : -1.0)
        .cell(naive_pt.feasible
                  ? (1.0 - hp.power_watts / naive_pt.power_watts) * 100.0
                  : 100.0);
  }
  std::cout << table;
  std::cout << "\n(-1 marks loads the operator cannot serve under the SLA)\n\n";

  // Simulated validation of the hetero optimum at two representative
  // loads: measured per-class response/power vs the solver's prediction.
  gc::TablePrinter sim_table("Fig 13b: simulated validation of the hetero optimum");
  sim_table.column("load", {.precision = 0, .unit = "jobs/s"})
      .column("class")
      .column("n")
      .column("s", {.precision = 2})
      .column("pred T", {.precision = 0, .unit = "ms"})
      .column("meas T", {.precision = 0, .unit = "ms"})
      .column("pred P", {.precision = 0, .unit = "W"})
      .column("meas P", {.precision = 0, .unit = "W"});
  for (const double lambda : {50.0, 110.0}) {
    const gc::HeteroOperatingPoint point = hetero.solve(lambda);
    const gc::HeteroSimResult sim =
        gc::run_hetero_validation(config, point, lambda, 4000.0, 200.0, 99);
    for (std::size_t c = 0; c < config.classes.size(); ++c) {
      sim_table.row()
          .cell(lambda)
          .cell(config.classes[c].name)
          .cell(static_cast<long long>(point.allocations[c].servers))
          .cell(point.allocations[c].speed)
          .cell(point.allocations[c].response_time_s * 1e3)
          .cell(sim.classes[c].mean_response_s * 1e3)
          .cell(point.allocations[c].power_watts)
          .cell(sim.classes[c].mean_power_w);
    }
  }
  std::cout << sim_table;
  return 0;
}
