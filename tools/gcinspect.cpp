// gcinspect — offline inspector for simulation run artifacts.
//
// A run written with --timeseries-out=PREFIX / --trace-out=PREFIX leaves
// PREFIX.counters.json, PREFIX.audit.jsonl and PREFIX.timeseries.csv; this
// tool loads whichever exist and reports on them without re-running
// anything.
//
//   gcinspect PREFIX                       one-run summary
//   gcinspect PREFIX_A PREFIX_B            A/B diff of two runs
//   gcinspect PREFIX --check 'M<=B' ...    gate metrics (exit 1 on failure)
//   gcinspect PREFIX --lifecycle           per-command timeline view from
//                                          PREFIX.lifecycle.jsonl
//
// Metric syntax for --check: a counter/gauge name (`chan.command.dropped`),
// or a time-series column with an aggregate (`win_p95_t_s:max`, aggregates
// mean|min|max|last|sum; a bare column name means :mean).  Bounds accept
// <=, >=, <, >.  Multiple --check flags AND together; ci/check.sh uses
// this as its SLA smoke gate.
#include <cstdio>
#include <exception>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "obs/inspect.h"
#include "util/cli.h"

namespace {

void usage() {
  std::cerr
      << "usage: gcinspect PREFIX [PREFIX_B] [--check METRIC(<=|>=|<|>)BOUND]..."
         " [--lifecycle]\n"
         "       loads PREFIX.counters.json / PREFIX.audit.jsonl / "
         "PREFIX.timeseries.csv\n"
         "       --lifecycle renders PREFIX.lifecycle.jsonl as per-command "
         "timelines\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const gc::CliArgs args(argc, argv);
    for (const std::string& flag :
         args.unknown_flags({"check", "help", "lifecycle"})) {
      std::cerr << "gcinspect: unknown flag --" << flag << "\n";
      usage();
      return 2;
    }
    if (args.has("help") || args.positional().empty() ||
        args.positional().size() > 2) {
      usage();
      return args.has("help") ? 0 : 2;
    }

    // Loaded on demand: the --lifecycle view reads its own artifact, so a
    // prefix holding only a .lifecycle.jsonl is still inspectable.
    std::optional<gc::RunArtifacts> run;
    const auto load_run = [&]() -> const gc::RunArtifacts& {
      if (!run) run = gc::RunArtifacts::load(args.positional()[0]);
      return *run;
    };

    // --check gates run against the first prefix; they compose with the
    // summary/diff output (checks print last).
    // CliArgs keeps one value per key, so several checks arrive as one
    // comma-separated list: --check 'a<=1,b>=0'.
    std::vector<gc::MetricCheck> checks;
    if (const auto joined = args.get("check")) {
      std::size_t start = 0;
      while (start <= joined->size()) {
        const std::size_t comma = joined->find(',', start);
        const std::string one =
            joined->substr(start, comma == std::string::npos ? std::string::npos
                                                             : comma - start);
        if (!one.empty()) checks.push_back(gc::parse_check(one));
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    }

    const bool lifecycle = args.has("lifecycle");
    if (lifecycle) gc::print_lifecycle(std::cout, args.positional()[0]);

    if (args.positional().size() == 2) {
      const gc::RunArtifacts run_b = gc::RunArtifacts::load(args.positional()[1]);
      gc::print_diff(std::cout, load_run(), run_b);
    } else if (checks.empty() && !lifecycle) {
      gc::print_summary(std::cout, load_run());
    }

    bool all_passed = true;
    for (const gc::MetricCheck& check : checks) {
      const gc::CheckResult result = gc::evaluate_check(load_run(), check);
      std::printf("check %s%s%.17g: %s (value %.6g)\n", check.metric.c_str(),
                  check.upper ? (check.strict ? "<" : "<=")
                              : (check.strict ? ">" : ">="),
                  check.bound, result.passed ? "PASS" : "FAIL", result.value);
      all_passed = all_passed && result.passed;
    }
    return all_passed ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "gcinspect: " << e.what() << "\n";
    return 2;
  }
}
