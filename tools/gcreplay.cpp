// gcreplay — replays a recorded control trajectory through a fresh
// ControlPlane and reports drift (DESIGN.md §12.3).
//
// A run written with --trace-out=PREFIX leaves PREFIX.audit.jsonl: one
// record per control tick holding the delivered telemetry the tick planned
// on and the commands the policy emitted.  This tool rebuilds the same
// policy stack out of process, streams the recorded telemetry back in at
// --speedup× recorded time, and asserts the regenerated command stream
// matches the recording tick for tick.  Any mismatch is controller drift —
// a changed default, a lost invariant, an accidental RNG draw.
//
//   gcreplay PREFIX                         free-run replay, report drift
//   gcreplay PREFIX --speedup=1000          paced by the virtual clock
//   gcreplay PREFIX --fail-fast             stop at the first divergence
//   gcreplay PREFIX --out=OUT               write OUT.counters.json / OUT.prom
//   gcreplay PREFIX --serve=SOCK            also serve the wire protocol on a
//                                           UNIX socket (one connection)
//
// --policy picks the controller stack (default combined-dcp with the bench
// defaults — the configuration every fig8 recording uses).  Exit codes:
// 0 clean replay, 1 drift detected, 2 bad usage or corrupt artifacts.
// Malformed artifacts (audit jsonl or timeseries csv) are rejected with an
// error, never clamped or skipped.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "control/policies.h"
#include "cp/replay.h"
#include "cp/wire.h"
#include "exp/scenario.h"
#include "obs/audit.h"
#include "obs/prometheus.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/format.h"

namespace {

void usage() {
  std::cerr
      << "usage: gcreplay PREFIX [--policy=KIND] [--speedup=X] [--fail-fast]\n"
         "                [--max-reported=N] [--out=OUT] [--serve=SOCKPATH]\n"
         "       replays PREFIX.audit.jsonl through a fresh control plane\n"
         "       and validates PREFIX.timeseries.csv when present\n"
         "       exit 0 = clean, 1 = drift, 2 = error\n";
}

std::optional<gc::PolicyKind> parse_policy(const std::string& name) {
  for (int k = 0; k <= static_cast<int>(gc::PolicyKind::kDcpReliability); ++k) {
    const auto kind = static_cast<gc::PolicyKind>(k);
    if (name == gc::to_string(kind)) return kind;
  }
  return std::nullopt;
}

// Accepts one connection on a fresh UNIX socket and runs the wire protocol
// over it — driver (c), proving the facade never cared who feeds it.
gc::WireServeStats serve_once(gc::ControlPlane& cp, const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("serve: socket path too long");
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  ::unlink(path.c_str());
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    throw std::runtime_error(gc::format("serve: socket: {}", std::strerror(errno)));
  }
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(listener, 1) < 0) {
    const std::string why = std::strerror(errno);
    ::close(listener);
    throw std::runtime_error(gc::format("serve: bind/listen {}: {}", path, why));
  }
  std::cerr << "gcreplay: serving wire protocol on " << path << "\n";
  const int conn = ::accept(listener, nullptr, nullptr);
  if (conn < 0) {
    const std::string why = std::strerror(errno);
    ::close(listener);
    throw std::runtime_error(gc::format("serve: accept: {}", why));
  }
  try {
    const gc::WireServeStats stats = gc::serve_connection(cp, conn);
    ::close(conn);
    ::close(listener);
    ::unlink(path.c_str());
    return stats;
  } catch (...) {
    ::close(conn);
    ::close(listener);
    ::unlink(path.c_str());
    throw;
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const gc::CliArgs args(argc, argv);
    for (const std::string& flag : args.unknown_flags(
             {"policy", "speedup", "fail-fast", "max-reported", "out", "serve",
              "help"})) {
      std::cerr << "gcreplay: unknown flag --" << flag << "\n";
      usage();
      return 2;
    }
    if (args.has("help") || args.positional().size() != 1) {
      usage();
      return args.has("help") ? 0 : 2;
    }
    const std::string prefix = args.positional()[0];

    const std::string policy_name = args.get_or("policy", "combined-dcp");
    const auto kind = parse_policy(policy_name);
    if (!kind) {
      std::cerr << "gcreplay: unknown policy '" << policy_name << "'\n";
      return 2;
    }
    if (*kind == gc::PolicyKind::kOracle) {
      std::cerr << "gcreplay: the oracle policy needs the ground-truth "
                   "profile and cannot be replayed out of process\n";
      return 2;
    }

    // The recording's policy stack, rebuilt from the bench defaults — the
    // same configuration every figure bench (and the soak recording) runs.
    const gc::ClusterConfig config = gc::bench_cluster_config();
    const gc::Provisioner solver(config);
    gc::PolicyOptions popts;
    popts.dcp = gc::bench_dcp_params();
    auto controller = gc::make_policy(*kind, &solver, popts);

    // The actuator protocol stays off: audit records compare at the policy
    // boundary, before ack/retry stamping.  The RNG is therefore never
    // drawn; any fixed seed gives the same replay.
    gc::ControlPlaneOptions cp_options;
    gc::ControlPlane cp(std::move(controller), cp_options,
                        gc::Rng(/*seed=*/1, /*stream=*/14));

    const auto audit_path = std::filesystem::path(prefix + ".audit.jsonl");
    if (!std::filesystem::exists(audit_path)) {
      std::cerr << "gcreplay: no such artifact " << audit_path.string() << "\n";
      return 2;
    }
    const gc::DecisionAuditLog log = gc::DecisionAuditLog::read_jsonl(audit_path);
    if (log.empty()) {
      std::cerr << "gcreplay: " << audit_path.string() << " holds no records\n";
      return 2;
    }

    // Structural validation of the companion time series, when recorded.
    const auto ts_path = std::filesystem::path(prefix + ".timeseries.csv");
    if (std::filesystem::exists(ts_path)) {
      gc::validate_timeseries(gc::read_csv_file(ts_path), &log);
      std::cerr << "gcreplay: " << ts_path.string() << " validated\n";
    }

    gc::ReplayOptions replay_options;
    replay_options.speedup = args.get_double_or("speedup", 0.0);
    replay_options.fail_fast = args.has("fail-fast");
    replay_options.max_reported = static_cast<std::size_t>(
        std::max(args.get_int_or("max-reported", 8), 1ll));

    gc::ReplayEngine engine(cp, replay_options);
    const gc::ReplayStats stats = engine.run(log);

    std::cout << gc::format(
        "replayed {} ticks ({} long) spanning {:.0f} s of recorded time "
        "[policy {}, speedup {}]\n",
        stats.ticks, stats.long_ticks, stats.replayed_span_s,
        gc::to_string(*kind), replay_options.speedup);
    if (stats.clean()) {
      std::cout << "command stream matches the recording: no drift\n";
    } else {
      std::cout << gc::format("DRIFT: {} mismatches, first at t={:.0f} s\n",
                              stats.mismatches, stats.first_mismatch_s);
      for (const gc::ReplayMismatch& m : stats.samples) {
        std::cout << gc::format(
            "  tick {} t={:.0f}: {} recorded {:.17g}, replayed {:.17g}\n",
            m.tick, m.time_s, m.field, m.expected, m.actual);
      }
    }

    // The drift verdict rides the cp.* snapshot so `gcinspect OUT --check
    // 'cp.drift.mismatches<=0'` gates it like any other run metric.
    if (const auto out = args.get("out")) {
      if (out->empty()) {
        std::cerr << "gcreplay: --out needs a file prefix\n";
        return 2;
      }
      const gc::CountersSnapshot snap = engine.counters_snapshot();
      {
        std::ofstream f(*out + ".counters.json");
        f << snap.to_json() << '\n';
        if (!f) {
          std::cerr << "gcreplay: cannot write " << *out << ".counters.json\n";
          return 2;
        }
      }
      {
        std::ofstream f(*out + ".prom");
        f << gc::to_prometheus_text(snap);
        if (!f) {
          std::cerr << "gcreplay: cannot write " << *out << ".prom\n";
          return 2;
        }
      }
      std::cerr << "gcreplay: wrote " << *out << ".{counters.json,prom}\n";
    }

    if (const auto sock = args.get("serve")) {
      if (sock->empty()) {
        std::cerr << "gcreplay: --serve needs a socket path\n";
        return 2;
      }
      const gc::WireServeStats ws = serve_once(cp, *sock);
      std::cout << gc::format(
          "served {} telemetry / {} ticks / {} acks, sent {} commands\n",
          ws.telemetry, ws.ticks, ws.acks, ws.commands_sent);
    }

    return stats.clean() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "gcreplay: " << e.what() << "\n";
    return 2;
  }
}
