// gcreplay — replays a recorded control trajectory through a fresh
// ControlPlane and reports drift (DESIGN.md §12.3, §13).
//
// A run written with --trace-out=PREFIX leaves PREFIX.audit.jsonl: one
// record per control tick holding the delivered telemetry the tick planned
// on and the commands the policy emitted.  This tool rebuilds the same
// policy stack out of process, streams the recorded telemetry back in at
// --speedup× recorded time, and asserts the regenerated command stream
// matches the recording tick for tick.  Any mismatch is controller drift —
// a changed default, a lost invariant, an accidental RNG draw.
//
//   gcreplay PREFIX                         free-run replay, report drift
//   gcreplay PREFIX --speedup=1000          paced by the virtual clock
//   gcreplay PREFIX --fail-fast             stop at the first divergence
//   gcreplay PREFIX --out=OUT               write OUT.counters.json / OUT.prom
//   gcreplay PREFIX --serve=SOCK            also serve the wire protocol on a
//                                           UNIX socket (one connection)
//   gcreplay PREFIX --prom=SOCK             answer one Prometheus scrape with
//                                           the cp.*/drift counters
//
// Crash recovery (DESIGN.md §13): --state=STATE persists STATE.snap (a
// checkpoint every --checkpoint-every ticks) and STATE.wal (the records
// since that checkpoint).  --kill-at-tick=N exits cleanly after tick N —
// a simulated crash whose durable artifacts are all a later invocation
// gets.  --restore rebuilds the facade from those artifacts and resumes
// the replay exactly where the killed run died; the drift oracle then
// proves the reborn controller emits the recording's command stream
// bit-for-bit.  With --kill-at-tick and --restore together the crash and
// recovery happen in one process (the facade is torn down and rebuilt
// mid-run).
//
// Chaos (DESIGN.md §13.4): --chaos=SCHEDULE feeds the recording through a
// real socketpair serve loop while injecting wire faults
// ("<op>@<index>,..." — drop dup reorder corrupt truncate kill; indices
// count wire records, two per audit tick: telemetry then tick), and
// compares the surviving command stream against a clean oracle run.
//
// --policy picks the controller stack (default combined-dcp with the bench
// defaults — the configuration every fig8 recording uses).  Exit codes:
// 0 clean replay, 1 drift detected, 2 bad usage or corrupt artifacts.
// Malformed artifacts (audit jsonl, timeseries csv, snapshot, WAL) are
// rejected with an error, never clamped or skipped.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "control/policies.h"
#include "cp/chaos.h"
#include "cp/replay.h"
#include "cp/snapshot.h"
#include "cp/wal.h"
#include "cp/wire.h"
#include "exp/scenario.h"
#include "obs/audit.h"
#include "obs/prometheus.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/format.h"

namespace {

void usage() {
  std::cerr
      << "usage: gcreplay PREFIX [--policy=KIND] [--speedup=X] [--fail-fast]\n"
         "                [--max-reported=N] [--out=OUT] [--serve=SOCKPATH]\n"
         "                [--prom=SOCKPATH] [--state=STATE]\n"
         "                [--checkpoint-every=N] [--kill-at-tick=N] [--restore]\n"
         "                [--chaos=SCHEDULE] [--chaos-seed=N]\n"
         "       replays PREFIX.audit.jsonl through a fresh control plane\n"
         "       and validates PREFIX.timeseries.csv when present\n"
         "       exit 0 = clean, 1 = drift, 2 = error\n";
}

std::optional<gc::PolicyKind> parse_policy(const std::string& name) {
  for (int k = 0; k <= static_cast<int>(gc::PolicyKind::kDcpReliability); ++k) {
    const auto kind = static_cast<gc::PolicyKind>(k);
    if (name == gc::to_string(kind)) return kind;
  }
  return std::nullopt;
}

[[nodiscard]] std::string read_binary_file(const std::filesystem::path& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    throw std::runtime_error(
        gc::format("cannot read {}", path.string()));
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return std::move(ss).str();
}

void write_binary_file(const std::filesystem::path& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!f) {
    throw std::runtime_error(gc::format("cannot write {}", path.string()));
  }
}

// The telemetry frame an audit record says the tick planned on — the same
// reconstruction ReplayEngine::feed performs, factored here so the WAL and
// the chaos input sequence journal exactly what the engine delivered.
[[nodiscard]] gc::TelemetryFrame frame_of(const gc::AuditRecord& rec) {
  gc::TelemetryFrame frame;
  frame.sample_time = rec.time_s - rec.obs_age_s;
  frame.rate = rec.observed_rate;
  frame.serving = rec.serving;
  frame.committed = rec.committed;
  frame.powered = rec.powered;
  frame.available = rec.available;
  frame.jobs_in_system = rec.jobs_in_system;
  return frame;
}

// Binds a fresh UNIX listening socket at `path` and accepts exactly one
// connection; the listener is closed and the path unlinked before return.
[[nodiscard]] int accept_one(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("serve: socket path too long");
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  ::unlink(path.c_str());
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    throw std::runtime_error(gc::format("serve: socket: {}", std::strerror(errno)));
  }
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(listener, 1) < 0) {
    const std::string why = std::strerror(errno);
    ::close(listener);
    throw std::runtime_error(gc::format("serve: bind/listen {}: {}", path, why));
  }
  const int conn = ::accept(listener, nullptr, nullptr);
  const int saved_errno = errno;
  ::close(listener);
  ::unlink(path.c_str());
  if (conn < 0) {
    throw std::runtime_error(
        gc::format("serve: accept: {}", std::strerror(saved_errno)));
  }
  return conn;
}

// Accepts one connection on a fresh UNIX socket and runs the wire protocol
// over it — driver (c), proving the facade never cared who feeds it.
gc::WireServeStats serve_once(gc::ControlPlane& cp, const std::string& path) {
  std::cerr << "gcreplay: serving wire protocol on " << path << "\n";
  const int conn = accept_one(path);
  try {
    const gc::WireServeStats stats = gc::serve_connection(cp, conn);
    ::close(conn);
    return stats;
  } catch (...) {
    ::close(conn);
    throw;
  }
}

void scrape_once(const std::string& path, const std::string& body) {
  std::cerr << "gcreplay: serving one Prometheus scrape on " << path << "\n";
  const int conn = accept_one(path);
  try {
    gc::serve_scrape(conn, body);
    ::close(conn);
  } catch (...) {
    ::close(conn);
    throw;
  }
}

// Writes OUT.counters.json / OUT.prom for `gcinspect --check`.  `hists`
// (e.g. the facade's lifecycle latency histograms) render as proper
// Prometheus histogram types in the .prom exposition.
void write_out(const std::string& out, const gc::CountersSnapshot& snap,
               const std::vector<gc::PrometheusHistogram>& hists = {}) {
  {
    std::ofstream f(out + ".counters.json");
    f << snap.to_json() << '\n';
    if (!f) {
      throw std::runtime_error(
          gc::format("cannot write {}.counters.json", out));
    }
  }
  {
    std::ofstream f(out + ".prom");
    f << gc::to_prometheus_text(snap, hists);
    if (!f) throw std::runtime_error(gc::format("cannot write {}.prom", out));
  }
  std::cerr << "gcreplay: wrote " << out << ".{counters.json,prom}\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const gc::CliArgs args(argc, argv);
    for (const std::string& flag : args.unknown_flags(
             {"policy", "speedup", "fail-fast", "max-reported", "out", "serve",
              "prom", "state", "checkpoint-every", "kill-at-tick", "restore",
              "chaos", "chaos-seed", "help"})) {
      std::cerr << "gcreplay: unknown flag --" << flag << "\n";
      usage();
      return 2;
    }
    if (args.has("help") || args.positional().size() != 1) {
      usage();
      return args.has("help") ? 0 : 2;
    }
    const std::string prefix = args.positional()[0];

    const std::string policy_name = args.get_or("policy", "combined-dcp");
    const auto kind = parse_policy(policy_name);
    if (!kind) {
      std::cerr << "gcreplay: unknown policy '" << policy_name << "'\n";
      return 2;
    }
    if (*kind == gc::PolicyKind::kOracle) {
      std::cerr << "gcreplay: the oracle policy needs the ground-truth "
                   "profile and cannot be replayed out of process\n";
      return 2;
    }

    const std::string state = args.get_or("state", "");
    const auto checkpoint_every =
        static_cast<std::uint64_t>(std::max(args.get_int_or("checkpoint-every", 64), 1ll));
    const long long kill_at = args.get_int_or("kill-at-tick", -1);
    const bool restore = args.has("restore");
    const bool durable = !state.empty();
    if ((restore || kill_at >= 0) && !durable) {
      std::cerr << "gcreplay: --restore / --kill-at-tick need --state=STATE\n";
      return 2;
    }
    const auto chaos_text = args.get("chaos");
    if (chaos_text && (durable || restore || args.has("serve"))) {
      std::cerr << "gcreplay: --chaos cannot combine with --state/--restore/"
                   "--serve\n";
      return 2;
    }

    // The recording's policy stack, rebuilt from the bench defaults — the
    // same configuration every figure bench (and the soak recording) runs.
    // A factory rather than a one-shot build: the kill/restore and chaos
    // paths construct reborn facades mid-run.
    const gc::ClusterConfig config = gc::bench_cluster_config();
    const gc::Provisioner solver(config);
    gc::PolicyOptions popts;
    popts.dcp = gc::bench_dcp_params();
    const auto factory = [&] { return gc::make_policy(*kind, &solver, popts); };

    // The actuator protocol stays off: audit records compare at the policy
    // boundary, before ack/retry stamping.  The RNG is therefore never
    // drawn; any fixed seed gives the same replay.
    gc::ControlPlaneOptions cp_options;

    const auto audit_path = std::filesystem::path(prefix + ".audit.jsonl");
    if (!std::filesystem::exists(audit_path)) {
      std::cerr << "gcreplay: no such artifact " << audit_path.string() << "\n";
      return 2;
    }
    const gc::DecisionAuditLog log = gc::DecisionAuditLog::read_jsonl(audit_path);
    if (log.empty()) {
      std::cerr << "gcreplay: " << audit_path.string() << " holds no records\n";
      return 2;
    }

    // Structural validation of the companion time series, when recorded.
    const auto ts_path = std::filesystem::path(prefix + ".timeseries.csv");
    if (std::filesystem::exists(ts_path)) {
      gc::validate_timeseries(gc::read_csv_file(ts_path), &log);
      std::cerr << "gcreplay: " << ts_path.string() << " validated\n";
    }

    // -- Chaos mode ----------------------------------------------------------
    if (chaos_text) {
      gc::ChaosOptions chaos;
      chaos.events = gc::parse_chaos_schedule(*chaos_text);
      chaos.seed = static_cast<std::uint64_t>(
          std::max(args.get_int_or("chaos-seed", 1), 0ll));
      chaos.checkpoint_every = checkpoint_every;
      std::vector<gc::WireMessage> inputs;
      inputs.reserve(2 * log.records().size());
      for (const gc::AuditRecord& rec : log.records()) {
        gc::WireMessage t;
        t.type = gc::WireMsgType::kTelemetry;
        t.telemetry = frame_of(rec);
        inputs.push_back(t);
        gc::WireMessage k;
        k.type = gc::WireMsgType::kTick;
        k.tick = {rec.time_s, rec.long_tick, rec.safe_mode};
        inputs.push_back(k);
      }
      const gc::ChaosReport report = gc::run_chaos(
          inputs, factory, cp_options, gc::Rng(/*seed=*/1, /*stream=*/14), chaos);
      std::cout << gc::format(
          "chaos: {} inputs over {} episodes [policy {}]: {} drops, {} dups, "
          "{} reorders, {} corrupts, {} truncates, {} kills "
          "({} crc rejections)\n",
          report.inputs, report.episodes, gc::to_string(*kind), report.drops,
          report.dups, report.reorders, report.corrupts, report.truncates,
          report.kills, report.crc_errors);
      if (report.clean()) {
        std::cout << gc::format(
            "command stream matches the clean oracle ({} commands): no drift\n",
            report.commands_clean);
      } else {
        std::cout << gc::format("DRIFT: {} mismatches ({} clean vs {} chaos)\n",
                                report.drift_mismatches, report.commands_clean,
                                report.commands_chaos);
        for (const std::string& s : report.mismatch_samples) {
          std::cout << "  " << s << "\n";
        }
      }
      if (const auto out = args.get("out")) {
        if (out->empty()) {
          std::cerr << "gcreplay: --out needs a file prefix\n";
          return 2;
        }
        write_out(*out, report.counters_snapshot());
      }
      if (const auto prom = args.get("prom")) {
        scrape_once(*prom, gc::to_prometheus_text(report.counters_snapshot()));
      }
      return report.clean() ? 0 : 1;
    }

    // -- Replay (optionally durable / killed / restored) ---------------------
    std::optional<gc::ControlPlane> cp;
    cp.emplace(factory(), cp_options, gc::Rng(/*seed=*/1, /*stream=*/14));

    gc::ReplayOptions replay_options;
    replay_options.speedup = args.get_double_or("speedup", 0.0);
    replay_options.fail_fast = args.has("fail-fast");
    replay_options.max_reported = static_cast<std::size_t>(
        std::max(args.get_int_or("max-reported", 8), 1ll));

    gc::ReplayEngine engine(*cp, replay_options);
    const auto snap_path = std::filesystem::path(state + ".snap");
    const auto wal_path = std::filesystem::path(state + ".wal");

    std::uint64_t start_index = 0;
    if (restore && kill_at < 0) {
      // Two-invocation crash model: a previous run died, its checkpoint +
      // WAL are all we have.  Restore, replay the log tail, resume.
      cp->restore(read_binary_file(snap_path));
      if (std::filesystem::exists(wal_path)) {
        gc::wal_replay(*cp, read_binary_file(wal_path));
      }
      start_index = cp->ticks();
      if (start_index > log.records().size()) {
        std::cerr << gc::format(
            "gcreplay: restored state is {} ticks deep but the recording "
            "only holds {}\n",
            start_index, log.records().size());
        return 2;
      }
      std::cerr << gc::format(
          "gcreplay: restored at tick {} (snapshot + WAL), resuming\n",
          start_index);
    }

    gc::ReplayStats stats;
    if (!durable) {
      stats = engine.run(log);
    } else {
      // Checkpointed replay: every fed record is journaled, the snapshot
      // is cut on the cadence (truncating the WAL), and a --kill-at-tick
      // crash either ends the process (two-invocation model) or tears the
      // facade down and restores it in place when --restore is also set.
      gc::WalWriter wal;
      // Cut a checkpoint up front (also after a restore, where the on-disk
      // snapshot still describes the *previous* incarnation's checkpoint
      // and the fresh WAL would otherwise leave a recovery gap).
      write_binary_file(snap_path, cp->snapshot());
      write_binary_file(wal_path, wal.bytes());
      for (std::uint64_t i = start_index; i < log.records().size(); ++i) {
        const gc::AuditRecord& rec = log.records()[i];
        const bool keep_going = engine.feed(rec);
        wal.append_telemetry(frame_of(rec));
        wal.append_tick({rec.time_s, rec.long_tick, rec.safe_mode});
        if (cp->ticks() % checkpoint_every == 0) {
          write_binary_file(snap_path, cp->snapshot());
          wal.reset();
        }
        write_binary_file(wal_path, wal.bytes());
        if (kill_at >= 0 && cp->ticks() == static_cast<std::uint64_t>(kill_at)) {
          if (!restore) {
            std::cout << gc::format(
                "killed at tick {}: state persisted to {}.{{snap,wal}} — "
                "resume with --restore\n",
                cp->ticks(), state);
            return 0;
          }
          // In-process crash: the facade dies and a reborn one is rebuilt
          // strictly from the on-disk artifacts, mid-replay.
          cp.emplace(factory(), cp_options, gc::Rng(/*seed=*/1, /*stream=*/14));
          cp->restore(read_binary_file(snap_path));
          gc::wal_replay(*cp, read_binary_file(wal_path));
          engine.rebind(*cp);
          std::cerr << gc::format(
              "gcreplay: killed and restored in-process at tick {}\n",
              cp->ticks());
        }
        if (!keep_going) break;
      }
      stats = engine.stats();
    }

    std::cout << gc::format(
        "replayed {} ticks ({} long) spanning {:.0f} s of recorded time "
        "[policy {}, speedup {}]\n",
        stats.ticks, stats.long_ticks, stats.replayed_span_s,
        gc::to_string(*kind), replay_options.speedup);
    if (stats.clean()) {
      std::cout << "command stream matches the recording: no drift\n";
    } else {
      std::cout << gc::format("DRIFT: {} mismatches, first at t={:.0f} s\n",
                              stats.mismatches, stats.first_mismatch_s);
      for (const gc::ReplayMismatch& m : stats.samples) {
        std::cout << gc::format(
            "  tick {} t={:.0f}: {} recorded {:.17g}, replayed {:.17g}\n",
            m.tick, m.time_s, m.field, m.expected, m.actual);
      }
    }

    // Serve before writing artifacts: the wire episode's accept/reject
    // ledger (cp.wire.*) then lands in OUT.counters.json too.
    std::optional<gc::WireServeStats> served;
    if (const auto sock = args.get("serve")) {
      if (sock->empty()) {
        std::cerr << "gcreplay: --serve needs a socket path\n";
        return 2;
      }
      served = serve_once(*cp, *sock);
      std::cout << gc::format(
          "served {} telemetry / {} ticks / {} acks, sent {} commands "
          "({} crc rejections, {} decode errors)\n",
          served->telemetry, served->ticks, served->acks,
          served->commands_sent, served->crc_errors, served->decode_errors);
    }

    // The drift verdict rides the cp.* snapshot so `gcinspect OUT --check
    // 'cp.drift.mismatches<=0'` gates it like any other run metric.  The
    // facade's lifecycle histograms go to the .prom as histogram types.
    const auto full_snapshot = [&]() {
      gc::CountersSnapshot snap = engine.counters_snapshot();
      if (served) {
        const gc::CountersSnapshot ws = served->counters_snapshot();
        for (const auto& [name, value] : ws.counters) {
          snap.add_counter(name, value);
        }
      }
      return snap;
    };
    if (const auto out = args.get("out")) {
      if (out->empty()) {
        std::cerr << "gcreplay: --out needs a file prefix\n";
        return 2;
      }
      write_out(*out, full_snapshot(), cp->lifecycle().prometheus_histograms());
    }

    if (const auto prom = args.get("prom")) {
      if (prom->empty()) {
        std::cerr << "gcreplay: --prom needs a socket path\n";
        return 2;
      }
      scrape_once(*prom,
                  gc::to_prometheus_text(full_snapshot(),
                                         cp->lifecycle().prometheus_histograms()));
    }

    return stats.clean() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "gcreplay: " << e.what() << "\n";
    return 2;
  }
}
