#!/usr/bin/env bash
# clang-format runner for the C++ tree (.clang-format at the repo root).
# Usage:
#
#   ci/format.sh           # reformat in place
#   ci/format.sh --check   # fail (exit 1) if any file needs reformatting
#
# When clang-format is not installed the script reports and exits 0: the
# formatting gate is enforced by the CI lint job (which installs it), and a
# missing local binary should not block the build/test loop.
set -euo pipefail

cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-}"
if [ -z "${CLANG_FORMAT}" ]; then
  for candidate in clang-format clang-format-18 clang-format-17 clang-format-16 \
                   clang-format-15 clang-format-14; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      CLANG_FORMAT="${candidate}"
      break
    fi
  done
fi
if [ -z "${CLANG_FORMAT}" ]; then
  echo "ci/format.sh: clang-format not found; skipping (CI enforces it)" >&2
  exit 0
fi

# Formatted surface: the sources we own.  Third-party and generated trees
# would be listed here as exclusions if the repo grows any.
mapfile -t files < <(find src tests bench examples \
                          -name '*.h' -o -name '*.cpp' | sort)
[ "${#files[@]}" -gt 0 ] || { echo "ci/format.sh: no sources found" >&2; exit 1; }

if [ "${1:-}" = "--check" ]; then
  "${CLANG_FORMAT}" --dry-run --Werror "${files[@]}" \
    || { echo "ci/format.sh: formatting differences found (run ci/format.sh)" >&2; exit 1; }
  echo "ci/format.sh: ${#files[@]} files clean (${CLANG_FORMAT})"
else
  "${CLANG_FORMAT}" -i "${files[@]}"
  echo "ci/format.sh: formatted ${#files[@]} files (${CLANG_FORMAT})"
fi
