#!/usr/bin/env bash
# Tier-1 gate: configure, build and run the full test suite in the plain
# Release configuration, then again under AddressSanitizer + UBSan
# (GREENCLUSTER_SANITIZE).  The plain configuration also builds the bench
# harnesses and runs bench/perf_smoke once, failing if it does not produce
# a sane BENCH_core.json (the persisted perf trajectory; gitignored).
# The lint mode runs the cheap static checks (clang-format via
# ci/format.sh --check plus a tracing-compiled-out configure) without
# running the suite.
# Usage:
#
#   ci/check.sh            # both build configurations
#   ci/check.sh plain      # plain only
#   ci/check.sh sanitize   # sanitizer only
#   ci/check.sh lint       # format check + GC_TRACING=OFF configure/build
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
MODE="${1:-all}"

# perf_smoke validation needs jq; fail fast with a clear message instead of
# a confusing pipeline error halfway through the run.
require_jq() {
  command -v jq >/dev/null 2>&1 \
    || { echo "ci/check.sh: jq is required (apt-get install jq)" >&2; exit 1; }
}

run_config() {
  local name="$1"
  shift
  local dir="build-ci-${name}"
  echo "==> [${name}] configure"
  cmake -B "${dir}" -S . -DGC_WERROR=ON "$@" >/dev/null
  echo "==> [${name}] build"
  cmake --build "${dir}" -j "${JOBS}"
  echo "==> [${name}] ctest"
  (cd "${dir}" && ctest --output-on-failure --timeout 120 -j "${JOBS}")
}

# Runs perf_smoke from the given build dir and validates BENCH_core.json.
# Wall-clock numbers are machine-dependent, so this only gates on the file
# being present and structurally sane, not on absolute throughput.
perf_smoke() {
  local dir="$1"
  echo "==> [${dir}] perf_smoke"
  rm -f BENCH_core.json
  "${dir}/bench/perf_smoke" BENCH_core.json
  [ -s BENCH_core.json ] || { echo "perf_smoke: BENCH_core.json missing or empty" >&2; exit 1; }
  jq -e '(.event_loop | length) == 3
         and (.event_loop | all(.events_per_sec > 0))
         and .solve_ns_per_call > 0
         and (.solver_cache.hit_rate | . >= 0 and . <= 1)' \
    BENCH_core.json >/dev/null \
    || { echo "perf_smoke: BENCH_core.json malformed" >&2; exit 1; }
}

# Smoke-checks the --trace-out pipeline end to end: the fig8 replay must
# produce a loadable Chrome trace and a non-empty audit log.
trace_out_smoke() {
  local dir="$1"
  echo "==> [${dir}] trace-out smoke"
  local prefix="${dir}/fig8"
  "${dir}/bench/fig8_trace_replay" --trace-out="${prefix}" >/dev/null
  jq -e '(.traceEvents | length) > 0' "${prefix}.trace.json" >/dev/null \
    || { echo "trace-out: ${prefix}.trace.json malformed" >&2; exit 1; }
  jq -es 'length > 0' "${prefix}.audit.jsonl" >/dev/null \
    || { echo "trace-out: ${prefix}.audit.jsonl malformed" >&2; exit 1; }
}

lint() {
  echo "==> [lint] clang-format"
  ci/format.sh --check
  # The zero-overhead claim only holds if the tracing-compiled-out build
  # actually compiles; a call site using a helper outside trace.h would
  # break exactly here.
  echo "==> [lint] configure/build with GC_TRACING=OFF"
  cmake -B build-ci-lint -S . -DGC_WERROR=ON -DGC_TRACING=OFF \
        -DGC_BUILD_BENCH=OFF -DGC_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build build-ci-lint -j "${JOBS}"
  (cd build-ci-lint && ctest --output-on-failure --timeout 120 -j "${JOBS}" \
       -R "Obs|MetricRegistry|CountersSnapshot|TraceCollector|TraceHelpers|DecisionAuditLog")
}

case "${MODE}" in
  plain)
    require_jq
    run_config plain -DGC_BUILD_BENCH=ON
    perf_smoke build-ci-plain
    trace_out_smoke build-ci-plain
    ;;
  sanitize)
    run_config sanitize -DGREENCLUSTER_SANITIZE=ON
    ;;
  lint)
    lint
    ;;
  all)
    require_jq
    run_config plain -DGC_BUILD_BENCH=ON
    perf_smoke build-ci-plain
    trace_out_smoke build-ci-plain
    run_config sanitize -DGREENCLUSTER_SANITIZE=ON
    ;;
  *)
    echo "usage: $0 [plain|sanitize|lint|all]" >&2
    exit 2
    ;;
esac

echo "==> all checks passed"
