#!/usr/bin/env bash
# Tier-1 gate: configure, build and run the full test suite in the plain
# Release configuration, then again under AddressSanitizer + UBSan
# (GREENCLUSTER_SANITIZE).  The plain configuration also builds the bench
# harnesses and runs bench/perf_smoke once, failing if it does not produce
# a sane BENCH_core.json (the persisted perf trajectory; gitignored).
# Usage:
#
#   ci/check.sh            # both configurations
#   ci/check.sh plain      # plain only
#   ci/check.sh sanitize   # sanitizer only
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
MODE="${1:-all}"

run_config() {
  local name="$1"
  shift
  local dir="build-ci-${name}"
  echo "==> [${name}] configure"
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "==> [${name}] build"
  cmake --build "${dir}" -j "${JOBS}"
  echo "==> [${name}] ctest"
  (cd "${dir}" && ctest --output-on-failure -j "${JOBS}")
}

# Runs perf_smoke from the given build dir and validates BENCH_core.json.
# Wall-clock numbers are machine-dependent, so this only gates on the file
# being present and structurally sane, not on absolute throughput.
perf_smoke() {
  local dir="$1"
  echo "==> [${dir}] perf_smoke"
  rm -f BENCH_core.json
  "${dir}/bench/perf_smoke" BENCH_core.json
  [ -s BENCH_core.json ] || { echo "perf_smoke: BENCH_core.json missing or empty" >&2; exit 1; }
  jq -e '(.event_loop | length) == 3
         and (.event_loop | all(.events_per_sec > 0))
         and .solve_ns_per_call > 0
         and (.solver_cache.hit_rate | . >= 0 and . <= 1)' \
    BENCH_core.json >/dev/null \
    || { echo "perf_smoke: BENCH_core.json malformed" >&2; exit 1; }
}

case "${MODE}" in
  plain)
    run_config plain -DGC_BUILD_BENCH=ON
    perf_smoke build-ci-plain
    ;;
  sanitize)
    run_config sanitize -DGREENCLUSTER_SANITIZE=ON
    ;;
  all)
    run_config plain -DGC_BUILD_BENCH=ON
    perf_smoke build-ci-plain
    run_config sanitize -DGREENCLUSTER_SANITIZE=ON
    ;;
  *)
    echo "usage: $0 [plain|sanitize|all]" >&2
    exit 2
    ;;
esac

echo "==> all checks passed"
