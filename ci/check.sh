#!/usr/bin/env bash
# Tier-1 gate: configure, build and run the full test suite in the plain
# Release configuration, then again under AddressSanitizer + UBSan
# (GREENCLUSTER_SANITIZE).  Usage:
#
#   ci/check.sh            # both configurations
#   ci/check.sh plain      # plain only
#   ci/check.sh sanitize   # sanitizer only
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
MODE="${1:-all}"

run_config() {
  local name="$1"
  shift
  local dir="build-ci-${name}"
  echo "==> [${name}] configure"
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "==> [${name}] build"
  cmake --build "${dir}" -j "${JOBS}"
  echo "==> [${name}] ctest"
  (cd "${dir}" && ctest --output-on-failure -j "${JOBS}")
}

case "${MODE}" in
  plain)
    run_config plain
    ;;
  sanitize)
    run_config sanitize -DGREENCLUSTER_SANITIZE=ON
    ;;
  all)
    run_config plain
    run_config sanitize -DGREENCLUSTER_SANITIZE=ON
    ;;
  *)
    echo "usage: $0 [plain|sanitize|all]" >&2
    exit 2
    ;;
esac

echo "==> all checks passed"
