#!/usr/bin/env bash
# Tier-1 gate: configure, build and run the full test suite in the plain
# Release configuration, then again under AddressSanitizer + UBSan
# (GREENCLUSTER_SANITIZE).  The plain configuration also builds the bench
# harnesses and runs bench/perf_smoke once, failing if it does not produce
# a sane BENCH_core.json (the persisted perf trajectory; gitignored), or if
# it regresses against the committed ci/BENCH_baseline.json by more than
# BENCH_TOLERANCE (default 0.15; hosted runners set it wider — the check is
# one-sided, so a faster machine never fails it).
# The sanitize mode also runs the ThreadSanitizer lane over the sharded
# simulation core (see tsan_lane; `ci/check.sh tsan` runs just that lane).
# The lint mode runs the cheap static checks (clang-format via
# ci/format.sh --check, clang-tidy when installed, plus a
# tracing-compiled-out configure) without running the suite.
# The soak mode records a multi-day fig8 trace, replays it through
# tools/gcreplay at 1000x — including a kill at the midpoint tick and a
# checkpoint+WAL restore — and gates zero command-stream drift via
# gcinspect; it then runs the quick lossy fig15 sweep and gates the
# command-lifecycle SLOs (ack p99, retransmit rate, drop attribution)
# plus the committed metric-name manifest (ci/METRICS_manifest.txt);
# the chaos mode drives the wire serve loop through seeded
# fault schedules (drops, duplicates, reordering, corruption, mid-frame
# truncation, kill/restore) and gates the same drift oracle, plus a
# forged-snapshot negative test that must fail to load; the coverage mode
# builds with GC_COVERAGE=ON and fails if src/cp/ line coverage drops
# below 90%.
# Usage:
#
#   ci/check.sh            # every build configuration
#   ci/check.sh plain      # plain only
#   ci/check.sh sanitize   # ASan/UBSan suite + TSan sharded lane
#   ci/check.sh tsan       # TSan sharded lane only
#   ci/check.sh lint       # format check + GC_TRACING=OFF configure/build
#   ci/check.sh soak       # gcreplay drift oracle, multi-day + kill/restore
#   ci/check.sh chaos      # wire-fault schedules through the drift oracle
#   ci/check.sh coverage   # gcov lane, gates src/cp/ line coverage >= 90%
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
MODE="${1:-all}"

# Tool preflight, hoisted so a lane reports its missing prerequisites
# before spending minutes configuring and building.  jq is required by the
# lanes that parse artifacts; clang-tidy is optional locally (the CI lint
# job installs it) but its absence is announced up front with an explicit
# SKIPPED line instead of a silent mid-lane return.
require_jq() {
  command -v jq >/dev/null 2>&1 \
    || { echo "ci/check.sh: jq is required (apt-get install jq)" >&2; exit 1; }
}

# Every metric name in ci/METRICS_manifest.txt must exist in the given
# counters.json (counters and gauges share the namespace).  The manifest is
# the committed observability contract: renaming cp.lifecycle.* or
# cp.drop.* silently would strand every dashboard and --check expression,
# so a rename must touch the manifest in the same diff.
metrics_manifest_check() {
  local counters="$1"
  echo "==> metric-name manifest check (ci/METRICS_manifest.txt)"
  local missing
  missing="$(jq -r --rawfile manifest ci/METRICS_manifest.txt '
      ((.counters // {}) + (.gauges // {})) as $have
      | $manifest | split("\n")
      | map(sub("#.*"; "") | gsub("^\\s+|\\s+$"; "") | select(length > 0))
      | map(select(. as $n | ($have | has($n)) | not))
      | .[]' "${counters}")"
  [ -z "${missing}" ] \
    || { printf 'metrics manifest: missing from %s:\n%s\n' \
           "${counters}" "${missing}" >&2; exit 1; }
}

find_clang_tidy() {
  for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                   clang-tidy-15 clang-tidy-14; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      echo "${candidate}"
      return 0
    fi
  done
  return 0
}

run_config() {
  local name="$1"
  shift
  local dir="build-ci-${name}"
  echo "==> [${name}] configure"
  cmake -B "${dir}" -S . -DGC_WERROR=ON "$@" >/dev/null
  echo "==> [${name}] build"
  cmake --build "${dir}" -j "${JOBS}"
  echo "==> [${name}] ctest"
  (cd "${dir}" && ctest --output-on-failure --timeout 120 -j "${JOBS}")
}

# Runs perf_smoke from the given build dir and validates BENCH_core.json.
# Wall-clock numbers are machine-dependent, so this only gates on the file
# being present and structurally sane, not on absolute throughput.
perf_smoke() {
  local dir="$1"
  echo "==> [${dir}] perf_smoke"
  rm -f BENCH_core.json
  "${dir}/bench/perf_smoke" BENCH_core.json
  [ -s BENCH_core.json ] || { echo "perf_smoke: BENCH_core.json missing or empty" >&2; exit 1; }
  jq -e '(.event_loop | length) == 3
         and (.event_loop | all(.events_per_sec > 0))
         and .solve_ns_per_call > 0
         and .solve_reliable_ns_per_call > 0
         and (.solver_cache.hit_rate | . >= 0 and . <= 1)
         and (.sharded | length) == 12
         and (.sharded | all(.events_per_sec > 0 and .speedup > 0))
         and .sharded_speedup_k4_m16384 > 0' \
    BENCH_core.json >/dev/null \
    || { echo "perf_smoke: BENCH_core.json malformed" >&2; exit 1; }
  bench_compare
}

# One-sided regression gate against the committed baseline: throughput may
# not drop below (1 - tol) x baseline, latency may not rise above
# (1 + tol) x baseline.  Improvements never fail.  The cache hit rate is a
# deterministic replay mix, so it gets the same lower bound (a drop there
# means the memo key or the mix changed, not that the machine is slow).
bench_compare() {
  local tol="${BENCH_TOLERANCE:-0.15}"
  local baseline="ci/BENCH_baseline.json"
  [ -f "${baseline}" ] \
    || { echo "perf_smoke: ${baseline} missing (regenerate with bench/perf_smoke)" >&2; exit 1; }
  echo "==> perf_smoke vs ${baseline} (tolerance ${tol})"
  jq -en --argjson tol "${tol}" \
     --slurpfile cur BENCH_core.json --slurpfile base "${baseline}" '
    ($cur[0]) as $c | ($base[0]) as $b |
    [
      (range($b.event_loop | length) | . as $i |
        { what: "event_loop[\($b.event_loop[$i].pending_events)].events_per_sec",
          ok: ($c.event_loop[$i].events_per_sec
                 >= $b.event_loop[$i].events_per_sec * (1 - $tol)),
          cur: $c.event_loop[$i].events_per_sec,
          base: $b.event_loop[$i].events_per_sec }),
      { what: "solve_ns_per_call",
        ok: ($c.solve_ns_per_call <= $b.solve_ns_per_call * (1 + $tol)),
        cur: $c.solve_ns_per_call, base: $b.solve_ns_per_call },
      { what: "solve_reliable_ns_per_call",
        ok: ($c.solve_reliable_ns_per_call
               <= $b.solve_reliable_ns_per_call * (1 + $tol)),
        cur: $c.solve_reliable_ns_per_call,
        base: $b.solve_reliable_ns_per_call },
      # Machine-independent: the constrained solve (availability + wear on a
      # cached replay mix) must stay within a bounded factor of the plain
      # solve measured in the same run — a blowup here means the reliable
      # memo cache stopped hitting, not that the machine is slow.
      { what: "solve_reliable/solve ratio (<= 15x)",
        ok: ($c.solve_reliable_ns_per_call <= 15 * $c.solve_ns_per_call),
        cur: ($c.solve_reliable_ns_per_call / $c.solve_ns_per_call),
        base: 15 },
      { what: "solver_cache.hit_rate",
        ok: ($c.solver_cache.hit_rate >= $b.solver_cache.hit_rate * (1 - $tol)),
        cur: $c.solver_cache.hit_rate, base: $b.solver_cache.hit_rate },
      # Sharded-core scaling gate at the K=4 / M=16384 cell.  The required
      # speedup is capped at the 2.0x acceptance target but never exceeds
      # what the committed baseline itself demonstrated: a single-core
      # machine (whose baseline speedup is < 2 because there is no
      # parallelism to win) gates against its own baseline, while a
      # multi-core runner with a >= 2x baseline gates against the full
      # 2.0x target.  One-sided like everything else here.
      { what: "sharded_speedup_k4_m16384",
        ok: ($c.sharded_speedup_k4_m16384
               >= ([$b.sharded_speedup_k4_m16384, 2.0] | min) * (1 - $tol)),
        cur: $c.sharded_speedup_k4_m16384,
        base: ([$b.sharded_speedup_k4_m16384, 2.0] | min) },
      # K-invariance means sharded throughput at K=1 is a plain scalar
      # perf trajectory like event_loop: gate the M=16384 single-shard
      # cell so the DES core itself cannot quietly slow down.
      { what: "sharded[K=1,M=16384].events_per_sec",
        ok: (($c.sharded | map(select(.shards == 1 and .servers == 16384))
                | first.events_per_sec)
               >= ($b.sharded | map(select(.shards == 1 and .servers == 16384))
                     | first.events_per_sec) * (1 - $tol)),
        cur: ($c.sharded | map(select(.shards == 1 and .servers == 16384))
                | first.events_per_sec),
        base: ($b.sharded | map(select(.shards == 1 and .servers == 16384))
                 | first.events_per_sec) }
    ]
    | map(select(.ok | not))
    | if length == 0 then "ok"
      else map("perf_smoke: \(.what) regressed: \(.cur) vs baseline \(.base)")
           | join("\n") + "\n" | halt_error(1)
      end' >/dev/null \
    || { echo "perf_smoke: benchmark regression beyond tolerance ${tol}" >&2; exit 1; }
}

# Smoke-checks the --trace-out / --timeseries-out pipeline end to end: the
# fig8 replay must produce a loadable Chrome trace, a non-empty audit log
# and a per-period time series, and the artifact set must pass the
# gcinspect SLA smoke gate (the replay is fixed-seed, so the bounds are
# deterministic: no shed jobs, bounded rolling violations, energy flowing).
trace_out_smoke() {
  local dir="$1"
  echo "==> [${dir}] trace-out smoke"
  local prefix="${dir}/fig8"
  "${dir}/bench/fig8_trace_replay" --trace-out="${prefix}" \
      --timeseries-out="${prefix}" >/dev/null
  jq -e '(.traceEvents | length) > 0' "${prefix}.trace.json" >/dev/null \
    || { echo "trace-out: ${prefix}.trace.json malformed" >&2; exit 1; }
  jq -es 'length > 0' "${prefix}.audit.jsonl" >/dev/null \
    || { echo "trace-out: ${prefix}.audit.jsonl malformed" >&2; exit 1; }
  [ -s "${prefix}.timeseries.csv" ] && [ -s "${prefix}.prom" ] \
    || { echo "timeseries-out: ${prefix}.timeseries.csv / .prom missing" >&2; exit 1; }
  echo "==> [${dir}] gcinspect check"
  "${dir}/tools/gcinspect" "${prefix}" --check \
      'obs.timeseries.rows>=1000,rolling_viol_frac:max<=0.5,d_shed:sum<=0,energy_j:last>0,sim.jobs.lost<=0'
}

# The reliability gate: the fig16 wear-aware demo run (fixed seed, so every
# bound is deterministic) must plan availability at or above its A_ref of
# 0.9, and must boot strictly fewer servers than the naive run of the same
# comparison (49 boots at this seed; the wear-aware run does 15 — the gate
# leaves slack for model-parameter drift while still proving wear
# awareness bites).
fig16_smoke() {
  local dir="$1"
  echo "==> [${dir}] fig16 reliability smoke"
  local prefix="${dir}/fig16"
  "${dir}/bench/fig16_reliability" --trace-out="${prefix}" \
      --timeseries-out="${prefix}" >/dev/null
  jq -es 'length > 0 and (last | has("solved_spares"))' "${prefix}.audit.jsonl" >/dev/null \
    || { echo "fig16: ${prefix}.audit.jsonl missing reliability columns" >&2; exit 1; }
  echo "==> [${dir}] gcinspect check (fig16)"
  "${dir}/tools/gcinspect" "${prefix}" --check \
      'reliability.availability_estimate>=0.9,fleet.boot_count>0,fleet.boot_count<30,fleet.wear_fraction_max>0,solved_spares:max>=1'
}

# ThreadSanitizer lane for the sharded simulation core: builds with
# GC_TSAN=ON and drives the parallel barrier loop two ways — the
# shard-determinism property suite (K up to 8 worker threads) and the fig8
# trace replay at K=4.  The full test suite is not repeated under TSan: it
# is single-threaded, the ASan/UBSan lane already covers it, and TSan's
# ~10x slowdown would dominate CI for zero additional thread coverage.
tsan_lane() {
  local dir="build-ci-tsan"
  echo "==> [tsan] configure"
  cmake -B "${dir}" -S . -DGC_WERROR=ON -DGC_TSAN=ON \
        -DGC_BUILD_EXAMPLES=OFF -DGC_BUILD_TOOLS=OFF >/dev/null
  echo "==> [tsan] build"
  cmake --build "${dir}" -j "${JOBS}" \
        --target test_sharded_determinism fig8_trace_replay
  echo "==> [tsan] sharded determinism suite"
  (cd "${dir}" && ctest --output-on-failure --timeout 600 --no-tests=error \
       -R 'ShardedDeterminism')
  echo "==> [tsan] fig8 replay at K=4"
  "${dir}/bench/fig8_trace_replay" --shards=4 >/dev/null
}

# clang-tidy over the sources we own, using the lint build's compile
# database.  The binary was probed (and its absence announced) before the
# lane started; an empty name here means skip.  The profile lives in
# .clang-tidy (bugprone-* + performance-*).
clang_tidy() {
  local tidy="$1"
  [ -n "${tidy}" ] || return 0
  echo "==> [lint] ${tidy}"
  [ -f build-ci-lint/compile_commands.json ] \
    || { echo "clang-tidy: build-ci-lint/compile_commands.json missing" >&2; exit 1; }
  find src -name '*.cpp' | sort \
    | xargs -P "${JOBS}" -n 4 "${tidy}" -p build-ci-lint --quiet \
    || { echo "clang-tidy: analysis failed (see above)" >&2; exit 1; }
}

lint() {
  # Probe every tool first: a box without clang-tidy learns that before the
  # multi-minute configure/build, not after.
  local tidy
  tidy="$(find_clang_tidy)"
  if [ -z "${tidy}" ]; then
    echo "==> [lint] SKIPPED: clang-tidy (not installed; the CI lint job enforces it)"
  fi
  echo "==> [lint] clang-format"
  ci/format.sh --check
  # The zero-overhead claim only holds if the tracing-compiled-out build
  # actually compiles; a call site using a helper outside trace.h would
  # break exactly here.
  echo "==> [lint] configure/build with GC_TRACING=OFF"
  cmake -B build-ci-lint -S . -DGC_WERROR=ON -DGC_TRACING=OFF \
        -DGC_BUILD_BENCH=OFF -DGC_BUILD_EXAMPLES=OFF \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  cmake --build build-ci-lint -j "${JOBS}"
  clang_tidy "${tidy}"
  (cd build-ci-lint && ctest --output-on-failure --timeout 120 -j "${JOBS}" \
       -R "Obs|MetricRegistry|CountersSnapshot|TraceCollector|TraceHelpers|DecisionAuditLog")
}

# The soak lane (DESIGN.md §12.3 + §13): record a multi-day "datacenter"
# trace (the fig8 WC98-like replay, fixed seeds) with the observability
# sinks attached, then stream the recording through tools/gcreplay at
# 1000x virtual time and gate on *zero* command-stream drift — once
# uninterrupted, and once with the controller killed at the midpoint tick
# and restored from its checkpoint + WAL (the crash must be invisible in
# the drift counters).  A forged copy of the recording must conversely
# FAIL the replay — proving the oracle can actually see drift, not just
# that drift is absent.
soak_lane() {
  require_jq
  local dir="build-ci-soak"
  echo "==> [soak] configure"
  cmake -B "${dir}" -S . -DGC_WERROR=ON -DGC_BUILD_EXAMPLES=OFF \
        -DGC_BUILD_TESTS=OFF >/dev/null
  echo "==> [soak] build"
  cmake --build "${dir}" -j "${JOBS}" \
        --target fig8_trace_replay fig15_control_faults gcreplay gcinspect
  local prefix="${dir}/soak"
  echo "==> [soak] record four compressed days (fig8 trace replay)"
  "${dir}/bench/fig8_trace_replay" --days=4 --trace-out="${prefix}" \
      --timeseries-out="${prefix}" >/dev/null
  echo "==> [soak] gcreplay at 1000x"
  "${dir}/tools/gcreplay" "${prefix}" --speedup=1000 --out="${dir}/replay"
  echo "==> [soak] drift gate (gcinspect)"
  "${dir}/tools/gcinspect" "${dir}/replay" --check \
      'cp.drift.mismatches<=0,cp.drift.ticks>=2000,cp.drift.replayed_span_s>=9000'
  # Kill the replay halfway through the recording, then resume from the
  # persisted snapshot + WAL: the spliced run must stay drift-free too.
  local ticks mid
  ticks="$(jq -s 'length' "${prefix}.audit.jsonl")"
  mid=$(( ticks / 2 ))
  echo "==> [soak] kill at tick ${mid} of ${ticks}, restore, replay the rest"
  "${dir}/tools/gcreplay" "${prefix}" --speedup=1000 \
      --state="${dir}/soak-state" --kill-at-tick="${mid}" >/dev/null
  [ -s "${dir}/soak-state.snap" ] \
    || { echo "soak: kill left no snapshot behind" >&2; exit 1; }
  "${dir}/tools/gcreplay" "${prefix}" --speedup=1000 \
      --state="${dir}/soak-state" --restore --out="${dir}/replay-restored"
  echo "==> [soak] drift gate after kill/restore (gcinspect)"
  "${dir}/tools/gcinspect" "${dir}/replay-restored" --check \
      "cp.drift.mismatches<=0,cp.drift.ticks>=$(( ticks - mid - 10 ))"
  echo "==> [soak] forged recording must fail the oracle"
  jq -c 'if .t >= 4000 and .t < 4200 and .speed_set
         then .speed = 0.123456 else . end' \
     "${prefix}.audit.jsonl" > "${dir}/forged.audit.jsonl"
  cmp -s "${prefix}.audit.jsonl" "${dir}/forged.audit.jsonl" \
    && { echo "soak: forging the recording changed nothing" >&2; exit 1; }
  local rc=0
  "${dir}/tools/gcreplay" "${dir}/forged" >/dev/null 2>&1 || rc=$?
  [ "${rc}" -eq 1 ] \
    || { echo "soak: forged replay exited ${rc}, expected drift exit 1" >&2; exit 1; }
  # The lifecycle gate (DESIGN.md §14): the quick lossy fig15 sweep must
  # produce a per-command timeline the --lifecycle view can reconstruct,
  # keep decision→ack p99 and the retransmit rate inside generous but
  # real bounds (ack_timeout 5 s + 5 s RTT + retries stays far below
  # 60 s unless retransmission breaks), and attribute at least one drop
  # (the 10% loss point guarantees channel drops at this seed).
  echo "==> [soak] fig15 quick sweep with lifecycle artifacts"
  local f15="${dir}/fig15"
  "${dir}/bench/fig15_control_faults" --quick --trace-out="${f15}" \
      --timeseries-out="${f15}" >/dev/null
  [ -s "${f15}.lifecycle.jsonl" ] \
    || { echo "soak: ${f15}.lifecycle.jsonl missing or empty" >&2; exit 1; }
  echo "==> [soak] lifecycle gate (gcinspect)"
  "${dir}/tools/gcinspect" "${f15}" --check \
      'cp.lifecycle.ack_latency:p99<=60,cp.lifecycle.retransmit_rate<=5,cp.drop.total>=1,cp.lifecycle.issued>=1000'
  echo "==> [soak] lifecycle view reconstructs the timeline"
  "${dir}/tools/gcinspect" "${f15}" --lifecycle \
    | grep -q 'command lifecycles' \
    || { echo "soak: gcinspect --lifecycle produced no table" >&2; exit 1; }
  metrics_manifest_check "${f15}.counters.json"
}

# The chaos lane (DESIGN.md §13.4): replay the recorded day through the
# *wire* serve loop while a seeded schedule injects transport faults —
# drops, duplicates, reordering, corrupt bytes, mid-frame truncation and
# full kill/restore cycles — and gate zero command-stream drift against
# the clean in-process oracle.  Schedules run against a clean recording
# and again with a lossier mix; a forged (bit-flipped) snapshot must then
# fail to restore — the crash-recovery analogue of the soak lane's forged
# recording.
chaos_lane() {
  require_jq
  local dir="build-ci-chaos"
  echo "==> [chaos] configure"
  cmake -B "${dir}" -S . -DGC_WERROR=ON -DGC_BUILD_EXAMPLES=OFF \
        -DGC_BUILD_TESTS=OFF >/dev/null
  echo "==> [chaos] build"
  cmake --build "${dir}" -j "${JOBS}" \
        --target fig8_trace_replay gcreplay gcinspect
  local prefix="${dir}/chaos"
  echo "==> [chaos] record the datacenter day (fig8 trace replay)"
  "${dir}/bench/fig8_trace_replay" --trace-out="${prefix}" \
      --timeseries-out="${prefix}" >/dev/null
  # Schedules x {clean, lossy}: the clean schedule proves the harness
  # itself introduces no drift; the lossy mixes layer every fault type,
  # including back-to-back kills landing on and off checkpoint boundaries.
  local schedule
  for schedule in \
      "" \
      "corrupt@40,truncate@90,kill@140,dup@200,reorder@260,drop@320" \
      "kill@64,kill@66,corrupt@128,kill@129,truncate@400,kill@2200,dup@2300,drop@3000"; do
    echo "==> [chaos] schedule '${schedule:-<clean>}'"
    "${dir}/tools/gcreplay" "${prefix}" --chaos="${schedule}" \
        --out="${dir}/chaos-out"
    "${dir}/tools/gcinspect" "${dir}/chaos-out" --check \
        'cp.drift.mismatches<=0,cp.chaos.inputs>=3000'
  done
  echo "==> [chaos] forged snapshot must fail to restore"
  local ticks mid
  ticks="$(jq -s 'length' "${prefix}.audit.jsonl")"
  mid=$(( ticks / 2 ))
  "${dir}/tools/gcreplay" "${prefix}" --state="${dir}/chaos-state" \
      --kill-at-tick="${mid}" >/dev/null
  local snap="${dir}/chaos-state.snap"
  [ -s "${snap}" ] || { echo "chaos: kill left no snapshot behind" >&2; exit 1; }
  # Flip one payload byte (offset 100 sits past the 16-byte envelope
  # header): the CRC trailer must reject the image outright.
  local byte
  byte="$(od -An -tu1 -j 100 -N 1 "${snap}" | tr -dc '0-9')"
  printf "$(printf '\\%03o' $(( (byte + 1) % 256 )))" \
    | dd of="${snap}" bs=1 seek=100 conv=notrunc status=none
  local rc=0
  "${dir}/tools/gcreplay" "${prefix}" --state="${dir}/chaos-state" --restore \
      >/dev/null 2>&1 || rc=$?
  [ "${rc}" -ne 0 ] \
    || { echo "chaos: forged snapshot restored cleanly, expected a failure" >&2; exit 1; }
}

# The coverage lane: gcov-instrumented build, the control-plane test suites,
# then src/cp/ line coverage aggregated from gcov JSON.  Gates at 90%: the
# extracted library is the piece a real deployment would link, so its tests
# must keep exercising essentially all of it.
coverage_lane() {
  require_jq
  command -v gcov >/dev/null 2>&1 \
    || { echo "ci/check.sh: gcov is required for the coverage lane" >&2; exit 1; }
  local dir="build-ci-coverage"
  local min_pct="${GC_COVERAGE_MIN:-90}"
  echo "==> [coverage] configure (GC_COVERAGE=ON)"
  cmake -B "${dir}" -S . -DGC_WERROR=ON -DGC_COVERAGE=ON \
        -DGC_BUILD_BENCH=OFF -DGC_BUILD_EXAMPLES=OFF -DGC_BUILD_TOOLS=OFF \
        -DCMAKE_BUILD_TYPE=Debug >/dev/null
  echo "==> [coverage] build control-plane suites"
  cmake --build "${dir}" -j "${JOBS}" \
        --target test_control_plane test_replay test_wire test_replay_fuzz \
                 test_snapshot test_wal test_chaos test_lifecycle
  echo "==> [coverage] run control-plane suites"
  (cd "${dir}" && ctest --output-on-failure --timeout 120 --no-tests=error \
       -R 'ControlPlane|Replay|ReplayFuzz|Wire|WireServe|ValidateTimeseries|Snapshot|Wal|Chaos|Scrape|Lifecycle|DropAttribution')
  echo "==> [coverage] aggregate src/cp/ line coverage (gcov)"
  find "${dir}" -name '*.gcda' -print0 \
    | xargs -0 gcov --json-format --stdout > "${dir}/gcov.json" 2>/dev/null
  [ -s "${dir}/gcov.json" ] \
    || { echo "coverage: no gcov output (missing .gcda files?)" >&2; exit 1; }
  # One JSON document per object file; lines for the same source (headers
  # in many TUs) aggregate by max hit count.  The summary artifact is the
  # lcov-style per-file table CI uploads.
  jq -s '
    [ .[] | .files[] | select(.file | contains("src/cp/"))
      | .file as $f | .lines[]
      | {f: ($f | sub(".*/src/"; "src/")), l: .line_number, c: .count} ]
    | group_by([.f, .l])
    | map({f: .[0].f, hit: ((map(.c) | max) > 0)})
    | group_by(.f)
    | map({file: .[0].f, lines: length,
           covered: (map(select(.hit)) | length)})
    | map(.percent = 100 * .covered / .lines)
    | {files: .,
       lines: (map(.lines) | add),
       covered: (map(.covered) | add)}
    | .percent = 100 * .covered / .lines
  ' "${dir}/gcov.json" > "${dir}/COVERAGE_cp.json"
  jq -r '(.files[] | "\(.file): \(.covered)/\(.lines) lines (\(.percent * 100 | round / 100)%)"),
         "TOTAL src/cp/: \(.covered)/\(.lines) lines (\(.percent * 100 | round / 100)%)"' \
     "${dir}/COVERAGE_cp.json" | tee "${dir}/COVERAGE_cp.txt"
  jq -e --argjson min "${min_pct}" '.percent >= $min' \
     "${dir}/COVERAGE_cp.json" >/dev/null \
    || { echo "coverage: src/cp/ line coverage below ${min_pct}%" >&2; exit 1; }
}

case "${MODE}" in
  plain)
    require_jq
    run_config plain -DGC_BUILD_BENCH=ON
    perf_smoke build-ci-plain
    trace_out_smoke build-ci-plain
    fig16_smoke build-ci-plain
    ;;
  sanitize)
    run_config sanitize -DGREENCLUSTER_SANITIZE=ON
    # The malformed-artifact corpus (tests/corpus/) runs inside the full
    # suite above; re-running it by name makes the fuzz gate explicit and
    # guards against the suites being filtered out of a future config.
    echo "==> [sanitize] replay fuzz corpus + durable-state loaders"
    (cd build-ci-sanitize && ctest --output-on-failure --timeout 120 \
         --no-tests=error -R 'ReplayFuzz|Wire|Snapshot|Wal|Chaos')
    tsan_lane
    ;;
  tsan)
    tsan_lane
    ;;
  lint)
    lint
    ;;
  soak)
    soak_lane
    ;;
  chaos)
    chaos_lane
    ;;
  coverage)
    coverage_lane
    ;;
  all)
    require_jq
    run_config plain -DGC_BUILD_BENCH=ON
    perf_smoke build-ci-plain
    trace_out_smoke build-ci-plain
    fig16_smoke build-ci-plain
    run_config sanitize -DGREENCLUSTER_SANITIZE=ON
    tsan_lane
    soak_lane
    chaos_lane
    coverage_lane
    ;;
  *)
    echo "usage: $0 [plain|sanitize|tsan|lint|soak|chaos|coverage|all]" >&2
    exit 2
    ;;
esac

echo "==> all checks passed"
