// obs/timeseries.h — columnar append, type-aware decimation (delta sums
// preserved, memory bounded), same-instant tick folding, the rolling SLA
// window, and the CSV/JSON exports.
#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace gc {
namespace {

using Col = TimeSeriesRecorder::Col;

TimeSeriesSample sample_at(double t) {
  TimeSeriesSample s;
  s.time = t;
  s.serving = 8;
  s.power_w = 100.0;
  return s;
}

// Sum of one column over the full export (stored rows + pending stride).
double export_sum(const TimeSeriesRecorder& recorder, Col col) {
  const CsvTable table = recorder.to_csv_table();
  double total = 0.0;
  for (const auto& row : table.rows) total += row[col];
  return total;
}

TEST(TimeSeriesOptions, ValidateRejectsBadBudgets) {
  TimeSeriesOptions opts;
  opts.max_points = 15;  // odd and < 16
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts.max_points = 18;  // even but... 18 is fine
  EXPECT_NO_THROW(opts.validate());
  opts.max_points = 17;  // odd
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts = {};
  opts.sla_window = 0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
}

TEST(TimeSeries, AppendStoresOneRowPerPeriod) {
  TimeSeriesRecorder recorder;
  for (int i = 0; i < 10; ++i) {
    TimeSeriesSample s = sample_at(5.0 * i);
    s.observed_rate = 2.0 * i;
    recorder.append(s);
  }
  EXPECT_EQ(recorder.size(), 10u);
  EXPECT_EQ(recorder.periods(), 10u);
  EXPECT_EQ(recorder.stride(), 1u);
  EXPECT_DOUBLE_EQ(recorder.value(Col::kTime, 0), 0.0);
  EXPECT_DOUBLE_EQ(recorder.value(Col::kTime, 9), 45.0);
  EXPECT_DOUBLE_EQ(recorder.value(Col::kObservedRate, 3), 6.0);
  EXPECT_DOUBLE_EQ(recorder.value(Col::kServing, 0), 8.0);
  EXPECT_THROW((void)recorder.value(Col::kTime, 10), std::out_of_range);
}

TEST(TimeSeries, DecimationBoundsMemoryAndPreservesDeltaSums) {
  TimeSeriesOptions opts;
  opts.max_points = 16;
  TimeSeriesRecorder recorder(opts);
  std::uint64_t shed_total = 0, admitted_total = 0, completed_total = 0;
  const int periods = 1000;
  for (int i = 0; i < periods; ++i) {
    TimeSeriesSample s = sample_at(5.0 * i);
    s.d_admitted = static_cast<std::uint64_t>(3 + (i % 5));
    s.d_shed = static_cast<std::uint64_t>(i % 3);
    s.window_completed = static_cast<std::uint64_t>(2 + (i % 4));
    s.d_ticks_missed = (i % 7 == 0) ? 1u : 0u;
    s.energy_j = 10.0 * i;  // cumulative, monotone
    admitted_total += s.d_admitted;
    shed_total += s.d_shed;
    completed_total += s.window_completed;
    recorder.append(s);
  }
  EXPECT_EQ(recorder.periods(), static_cast<std::uint64_t>(periods));
  EXPECT_LT(recorder.size(), opts.max_points);
  EXPECT_GT(recorder.stride(), 1u);  // halved at least once
  // Type-aware merging: per-period deltas and window counts survive
  // decimation exactly; nothing was silently dropped.
  EXPECT_DOUBLE_EQ(export_sum(recorder, Col::kDAdmitted),
                   static_cast<double>(admitted_total));
  EXPECT_DOUBLE_EQ(export_sum(recorder, Col::kDShed),
                   static_cast<double>(shed_total));
  EXPECT_DOUBLE_EQ(export_sum(recorder, Col::kWinCompleted),
                   static_cast<double>(completed_total));
  EXPECT_DOUBLE_EQ(export_sum(recorder, Col::kDTicksMissed),
                   std::ceil(periods / 7.0));
  // kLast columns: each stored row represents its stride's latest instant,
  // so times strictly increase and the final row is the final period.
  const CsvTable table = recorder.to_csv_table();
  for (std::size_t row = 1; row < table.rows.size(); ++row) {
    EXPECT_LT(table.rows[row - 1][Col::kTime], table.rows[row][Col::kTime]);
    EXPECT_LE(table.rows[row - 1][Col::kEnergyJ], table.rows[row][Col::kEnergyJ]);
  }
  EXPECT_DOUBLE_EQ(table.rows.back()[Col::kTime], 5.0 * (periods - 1));
  EXPECT_DOUBLE_EQ(table.rows.back()[Col::kEnergyJ], 10.0 * (periods - 1));
}

TEST(TimeSeries, StrideDoublesOnEachHalving) {
  TimeSeriesOptions opts;
  opts.max_points = 16;
  TimeSeriesRecorder recorder(opts);
  std::size_t last_stride = recorder.stride();
  EXPECT_EQ(last_stride, 1u);
  for (int i = 0; i < 64; ++i) {
    recorder.append(sample_at(1.0 * i));
    const std::size_t stride = recorder.stride();
    EXPECT_TRUE(stride == last_stride || stride == 2 * last_stride);
    last_stride = stride;
  }
  EXPECT_EQ(last_stride, 8u);  // 64 periods / 16 budget, halved at 16/32/64
}

TEST(TimeSeries, SameInstantTicksFoldIntoOnePeriod) {
  TimeSeriesRecorder recorder;
  TimeSeriesSample long_tick = sample_at(60.0);
  long_tick.long_tick = true;
  long_tick.window_completed = 10;
  long_tick.window_mean_response_s = 1.0;
  long_tick.d_shed = 2;
  long_tick.d_admitted = 8;
  recorder.append(long_tick);

  TimeSeriesSample short_tick = sample_at(60.0);  // same instant
  short_tick.window_completed = 30;
  short_tick.window_mean_response_s = 2.0;
  short_tick.d_shed = 1;
  short_tick.d_admitted = 9;
  short_tick.serving = 12;
  recorder.append(short_tick);

  EXPECT_EQ(recorder.periods(), 1u);  // folded, not a second period
  EXPECT_EQ(recorder.size(), 1u);
  EXPECT_DOUBLE_EQ(recorder.value(Col::kLongTick, 0), 1.0);  // max: flag kept
  EXPECT_DOUBLE_EQ(recorder.value(Col::kServing, 0), 12.0);  // last
  EXPECT_DOUBLE_EQ(recorder.value(Col::kWinCompleted, 0), 40.0);  // sum
  // Count-weighted mean: (10 * 1.0 + 30 * 2.0) / 40.
  EXPECT_DOUBLE_EQ(recorder.value(Col::kWinMeanT, 0), 1.75);
  // Deltas add, and the derived shed fraction is recomputed from the sums.
  EXPECT_DOUBLE_EQ(recorder.value(Col::kDShed, 0), 3.0);
  EXPECT_DOUBLE_EQ(recorder.value(Col::kDAdmitted, 0), 17.0);
  EXPECT_DOUBLE_EQ(recorder.value(Col::kShedFrac, 0), 3.0 / 20.0);

  // A later instant starts a fresh period again.
  recorder.append(sample_at(65.0));
  EXPECT_EQ(recorder.periods(), 2u);
}

TEST(TimeSeries, RollingViolationWindowSlides) {
  TimeSeriesOptions opts;
  opts.sla_window = 4;
  TimeSeriesRecorder recorder(opts);
  const bool violated[6] = {true, true, false, false, false, false};
  const double expected[6] = {1.0, 1.0, 2.0 / 3.0, 0.5, 0.25, 0.0};
  for (int i = 0; i < 6; ++i) {
    TimeSeriesSample s = sample_at(5.0 * i);
    s.window_violated = violated[i];
    recorder.append(s);
    EXPECT_DOUBLE_EQ(recorder.rolling_violation(), expected[i]) << "period " << i;
    EXPECT_DOUBLE_EQ(recorder.value(Col::kRollingViolFrac,
                                    static_cast<std::size_t>(i)),
                     expected[i]);
  }
}

TEST(TimeSeries, ExportsIncludeThePendingPartialStride) {
  TimeSeriesOptions opts;
  opts.max_points = 16;
  TimeSeriesRecorder recorder(opts);
  for (int i = 0; i < 17; ++i) {  // 16 stored -> halve to 8, stride 2; one extra
    TimeSeriesSample s = sample_at(1.0 * i);
    s.d_admitted = 1;
    recorder.append(s);
  }
  EXPECT_EQ(recorder.stride(), 2u);
  EXPECT_EQ(recorder.size(), 8u);  // the 17th period is pending, not stored
  const CsvTable table = recorder.to_csv_table();
  EXPECT_EQ(table.rows.size(), 9u);  // exports flush it
  EXPECT_DOUBLE_EQ(table.rows.back()[Col::kTime], 16.0);
  EXPECT_DOUBLE_EQ(export_sum(recorder, Col::kDAdmitted), 17.0);
}

TEST(TimeSeries, CsvHasTheSchemaHeaderAndJsonHasEveryColumn) {
  TimeSeriesRecorder recorder;
  TimeSeriesSample s = sample_at(5.0);
  s.observed_rate = 42.5;
  recorder.append(s);

  const auto dir = std::filesystem::temp_directory_path() / "gc_ts_test";
  std::filesystem::create_directories(dir);
  const auto path = dir / "out.timeseries.csv";
  recorder.write_csv(path);
  std::ifstream in(path);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_TRUE(header.starts_with("t,long_tick,measured,observed_rate"));
  std::string row;
  ASSERT_TRUE(std::getline(in, row));
  EXPECT_TRUE(row.starts_with("5,0,0,42.5"));
  std::filesystem::remove_all(dir);

  const std::string json = recorder.to_json();
  EXPECT_NE(json.find("\"stride\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"periods\": 1"), std::string::npos);
  for (const std::string& name : TimeSeriesRecorder::column_names()) {
    EXPECT_NE(json.find('"' + name + '"'), std::string::npos) << name;
  }
  EXPECT_EQ(TimeSeriesRecorder::column_names().size(),
            static_cast<std::size_t>(Col::kNumColumns));
}

TEST(TimeSeries, ClearResetsEverything) {
  TimeSeriesOptions opts;
  opts.max_points = 16;
  TimeSeriesRecorder recorder(opts);
  for (int i = 0; i < 40; ++i) {
    TimeSeriesSample s = sample_at(1.0 * i);
    s.window_violated = true;
    recorder.append(s);
  }
  recorder.clear();
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_EQ(recorder.periods(), 0u);
  EXPECT_EQ(recorder.stride(), 1u);
  EXPECT_DOUBLE_EQ(recorder.rolling_violation(), 0.0);
  EXPECT_TRUE(recorder.to_csv_table().rows.empty());
  // A sample at t = 0 after clear() is a fresh period, not a same-time fold.
  recorder.append(sample_at(0.0));
  EXPECT_EQ(recorder.periods(), 1u);
  EXPECT_EQ(recorder.size(), 1u);
}

}  // namespace
}  // namespace gc
