// Property-style round-trip and malformed-input tests for the two text
// formats the toolchain persists: INI config files (core/config_io) and
// arrival-trace CSVs (workload/trace).
//
// The round-trip property is *byte* stability: serialize → parse →
// serialize must reproduce the first serialization exactly.  (One
// serialization is allowed to canonicalize — {:.9g} formatting — but the
// canonical form must be a fixed point, or configs would drift every time
// a tool loads and saves them.)  The malformed corpus checks that
// truncated, non-numeric, NaN/Inf and duplicate-key inputs fail with a
// catchable exception — never UB, aborts, or silently-poisoned values.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "control/config_io.h"
#include "core/config_io.h"
#include "stats/rng.h"
#include "workload/trace.h"

namespace gc {
namespace {

// -- config write -> parse -> write -----------------------------------------

std::string serialize(const ClusterConfig& config, const DcpParams& dcp) {
  return to_ini(config, dcp).to_string();
}

ClusterConfig random_config(Rng& rng) {
  ClusterConfig config;
  config.max_servers = 1 + static_cast<unsigned>(rng.uniform01() * 500.0);
  config.min_servers =
      1 + static_cast<unsigned>(rng.uniform01() * (config.max_servers - 1));
  config.mu_max = 0.5 + rng.uniform01() * 100.0;
  // T_ref must exceed the bare service time 1/mu at full speed.
  config.t_ref_s = 1.0 / config.mu_max * (1.5 + rng.uniform01() * 10.0);
  config.perf_model =
      rng.uniform01() < 0.5 ? PerfModel::kMm1PerServer : PerfModel::kMmcCluster;
  config.power.p_idle_watts = 50.0 + rng.uniform01() * 250.0;
  config.power.p_max_watts = config.power.p_idle_watts + 1.0 + rng.uniform01() * 300.0;
  config.power.p_off_watts = rng.uniform01() * 10.0;
  config.power.alpha = 1.0 + rng.uniform01() * 2.0;
  config.power.utilization_gated = rng.uniform01() < 0.5;
  if (rng.uniform01() < 0.5) {
    std::vector<double> ghz;
    double f = 0.5 + rng.uniform01();
    const std::size_t levels = 2 + static_cast<std::size_t>(rng.uniform01() * 6.0);
    for (std::size_t i = 0; i < levels; ++i) {
      ghz.push_back(f);
      f += 0.1 + rng.uniform01() * 0.5;
    }
    config.ladder = FrequencyLadder(std::move(ghz));
  } else {
    config.ladder = FrequencyLadder::continuous(0.1 + rng.uniform01() * 0.8);
  }
  config.transition.boot_delay_s = rng.uniform01() * 120.0;
  config.transition.shutdown_delay_s = rng.uniform01() * 30.0;
  return config;
}

DcpParams random_dcp(Rng& rng) {
  DcpParams dcp;
  dcp.long_period_s = 60.0 + rng.uniform01() * 600.0;
  dcp.short_period_s = 1.0 + rng.uniform01() * 59.0;
  dcp.safety_margin = 1.0 + rng.uniform01();
  dcp.scale_down_patience = 1 + static_cast<unsigned>(rng.uniform01() * 9.0);
  dcp.auto_patience_from_break_even = rng.uniform01() < 0.5;
  return dcp;
}

TEST(ConfigRoundTrip, DefaultsAreByteStable) {
  const std::string first = serialize(ClusterConfig{}, DcpParams{});
  const IniFile parsed = IniFile::parse(first);
  const std::string second =
      serialize(cluster_config_from_ini(parsed), dcp_params_from_ini(parsed));
  EXPECT_EQ(first, second);
}

TEST(ConfigRoundTrip, RandomConfigsAreByteStable) {
  for (int i = 0; i < 200; ++i) {
    Rng draw(static_cast<std::uint64_t>(i) + 1, 2);
    const ClusterConfig config = random_config(draw);
    const DcpParams dcp = random_dcp(draw);
    const std::string first = serialize(config, dcp);
    const IniFile parsed = IniFile::parse(first);
    const ClusterConfig config2 = cluster_config_from_ini(parsed);
    const DcpParams dcp2 = dcp_params_from_ini(parsed);
    const std::string second = serialize(config2, dcp2);
    ASSERT_EQ(first, second) << "round-trip drift at iteration " << i;
    // And the parse is loss-free at the {:.9g} precision the writer uses.
    ASSERT_EQ(config2.max_servers, config.max_servers);
    ASSERT_EQ(config2.perf_model, config.perf_model);
    ASSERT_NEAR(config2.mu_max, config.mu_max, 1e-6 * config.mu_max);
  }
}

TEST(ConfigRoundTrip, SecondGenerationIsAFixedPoint) {
  // Even hand-written input with non-canonical spelling converges after
  // one write and never moves again.
  const IniFile hand = IniFile::parse(
      "[cluster]\nmax_servers=12\nmu_max = 010.250\nt_ref_ms =\t500\n");
  const std::string gen1 =
      serialize(cluster_config_from_ini(hand), dcp_params_from_ini(hand));
  const IniFile reparsed = IniFile::parse(gen1);
  const std::string gen2 =
      serialize(cluster_config_from_ini(reparsed), dcp_params_from_ini(reparsed));
  EXPECT_EQ(gen1, gen2);
}

// -- malformed config corpus -------------------------------------------------

TEST(ConfigCorpus, TruncatedInputsThrow) {
  EXPECT_THROW(IniFile::parse("[cluster\nmax_servers = 4\n"), std::runtime_error);
  EXPECT_THROW(IniFile::parse("[]\n"), std::runtime_error);
  EXPECT_THROW(IniFile::parse("max_servers = 4\n"), std::runtime_error);  // no section
  EXPECT_THROW(IniFile::parse("[cluster]\nmax_servers\n"), std::runtime_error);
  EXPECT_THROW(IniFile::parse("[cluster]\n= 4\n"), std::runtime_error);
}

TEST(ConfigCorpus, NonNumericValuesThrowAtTypedRead) {
  const IniFile ini = IniFile::parse("[cluster]\nmax_servers = twelve\n");
  EXPECT_THROW((void)cluster_config_from_ini(ini), std::runtime_error);
  const IniFile garbled = IniFile::parse("[cluster]\nmu_max = 12abc\n");
  EXPECT_THROW((void)cluster_config_from_ini(garbled), std::runtime_error);
}

TEST(ConfigCorpus, NaNAndInfValuesAreRejected) {
  for (const char* bad : {"nan", "-nan", "inf", "-inf", "infinity"}) {
    const IniFile ini =
        IniFile::parse(std::string("[cluster]\nmu_max = ") + bad + "\n");
    EXPECT_THROW((void)cluster_config_from_ini(ini), std::runtime_error)
        << "accepted mu_max = " << bad;
  }
  const IniFile dcp_nan = IniFile::parse("[dcp]\nsafety_margin = nan\n");
  EXPECT_THROW((void)dcp_params_from_ini(dcp_nan), std::runtime_error);
  const IniFile ladder_inf = IniFile::parse("[ladder]\nlevels_ghz = 1.0 inf\n");
  EXPECT_THROW((void)cluster_config_from_ini(ladder_inf), std::runtime_error);
}

TEST(ConfigCorpus, DuplicateKeysKeepTheLastValue) {
  // Documented parser behavior (see test_ini): duplicates are not an
  // error, the last assignment wins — deterministic, never UB.  The config
  // layer inherits that contract.
  const IniFile ini =
      IniFile::parse("[cluster]\nmax_servers = 4\nmax_servers = 9\n");
  EXPECT_EQ(cluster_config_from_ini(ini).max_servers, 9u);
}

TEST(ConfigCorpus, OutOfRangeIntegersThrow) {
  const IniFile negative = IniFile::parse("[cluster]\nmax_servers = -3\n");
  EXPECT_THROW((void)cluster_config_from_ini(negative), std::runtime_error);
  const IniFile huge = IniFile::parse("[cluster]\nmax_servers = 8589934592\n");
  EXPECT_THROW((void)cluster_config_from_ini(huge), std::runtime_error);
}

// -- malformed robustness-policy sections (control/config_io) ----------------
// These must *throw*, never clamp: a negative MTBF or a spare fraction of
// 1.5 silently squeezed into range would change provisioning behavior
// without any operator-visible signal.

TEST(ConfigCorpus, FaultSectionRejectsBadValues) {
  for (const char* bad :
       {"[faults]\nmtbf_s = -3600\n",       // negative MTBF
        "[faults]\nmtbf_s = nan\n",         // non-finite MTBF
        "[faults]\nmttr_s = inf\n",         // non-finite MTTR
        "[faults]\nmttr_s = 0\n",           // repairs must take time
        "[faults]\nmttr_s = -1\n",          // negative MTTR
        "[faults]\nboot_hang_prob = 1.5\n", // probability out of [0,1]
        "[faults]\nboot_hang_prob = -0.1\n",
        "[faults]\nboot_timeout_s = -5\n",
        "[faults]\nseed = -1\n"}) {
    const IniFile ini = IniFile::parse(bad);
    EXPECT_THROW((void)fault_options_from_ini(ini), std::runtime_error)
        << "accepted: " << bad;
  }
  // A well-formed section parses and carries the values through.
  const IniFile ok = IniFile::parse(
      "[faults]\nmtbf_s = 21600\nmttr_s = 900\nboot_hang_prob = 0.02\n");
  const FaultOptions faults = fault_options_from_ini(ok);
  EXPECT_DOUBLE_EQ(faults.mtbf_s, 21600.0);
  EXPECT_DOUBLE_EQ(faults.mttr_s, 900.0);
  EXPECT_DOUBLE_EQ(faults.boot_hang_prob, 0.02);
  EXPECT_TRUE(faults.enabled());
}

TEST(ConfigCorpus, FailureAwareSectionRejectsBadValues) {
  for (const char* bad :
       {"[failure_aware]\nspare_capacity_fraction = 1.5\n",   // > 1
        "[failure_aware]\nspare_capacity_fraction = -0.25\n", // negative
        "[failure_aware]\nspare_capacity_fraction = nan\n",   // non-finite
        "[failure_aware]\nspare_capacity_fraction = inf\n",
        "[failure_aware]\nheartbeat_interval_s = 0\n",
        "[failure_aware]\nheartbeat_interval_s = -5\n",
        "[failure_aware]\nheartbeat_misses = -2\n",
        "[failure_aware]\nboot_retry_backoff_s = -1\n"}) {
    const IniFile ini = IniFile::parse(bad);
    EXPECT_THROW((void)failure_aware_options_from_ini(ini), std::runtime_error)
        << "accepted: " << bad;
  }
  // heartbeat_misses = 0 passes the typed read but fails the struct
  // validate (std::invalid_argument) — still a catchable throw, never a
  // detector that counts to zero.
  const IniFile zero_misses =
      IniFile::parse("[failure_aware]\nheartbeat_misses = 0\n");
  EXPECT_THROW((void)failure_aware_options_from_ini(zero_misses), std::exception);
  const IniFile ok = IniFile::parse(
      "[failure_aware]\nspare_capacity_fraction = 0.125\nheartbeat_misses = 3\n");
  const FailureAwareOptions fa = failure_aware_options_from_ini(ok);
  EXPECT_DOUBLE_EQ(fa.spare_capacity_fraction, 0.125);
  EXPECT_EQ(fa.heartbeat_misses, 3u);
}

TEST(ConfigCorpus, ReliabilitySectionRejectsBadValues) {
  for (const char* bad :
       {"[reliability]\nmtbf_s = -1\n",
        "[reliability]\nmtbf_s = nan\n",
        "[reliability]\nmttr_s = -600\n",
        "[reliability]\nmttr_s = inf\n",
        "[reliability]\navailability_target = 1.01\n",  // > 1
        "[reliability]\navailability_target = -0.5\n",
        "[reliability]\navailability_target = nan\n",
        "[reliability]\ncycles_to_failure = -40000\n",
        "[reliability]\ncycle_cost_j = -5\n",
        "[reliability]\ncycle_cost_j = inf\n",
        "[reliability]\nmax_spares = -4\n",
        "[reliability]\nclass_cycles_to_failure = 40000 -1\n",
        "[reliability]\nclass_cycles_to_failure = 40000 nan\n"}) {
    const IniFile ini = IniFile::parse(bad);
    EXPECT_THROW((void)reliability_options_from_ini(ini), std::runtime_error)
        << "accepted: " << bad;
  }
  // mtbf_s > 0 with mttr_s forced to 0 passes the per-key reads but fails
  // the struct validate — a failure model with instant repairs is a
  // contradiction, not a default.
  const IniFile contradiction =
      IniFile::parse("[reliability]\nmtbf_s = 3600\nmttr_s = 0\n");
  EXPECT_THROW((void)reliability_options_from_ini(contradiction), std::exception);
  const IniFile ok = IniFile::parse(
      "[reliability]\nmtbf_s = 21600\nmttr_s = 600\n"
      "availability_target = 0.999\nmax_spares = 4\n"
      "cycles_to_failure = 40000\ncycle_cost_j = 5000\n"
      "class_cycles_to_failure = 40000 10000\n");
  const ReliabilityOptions reliability = reliability_options_from_ini(ok);
  EXPECT_DOUBLE_EQ(reliability.mtbf_s, 21600.0);
  EXPECT_DOUBLE_EQ(reliability.availability_target, 0.999);
  EXPECT_EQ(reliability.max_spares, 4u);
  ASSERT_EQ(reliability.class_cycles_to_failure.size(), 2u);
  EXPECT_DOUBLE_EQ(reliability.class_cycles_to_failure[1], 10000.0);
  EXPECT_TRUE(reliability.enabled());
  EXPECT_TRUE(reliability.availability_constrained());
}

// -- trace write -> parse -> write -------------------------------------------

class TempDir {
 public:
  // Unique per instance: ctest runs each TEST as a separate process, so a
  // shared fixed path would let one test's cleanup delete another's files.
  TempDir()
      : path_(std::filesystem::temp_directory_path() /
              ("gc_fuzz_trace_" + std::to_string(::getpid()) + "_" +
               std::to_string(counter_++))) {
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] std::filesystem::path file(const std::string& name) const {
    return path_ / name;
  }

 private:
  static inline std::atomic<int> counter_{0};
  std::filesystem::path path_;
};

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(TraceRoundTrip, RandomTracesAreByteStable) {
  TempDir tmp;
  Rng rng(77, 3);
  for (int i = 0; i < 50; ++i) {
    std::vector<double> ts;
    double t = 0.0;
    const std::size_t n = static_cast<std::size_t>(rng.uniform01() * 200.0);
    for (std::size_t k = 0; k < n; ++k) {
      t += rng.uniform01() * 3.0;
      ts.push_back(t);
    }
    const Trace trace(ts);
    const auto p1 = tmp.file("a.csv");
    const auto p2 = tmp.file("b.csv");
    trace.save_csv(p1);
    const Trace back = Trace::load_csv(p1);
    back.save_csv(p2);
    ASSERT_EQ(slurp(p1), slurp(p2)) << "trace round-trip drift at iteration " << i;
    ASSERT_EQ(back.size(), trace.size());
  }
}

TEST(TraceRoundTrip, EmptyTraceRoundTrips) {
  TempDir tmp;
  const auto path = tmp.file("empty.csv");
  Trace().save_csv(path);
  const Trace back = Trace::load_csv(path);
  EXPECT_TRUE(back.empty());
}

// -- malformed trace corpus ---------------------------------------------------

TEST(TraceCorpus, MalformedFilesThrow) {
  TempDir tmp;
  const auto write = [&](const std::string& name, const std::string& text) {
    const auto path = tmp.file(name);
    std::ofstream out(path);
    out << text;
    return path;
  };
  // Truncated: no header at all.
  EXPECT_THROW((void)Trace::load_csv(write("t1.csv", "")), std::runtime_error);
  // Wrong column name.
  EXPECT_THROW((void)Trace::load_csv(write("t2.csv", "departure_s\n1.0\n")),
               std::runtime_error);
  // Truncated row (missing the value).
  EXPECT_THROW((void)Trace::load_csv(write("t3.csv", "arrival_s\n1.0\n\n2.0,\n")),
               std::runtime_error);
  // Non-numeric cell.
  EXPECT_THROW((void)Trace::load_csv(write("t4.csv", "arrival_s\nbogus\n")),
               std::runtime_error);
  // NaN / Inf / negative are data errors, not parse errors, and still throw.
  EXPECT_THROW((void)Trace::load_csv(write("t5.csv", "arrival_s\n1.0\nnan\n")),
               std::runtime_error);
  EXPECT_THROW((void)Trace::load_csv(write("t6.csv", "arrival_s\ninf\n")),
               std::runtime_error);
  EXPECT_THROW((void)Trace::load_csv(write("t7.csv", "arrival_s\n-1.0\n")),
               std::runtime_error);
  // Missing file.
  EXPECT_THROW((void)Trace::load_csv(tmp.file("absent.csv")), std::runtime_error);
}

TEST(TraceCorpus, UnsortedInputIsCanonicalizedNotRejected) {
  // The loader sorts (documented): a shuffled but valid file loads into a
  // sorted trace and round-trips byte-stably from then on.
  TempDir tmp;
  const auto path = tmp.file("shuffled.csv");
  {
    std::ofstream out(path);
    out << "arrival_s\n3.5\n1.25\n2\n";
  }
  const Trace trace = Trace::load_csv(path);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_DOUBLE_EQ(trace.timestamps()[0], 1.25);
  EXPECT_DOUBLE_EQ(trace.timestamps()[2], 3.5);
  const auto p2 = tmp.file("sorted.csv");
  const auto p3 = tmp.file("sorted2.csv");
  trace.save_csv(p2);
  Trace::load_csv(p2).save_csv(p3);
  EXPECT_EQ(slurp(p2), slurp(p3));
}

}  // namespace
}  // namespace gc
