#include "workload/workload.h"

#include <gtest/gtest.h>

#include <memory>

namespace gc {
namespace {

std::vector<JobArrival> drain(Workload& workload) {
  std::vector<JobArrival> jobs;
  while (const auto j = workload.next()) jobs.push_back(*j);
  return jobs;
}

TEST(Workload, PoissonExponentialShape) {
  Workload w = Workload::poisson_exponential(20.0, 10.0, 1000.0, 42);
  const auto jobs = drain(w);
  EXPECT_NEAR(static_cast<double>(jobs.size()), 20000.0, 5.0 * 142.0);
  double size_sum = 0.0;
  for (const auto& j : jobs) {
    EXPECT_GT(j.size, 0.0);
    size_sum += j.size;
  }
  EXPECT_NEAR(size_sum / static_cast<double>(jobs.size()), 0.1, 0.005);
}

TEST(Workload, ArrivalsAreMonotone) {
  Workload w = Workload::poisson_exponential(5.0, 10.0, 500.0, 7);
  double prev = -1.0;
  while (const auto j = w.next()) {
    EXPECT_GE(j->time, prev);
    prev = j->time;
  }
}

TEST(Workload, ResetReproducesStream) {
  Workload w = Workload::poisson_exponential(10.0, 5.0, 200.0, 9);
  const auto first = drain(w);
  w.reset();
  const auto second = drain(w);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_DOUBLE_EQ(first[i].time, second[i].time);
    EXPECT_DOUBLE_EQ(first[i].size, second[i].size);
  }
}

TEST(Workload, ProfileExponentialUsesProfile) {
  auto profile = std::make_shared<ConstantRate>(15.0);
  Workload w = Workload::profile_exponential(profile, 10.0, 2000.0, 3);
  const auto jobs = drain(w);
  EXPECT_NEAR(static_cast<double>(jobs.size()), 30000.0, 5.0 * 174.0);
}

TEST(Workload, TraceReplayPreservesArrivalTimes) {
  const Trace trace({1.0, 2.0, 3.5});
  Workload w = Workload::trace_replay(trace, Distribution::deterministic(0.5), 1);
  const auto jobs = drain(w);
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_DOUBLE_EQ(jobs[1].time, 2.0);
  EXPECT_DOUBLE_EQ(jobs[2].size, 0.5);
}

TEST(Workload, NameMentionsBothParts) {
  Workload w = Workload::poisson_exponential(1.0, 2.0, 10.0, 1);
  EXPECT_NE(w.name().find("poisson"), std::string::npos);
  EXPECT_NE(w.name().find("exp"), std::string::npos);
}

TEST(Workload, ProfileSizedUsesGivenDistribution) {
  auto profile = std::make_shared<ConstantRate>(10.0);
  Workload w = Workload::profile_sized(profile, Distribution::deterministic(0.125),
                                       500.0, 5);
  const auto jobs = drain(w);
  ASSERT_GT(jobs.size(), 1000u);
  for (const auto& j : jobs) EXPECT_DOUBLE_EQ(j.size, 0.125);
}

TEST(Workload, ProfileSizedSameArrivalsAsExponentialVariant) {
  // Same seed -> identical arrival process regardless of the size law.
  auto profile = std::make_shared<ConstantRate>(10.0);
  Workload a = Workload::profile_exponential(profile, 10.0, 200.0, 9);
  Workload b = Workload::profile_sized(profile, Distribution::deterministic(0.1),
                                       200.0, 9);
  const auto ja = drain(a);
  const auto jb = drain(b);
  ASSERT_EQ(ja.size(), jb.size());
  for (std::size_t i = 0; i < ja.size(); ++i) {
    EXPECT_DOUBLE_EQ(ja[i].time, jb[i].time);
  }
}

TEST(Workload, SeedsChangeBothArrivalsAndSizes) {
  Workload a = Workload::poisson_exponential(10.0, 5.0, 100.0, 1);
  Workload b = Workload::poisson_exponential(10.0, 5.0, 100.0, 2);
  const auto ja = drain(a);
  const auto jb = drain(b);
  bool time_differs = ja.size() != jb.size();
  for (std::size_t i = 0; !time_differs && i < std::min(ja.size(), jb.size()); ++i) {
    time_differs = ja[i].time != jb[i].time;
  }
  EXPECT_TRUE(time_differs);
}

}  // namespace
}  // namespace gc
