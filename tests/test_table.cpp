#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace gc {
namespace {

TEST(TablePrinter, RendersAlignedColumns) {
  TablePrinter table("demo");
  table.column("name").column("value", {.precision = 2, .unit = "W"});
  table.row().cell("a").cell(1.5);
  table.row().cell("bee").cell(10.25);
  const std::string out = table.to_string();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("value [W]"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("10.25"), std::string::npos);
  // Every line has the same length (alignment).
  std::istringstream is(out);
  std::string line;
  std::getline(is, line);  // title
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << "misaligned line: " << line;
  }
}

TEST(TablePrinter, GeneralFloatFormat) {
  TablePrinter table;
  table.column("x", {.precision = 3, .fixed = false});
  table.row().cell(123456.0);
  EXPECT_NE(table.to_string().find("1.23e+05"), std::string::npos);
}

TEST(TablePrinter, IntegerCells) {
  TablePrinter table;
  table.column("n");
  table.row().cell(static_cast<long long>(42));
  EXPECT_NE(table.to_string().find("42"), std::string::npos);
}

TEST(TablePrinter, RowValuesConvenience) {
  TablePrinter table;
  table.column("a").column("b");
  table.row_values({1.0, 2.0});
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(TablePrinter, CsvOutput) {
  TablePrinter table("t");
  table.column("a").column("b", {.precision = 1});
  table.row().cell("x").cell(2.0);
  EXPECT_EQ(table.to_csv(), "a,b\nx,2.0\n");
}

TEST(TablePrinter, EmptyTableRendersHeaderOnly) {
  TablePrinter table;
  table.column("only");
  const std::string out = table.to_string();
  EXPECT_NE(out.find("only"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 0u);
}

TEST(TablePrinterDeath, ColumnsAfterRowsAbort) {
  TablePrinter table;
  table.column("a");
  table.row().cell(1.0);
  EXPECT_DEATH(table.column("late"), "declare all columns");
}

TEST(TablePrinterDeath, OverfullRowAborts) {
  TablePrinter table;
  table.column("a");
  table.row().cell(1.0);
  EXPECT_DEATH(table.cell(2.0), "without room");
}

TEST(TablePrinterDeath, IncompleteRowAbortsOnPrint) {
  TablePrinter table;
  table.column("a").column("b");
  table.row().cell(1.0);
  EXPECT_DEATH((void)table.to_string(), "incomplete");
}

TEST(TablePrinter, StreamOperator) {
  TablePrinter table;
  table.column("v");
  table.row().cell(7.0);
  std::ostringstream os;
  os << table;
  EXPECT_FALSE(os.str().empty());
}

}  // namespace
}  // namespace gc
