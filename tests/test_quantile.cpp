#include "stats/quantile.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/distributions.h"
#include "stats/rng.h"

namespace gc {
namespace {

TEST(ExactQuantile, SmallSamples) {
  const std::vector<double> xs = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(exact_quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(exact_quantile(xs, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(exact_quantile(xs, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(exact_quantile(xs, 0.25), 1.5);  // type-7 interpolation
}

TEST(ExactQuantile, SingleElement) {
  const std::vector<double> xs = {7.0};
  EXPECT_DOUBLE_EQ(exact_quantile(xs, 0.3), 7.0);
}

TEST(P2Quantile, RejectsBadP) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
}

TEST(P2Quantile, ExactForFewerThanFive) {
  P2Quantile q(0.5);
  q.add(10.0);
  q.add(20.0);
  q.add(30.0);
  EXPECT_DOUBLE_EQ(q.value(), 20.0);
}

TEST(P2Quantile, EmptyReturnsZero) {
  const P2Quantile q(0.9);
  EXPECT_DOUBLE_EQ(q.value(), 0.0);
}

struct P2Case {
  double p;
  std::uint64_t seed;
};

class P2AccuracyTest : public ::testing::TestWithParam<P2Case> {};

TEST_P(P2AccuracyTest, TracksExponentialQuantiles) {
  const auto [p, seed] = GetParam();
  P2Quantile estimator(p);
  const Exponential dist(1.0);
  Rng rng(seed);
  std::vector<double> all;
  all.reserve(100000);
  for (int i = 0; i < 100000; ++i) {
    const double x = dist.sample(rng);
    estimator.add(x);
    all.push_back(x);
  }
  const double exact = exact_quantile(all, p);
  // P² converges to within a few percent on smooth distributions.
  EXPECT_NEAR(estimator.value(), exact, std::max(0.05 * exact, 0.02))
      << "p=" << p << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, P2AccuracyTest,
                         ::testing::Values(P2Case{0.5, 1}, P2Case{0.9, 2},
                                           P2Case{0.95, 3}, P2Case{0.99, 4},
                                           P2Case{0.5, 5}, P2Case{0.95, 6}));

TEST(P2Quantile, UniformMedian) {
  P2Quantile q(0.5);
  Rng rng(77);
  for (int i = 0; i < 50000; ++i) q.add(rng.uniform01());
  EXPECT_NEAR(q.value(), 0.5, 0.02);
}

TEST(P2Quantile, MonotoneInputs) {
  P2Quantile q(0.9);
  for (int i = 1; i <= 1000; ++i) q.add(static_cast<double>(i));
  EXPECT_NEAR(q.value(), 900.0, 30.0);
}

}  // namespace
}  // namespace gc
