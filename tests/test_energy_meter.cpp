#include "power/energy_meter.h"

#include <gtest/gtest.h>

namespace gc {
namespace {

class EnergyMeterTest : public ::testing::Test {
 protected:
  PowerModel pm_;  // idle 150, max 250, alpha 3, off 5, gated
};

TEST_F(EnergyMeterTest, StartsOffAndIntegratesOffPower) {
  EnergyMeter meter(&pm_, 0.0);
  meter.flush(10.0);
  EXPECT_DOUBLE_EQ(meter.joules_off(), 50.0);
  EXPECT_DOUBLE_EQ(meter.total_joules(), 50.0);
}

TEST_F(EnergyMeterTest, BusyIdleSplit) {
  EnergyMeter meter(&pm_, 0.0);
  meter.update(0.0, PowerState::kOn, 1.0, false);  // ON idle from t=0
  meter.update(4.0, PowerState::kOn, 1.0, true);   // 4 s idle
  meter.update(10.0, PowerState::kOn, 1.0, false); // 6 s busy
  meter.flush(11.0);                               // 1 s idle
  EXPECT_DOUBLE_EQ(meter.joules_idle(), 5.0 * 150.0);
  EXPECT_DOUBLE_EQ(meter.joules_busy(), 6.0 * 250.0);
}

TEST_F(EnergyMeterTest, TransitionPower) {
  EnergyMeter meter(&pm_, 0.0);
  meter.update(0.0, PowerState::kBooting, 1.0, false);
  meter.update(3.0, PowerState::kOn, 1.0, false);
  meter.update(5.0, PowerState::kShuttingDown, 1.0, false);
  meter.flush(6.0);
  EXPECT_DOUBLE_EQ(meter.joules_transition(), 4.0 * 250.0);
  EXPECT_DOUBLE_EQ(meter.joules_idle(), 2.0 * 150.0);
}

TEST_F(EnergyMeterTest, SpeedAffectsBusyPower) {
  EnergyMeter meter(&pm_, 0.0);
  meter.update(0.0, PowerState::kOn, 0.5, true);
  meter.flush(10.0);
  EXPECT_DOUBLE_EQ(meter.joules_busy(), 10.0 * (150.0 + 100.0 * 0.125));
}

TEST_F(EnergyMeterTest, InstantaneousPowerByState) {
  EnergyMeter meter(&pm_, 0.0);
  EXPECT_DOUBLE_EQ(meter.instantaneous_power(), 5.0);  // off
  meter.update(0.0, PowerState::kOn, 1.0, true);
  EXPECT_DOUBLE_EQ(meter.instantaneous_power(), 250.0);
  meter.update(1.0, PowerState::kBooting, 1.0, false);
  EXPECT_DOUBLE_EQ(meter.instantaneous_power(), 250.0);
  meter.update(2.0, PowerState::kOn, 1.0, false);
  EXPECT_DOUBLE_EQ(meter.instantaneous_power(), 150.0);
}

TEST_F(EnergyMeterTest, ZeroLengthUpdatesAddNothing) {
  EnergyMeter meter(&pm_, 5.0);
  meter.update(5.0, PowerState::kOn, 1.0, true);
  meter.update(5.0, PowerState::kOn, 0.5, true);
  EXPECT_DOUBLE_EQ(meter.total_joules(), 0.0);
}

TEST_F(EnergyMeterTest, TimeGoingBackwardsDies) {
  EnergyMeter meter(&pm_, 10.0);
  EXPECT_DEATH(meter.flush(9.0), "backwards");
}

TEST(PowerStateNames, ToString) {
  EXPECT_STREQ(to_string(PowerState::kOff), "off");
  EXPECT_STREQ(to_string(PowerState::kBooting), "booting");
  EXPECT_STREQ(to_string(PowerState::kOn), "on");
  EXPECT_STREQ(to_string(PowerState::kShuttingDown), "shutting_down");
}

}  // namespace
}  // namespace gc
