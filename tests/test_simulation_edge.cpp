// Edge cases of the simulation loop: empty workloads, controllers that do
// nothing, warmups longer than the run, and zero-transition-delay clusters.
#include <gtest/gtest.h>

#include "sim/simulation.h"
#include "workload/workload.h"

namespace gc {
namespace {

class NullController final : public Controller {
 public:
  [[nodiscard]] double short_period_s() const override { return 10.0; }
  [[nodiscard]] double long_period_s() const override { return 100.0; }
  [[nodiscard]] ControlAction on_short_tick(const ControlContext&) override { return {}; }
  [[nodiscard]] ControlAction on_long_tick(const ControlContext&) override { return {}; }
  [[nodiscard]] const char* name() const override { return "null"; }
};

ClusterOptions two_server_options() {
  ClusterOptions options;
  options.num_servers = 2;
  options.initial_active = 2;
  return options;
}

TEST(SimEdge, EmptyWorkloadEndsImmediately) {
  // A trace with no arrivals: the run produces zero jobs and zero
  // post-warmup horizon, without hanging or dividing by zero.
  const Trace empty;
  Workload workload =
      Workload::trace_replay(empty, Distribution::exponential(10.0), 1);
  NullController controller;
  SimulationOptions options;
  options.t_ref_s = 1.0;
  const SimResult result =
      run_simulation(workload, two_server_options(), controller, options);
  EXPECT_EQ(result.completed_jobs, 0u);
  EXPECT_DOUBLE_EQ(result.mean_response_s, 0.0);
  EXPECT_DOUBLE_EQ(result.mean_power_w, 0.0);
}

TEST(SimEdge, SingleJobWorkload) {
  const Trace one({5.0});
  Workload workload = Workload::trace_replay(one, Distribution::deterministic(0.5), 1);
  NullController controller;
  SimulationOptions options;
  options.t_ref_s = 1.0;
  const SimResult result =
      run_simulation(workload, two_server_options(), controller, options);
  EXPECT_EQ(result.completed_jobs, 1u);
  EXPECT_NEAR(result.mean_response_s, 0.5, 1e-9);
}

TEST(SimEdge, NullControllerLeavesClusterAlone) {
  Workload workload = Workload::poisson_exponential(5.0, 10.0, 500.0, 3);
  NullController controller;
  SimulationOptions options;
  options.t_ref_s = 1.0;
  const SimResult result =
      run_simulation(workload, two_server_options(), controller, options);
  EXPECT_EQ(result.boots, 0u);
  EXPECT_EQ(result.shutdowns, 0u);
  EXPECT_NEAR(result.mean_serving, 2.0, 1e-9);
  EXPECT_NEAR(result.mean_speed, 1.0, 1e-9);
}

TEST(SimEdge, WarmupBeyondWorkloadYieldsNoMeasurements) {
  Workload workload = Workload::poisson_exponential(5.0, 10.0, 100.0, 4);
  NullController controller;
  SimulationOptions options;
  options.t_ref_s = 1.0;
  options.warmup_s = 1e6;  // never reached: run ends when jobs drain
  const SimResult result =
      run_simulation(workload, two_server_options(), controller, options);
  EXPECT_EQ(result.completed_jobs, 0u);  // all completions were "in warmup"
  EXPECT_EQ(result.dropped_jobs, 0u);
}

TEST(SimEdge, ZeroTransitionDelaysWork) {
  ClusterOptions options = two_server_options();
  options.num_servers = 4;
  options.initial_active = 4;
  options.transition.boot_delay_s = 0.0;
  options.transition.shutdown_delay_s = 0.0;
  Workload workload = Workload::poisson_exponential(10.0, 10.0, 500.0, 5);

  class FlipFlop final : public Controller {
   public:
    [[nodiscard]] double short_period_s() const override { return 5.0; }
    [[nodiscard]] double long_period_s() const override { return 10.0; }
    [[nodiscard]] ControlAction on_short_tick(const ControlContext&) override {
      return {};
    }
    [[nodiscard]] ControlAction on_long_tick(const ControlContext&) override {
      ControlAction action;
      action.active_target = (flip_ = !flip_) ? 2u : 4u;
      return action;
    }

   private:
    bool flip_ = false;

   public:
    [[nodiscard]] const char* name() const override { return "flipflop"; }
  };
  FlipFlop controller;
  SimulationOptions sim;
  sim.t_ref_s = 1.0;
  const SimResult result = run_simulation(workload, options, controller, sim);
  EXPECT_GT(result.completed_jobs, 4000u);
  EXPECT_GT(result.boots, 10u);
  EXPECT_EQ(result.dropped_jobs, 0u);
}

TEST(SimEdge, RecordIntervalLargerThanRunYieldsNoTimeline) {
  Workload workload = Workload::poisson_exponential(5.0, 10.0, 50.0, 6);
  NullController controller;
  SimulationOptions options;
  options.t_ref_s = 1.0;
  options.record_interval_s = 1e6;
  const SimResult result =
      run_simulation(workload, two_server_options(), controller, options);
  EXPECT_TRUE(result.timeline.empty());
}

TEST(SimEdge, HighSpeedJobSmallerThanFloatNoise) {
  // Tiny jobs must not trip the completion DCHECK or produce negative
  // responses.
  const Trace trace({1.0, 1.0, 1.0});
  Workload workload =
      Workload::trace_replay(trace, Distribution::deterministic(1e-9), 1);
  NullController controller;
  SimulationOptions options;
  options.t_ref_s = 1.0;
  const SimResult result =
      run_simulation(workload, two_server_options(), controller, options);
  EXPECT_EQ(result.completed_jobs, 3u);
  EXPECT_GE(result.mean_response_s, 0.0);
}

}  // namespace
}  // namespace gc
