// Malformed-artifact corpus tests for the replay toolchain: every file
// under tests/corpus/ must make the corresponding loader throw a catchable
// exception — never clamp, repair, skip, or crash.  This is the same
// strictness contract tests/test_config_fuzz holds for the config/trace
// parsers, extended to the artifacts tools/gcreplay consumes.  The CI
// sanitize lane runs this suite under ASan/UBSan, so a parser walking off
// a truncated buffer fails loudly here.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cp/control_plane.h"
#include "cp/replay.h"
#include "cp/wal.h"
#include "obs/audit.h"
#include "util/csv.h"
#include "util/string_util.h"

#ifndef GC_CORPUS_DIR
#error "tests/CMakeLists.txt must define GC_CORPUS_DIR"
#endif

namespace gc {
namespace {

std::vector<std::filesystem::path> corpus_files(const std::string& suffix) {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(GC_CORPUS_DIR)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(ReplayFuzz, CorpusDirectoryIsPopulated) {
  // Guards against a renamed directory silently skipping the whole suite.
  EXPECT_GE(corpus_files(".audit.jsonl").size(), 5u);
  EXPECT_GE(corpus_files(".timeseries.csv").size(), 5u);
  EXPECT_GE(corpus_files(".snap").size(), 5u);
  EXPECT_GE(corpus_files(".wal").size(), 5u);
}

TEST(ReplayFuzz, MalformedAuditLogsThrow) {
  for (const auto& path : corpus_files(".audit.jsonl")) {
    EXPECT_THROW((void)DecisionAuditLog::read_jsonl(path), std::runtime_error)
        << "corpus file parsed without error: " << path;
  }
}

TEST(ReplayFuzz, MalformedTimeseriesThrow) {
  for (const auto& path : corpus_files(".timeseries.csv")) {
    EXPECT_THROW(
        {
          // The full gcreplay loading path: parse the CSV, then validate
          // its structure.  Either stage may be the one that rejects.
          const CsvTable table = read_csv_file(path);
          validate_timeseries(table);
        },
        std::runtime_error)
        << "corpus file validated without error: " << path;
  }
}

std::string read_binary(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// The durable-state loaders need a facade to load into; the fixed-policy
// stub keeps the corpus independent of any real controller's layout (the
// garbage-payload case fails on the name/field checks either way).
class StubController final : public Controller {
 public:
  [[nodiscard]] double short_period_s() const override { return 5.0; }
  [[nodiscard]] double long_period_s() const override { return 30.0; }
  [[nodiscard]] ControlAction on_short_tick(const ControlContext&) override {
    return {};
  }
  [[nodiscard]] ControlAction on_long_tick(const ControlContext&) override {
    return {};
  }
  [[nodiscard]] const char* name() const override { return "stub"; }
};

TEST(ReplayFuzz, MalformedSnapshotsThrow) {
  for (const auto& path : corpus_files(".snap")) {
    StubController controller;
    ControlPlane cp(controller, ControlPlaneOptions{}, Rng(1, 14));
    EXPECT_THROW(cp.restore(read_binary(path)), std::runtime_error)
        << "corpus file restored without error: " << path;
  }
}

TEST(ReplayFuzz, MalformedWalsThrow) {
  for (const auto& path : corpus_files(".wal")) {
    StubController controller;
    ControlPlane cp(controller, ControlPlaneOptions{}, Rng(1, 14));
    EXPECT_THROW((void)wal_replay(cp, read_binary(path)), std::runtime_error)
        << "corpus file replayed without error: " << path;
  }
}

TEST(ReplayFuzz, TruncationsOfAValidSnapshotAllThrow) {
  // Systematic truncation on top of the hand-built corpus, against a real
  // facade image rather than a synthetic payload.
  StubController controller;
  ControlPlane cp(controller, ControlPlaneOptions{}, Rng(1, 14));
  (void)cp.on_tick(5.0, false, false);
  const std::string snap = cp.snapshot();
  for (std::size_t cut = 0; cut < snap.size(); ++cut) {
    StubController fresh_controller;
    ControlPlane fresh(fresh_controller, ControlPlaneOptions{}, Rng(1, 14));
    EXPECT_THROW(fresh.restore(snap.substr(0, cut)), std::runtime_error)
        << "prefix of length " << cut << " restored without error";
  }
}

TEST(ReplayFuzz, TruncationsOfAValidRecordAllThrow) {
  // Systematic truncation fuzzing on top of the hand-built corpus: every
  // proper prefix of a valid record line must fail to parse.
  AuditRecord rec;
  rec.time_s = 410.0;
  rec.long_tick = false;
  rec.speed_set = true;
  rec.speed = 0.83;
  DecisionAuditLog log;
  log.append(rec);
  const std::string jsonl = log.to_jsonl();
  const std::string line{trim(jsonl)};
  ASSERT_GT(line.size(), 10u);
  for (std::size_t cut = 1; cut + 1 < line.size(); ++cut) {
    EXPECT_THROW((void)DecisionAuditLog::from_jsonl(line.substr(0, cut)),
                 std::runtime_error)
        << "prefix of length " << cut << " parsed without error";
  }
}

}  // namespace
}  // namespace gc
