#include "power/power_model.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace gc {
namespace {

TEST(PowerModel, DefaultsAreValid) {
  const PowerModel pm;
  EXPECT_DOUBLE_EQ(pm.idle_power(), 150.0);
  EXPECT_DOUBLE_EQ(pm.p_max(), 250.0);
  EXPECT_DOUBLE_EQ(pm.off_power(), 5.0);
  EXPECT_DOUBLE_EQ(pm.transition_power(), 250.0);
}

TEST(PowerModel, RejectsInconsistentParams) {
  PowerModelParams p;
  p.p_idle_watts = 300.0;  // > p_max
  EXPECT_THROW(PowerModel{p}, std::invalid_argument);
  p = {};
  p.alpha = 0.5;
  EXPECT_THROW(PowerModel{p}, std::invalid_argument);
  p = {};
  p.p_off_watts = 200.0;  // > p_idle
  EXPECT_THROW(PowerModel{p}, std::invalid_argument);
  p = {};
  p.p_idle_watts = -1.0;
  EXPECT_THROW(PowerModel{p}, std::invalid_argument);
}

TEST(PowerModel, GatedPowerAtFullLoad) {
  const PowerModel pm;  // gated, alpha 3
  EXPECT_DOUBLE_EQ(pm.power(1.0, 1.0), 250.0);
  EXPECT_DOUBLE_EQ(pm.power(1.0, 0.0), 150.0);
  EXPECT_DOUBLE_EQ(pm.power(0.5, 1.0), 150.0 + 100.0 * 0.125);
  EXPECT_DOUBLE_EQ(pm.power(0.5, 0.5), 150.0 + 100.0 * 0.125 * 0.5);
}

TEST(PowerModel, UngatedIgnoresUtilization) {
  PowerModelParams p;
  p.utilization_gated = false;
  const PowerModel pm(p);
  EXPECT_DOUBLE_EQ(pm.power(0.5, 0.0), pm.power(0.5, 1.0));
  EXPECT_DOUBLE_EQ(pm.power(1.0, 0.3), 250.0);
}

TEST(PowerModel, MonotoneInSpeedAndUtilization) {
  const PowerModel pm;
  double prev = 0.0;
  for (double s = 0.1; s <= 1.0; s += 0.1) {
    const double w = pm.power(s, 1.0);
    EXPECT_GT(w, prev);
    prev = w;
  }
  EXPECT_LE(pm.power(0.7, 0.2), pm.power(0.7, 0.8));
}

TEST(PowerModel, ClampsInputsOutOfRange) {
  const PowerModel pm;
  EXPECT_DOUBLE_EQ(pm.power(2.0, 2.0), 250.0);
  EXPECT_DOUBLE_EQ(pm.power(-1.0, -1.0), 150.0);
}

TEST(PowerModel, BusyPowerConvenience) {
  const PowerModel pm;
  EXPECT_DOUBLE_EQ(pm.busy_power(1.0), 250.0);
  EXPECT_DOUBLE_EQ(pm.busy_power(0.8), 150.0 + 100.0 * 0.512);
}

TEST(PowerModel, AlphaOneIsLinear) {
  PowerModelParams p;
  p.alpha = 1.0;
  const PowerModel pm(p);
  const double half = pm.power(0.5, 1.0) - pm.idle_power();
  const double full = pm.power(1.0, 1.0) - pm.idle_power();
  EXPECT_NEAR(half * 2.0, full, 1e-12);
}

TEST(TransitionModel, EnergyFormulas) {
  const PowerModel pm;
  TransitionModel tm;
  tm.boot_delay_s = 60.0;
  tm.shutdown_delay_s = 5.0;
  EXPECT_DOUBLE_EQ(tm.boot_energy_joules(pm), 60.0 * 250.0);
  EXPECT_DOUBLE_EQ(tm.shutdown_energy_joules(pm), 5.0 * 250.0);
}

}  // namespace
}  // namespace gc
