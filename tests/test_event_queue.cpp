#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

#include "stats/rng.h"

namespace gc {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  queue.schedule(3.0, EventType::kArrival);
  queue.schedule(1.0, EventType::kDeparture, 5);
  queue.schedule(2.0, EventType::kRecord);
  std::vector<double> times;
  while (const auto e = queue.pop()) times.push_back(e->time);
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(EventQueue, TiesBreakInScheduleOrder) {
  EventQueue queue;
  queue.schedule(1.0, EventType::kLongTick);
  queue.schedule(1.0, EventType::kShortTick);
  queue.schedule(1.0, EventType::kArrival);
  std::vector<EventType> types;
  while (const auto e = queue.pop()) types.push_back(e->type);
  EXPECT_EQ(types, (std::vector<EventType>{EventType::kLongTick, EventType::kShortTick,
                                           EventType::kArrival}));
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue queue;
  queue.schedule(1.0, EventType::kArrival);
  const EventId id = queue.schedule(2.0, EventType::kDeparture);
  queue.schedule(3.0, EventType::kRecord);
  EXPECT_TRUE(queue.cancel(id));
  std::vector<EventType> types;
  while (const auto e = queue.pop()) types.push_back(e->type);
  EXPECT_EQ(types, (std::vector<EventType>{EventType::kArrival, EventType::kRecord}));
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue queue;
  const EventId id = queue.schedule(1.0, EventType::kArrival);
  EXPECT_TRUE(queue.cancel(id));
  EXPECT_FALSE(queue.cancel(id));
  EXPECT_FALSE(queue.cancel(kInvalidEventId));
  EXPECT_FALSE(queue.cancel(9999));
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue queue;
  const EventId id = queue.schedule(1.0, EventType::kArrival);
  queue.schedule(2.0, EventType::kRecord);
  ASSERT_TRUE(queue.pop().has_value());
  EXPECT_FALSE(queue.cancel(id));       // already fired
  EXPECT_TRUE(queue.pop().has_value()); // the record event survives
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  const EventId a = queue.schedule(1.0, EventType::kArrival);
  queue.schedule(2.0, EventType::kRecord);
  EXPECT_EQ(queue.size(), 2u);
  queue.cancel(a);
  EXPECT_EQ(queue.size(), 1u);
  (void)queue.pop();
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(EventQueue, NowAdvancesWithPops) {
  EventQueue queue;
  queue.schedule(1.5, EventType::kArrival);
  queue.schedule(4.0, EventType::kRecord);
  EXPECT_DOUBLE_EQ(queue.now(), 0.0);
  (void)queue.pop();
  EXPECT_DOUBLE_EQ(queue.now(), 1.5);
  (void)queue.pop();
  EXPECT_DOUBLE_EQ(queue.now(), 4.0);
}

TEST(EventQueue, SchedulingIntoThePastDies) {
  EventQueue queue;
  queue.schedule(5.0, EventType::kArrival);
  (void)queue.pop();
  EXPECT_DEATH(queue.schedule(4.0, EventType::kArrival), "past");
}

TEST(EventQueue, SchedulingAtNowIsAllowed) {
  EventQueue queue;
  queue.schedule(5.0, EventType::kArrival);
  (void)queue.pop();
  EXPECT_NO_FATAL_FAILURE(queue.schedule(5.0, EventType::kRecord));
  const auto e = queue.pop();
  ASSERT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(e->time, 5.0);
}

TEST(EventQueue, SubjectAndIdRoundTrip) {
  EventQueue queue;
  const EventId id = queue.schedule(1.0, EventType::kDeparture, 42);
  const auto e = queue.pop();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->subject, 42u);
  EXPECT_EQ(e->id, id);
  EXPECT_EQ(e->type, EventType::kDeparture);
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue queue;
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    queue.schedule(rng.uniform01() * 1000.0, EventType::kArrival);
  }
  double prev = -1.0;
  std::size_t count = 0;
  while (const auto e = queue.pop()) {
    EXPECT_GE(e->time, prev);
    prev = e->time;
    ++count;
  }
  EXPECT_EQ(count, 10000u);
}

TEST(EventTypeNames, ToString) {
  EXPECT_STREQ(to_string(EventType::kArrival), "arrival");
  EXPECT_STREQ(to_string(EventType::kWarmupEnd), "warmup_end");
}

TEST(EventTypeNames, ControlPlaneEventsHaveNames) {
  EXPECT_STREQ(to_string(EventType::kTelemetryDeliver), "telemetry_deliver");
  EXPECT_STREQ(to_string(EventType::kCommandDeliver), "command_deliver");
  EXPECT_STREQ(to_string(EventType::kAckDeliver), "ack_deliver");
  EXPECT_STREQ(to_string(EventType::kControllerFail), "controller_fail");
  EXPECT_STREQ(to_string(EventType::kControllerRecover), "controller_recover");
}

// -- Slot-recycling edge cases ----------------------------------------------
// EventIds are generation-stamped slot handles (gen << 32 | slot + 1).  A
// fired or cancelled slot is recycled with a bumped generation, so a stale
// id must never cancel the slot's new tenant.

TEST(EventQueueRecycling, StaleIdCannotCancelRecycledSlot) {
  EventQueue queue;
  const EventId old_id = queue.schedule(1.0, EventType::kArrival);
  ASSERT_TRUE(queue.pop().has_value());  // fires; the slot is recycled
  // The new tenant reuses the same slot (single-slot queue) with a fresh
  // generation: ids differ in the generation half only.
  const EventId new_id = queue.schedule(2.0, EventType::kDeparture, 7);
  EXPECT_NE(old_id, new_id);
  EXPECT_EQ(old_id & 0xffffffffULL, new_id & 0xffffffffULL);
  EXPECT_NE(old_id >> 32, new_id >> 32);
  // Cancelling the dead id is a detected no-op; the new tenant survives.
  EXPECT_FALSE(queue.cancel(old_id));
  const auto event = queue.pop();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->type, EventType::kDeparture);
  EXPECT_EQ(event->subject, 7u);
}

TEST(EventQueueRecycling, CancelAfterCancelOnRecycledSlot) {
  EventQueue queue;
  const EventId first = queue.schedule(1.0, EventType::kArrival);
  EXPECT_TRUE(queue.cancel(first));
  const EventId second = queue.schedule(1.0, EventType::kArrival);
  // The first id is two generations behind by now; still a no-op.
  EXPECT_FALSE(queue.cancel(first));
  EXPECT_TRUE(queue.cancel(second));
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueRecycling, ForgedGenerationIsRejected) {
  EventQueue queue;
  const EventId id = queue.schedule(5.0, EventType::kDeparture, 3);
  // Same slot, wrong generation: must not touch the live event.
  EXPECT_FALSE(queue.cancel(id ^ (1ULL << 32)));
  EXPECT_FALSE(queue.cancel(id + (1ULL << 32)));
  // Valid slot bits but a generation from the far future (as after a
  // hypothetical wraparound that did NOT land on the live value).
  EXPECT_FALSE(queue.cancel((id & 0xffffffffULL) | (0xdeadbeefULL << 32)));
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_TRUE(queue.cancel(id));  // the genuine id still works
}

TEST(EventQueueRecycling, ManyRecycleCyclesKeepIdsUnique) {
  // Drive one slot through many fire/cancel cycles: every handed-out id is
  // distinct, and every dead id stays dead.
  EventQueue queue;
  std::vector<EventId> dead;
  double t = 0.0;
  for (int cycle = 0; cycle < 1000; ++cycle) {
    t += 1.0;
    const EventId id = queue.schedule(t, EventType::kArrival);
    for (const EventId d : dead) EXPECT_NE(id, d);
    if (cycle % 2 == 0) {
      ASSERT_TRUE(queue.pop().has_value());
    } else {
      EXPECT_TRUE(queue.cancel(id));
    }
    dead.push_back(id);
  }
  // A sample of dead ids across the whole history: all no-ops.
  for (std::size_t i = 0; i < dead.size(); i += 97) {
    EXPECT_FALSE(queue.cancel(dead[i]));
  }
}

TEST(EventQueueRecycling, RecycledSlotKeepsHeapConsistentUnderChurn) {
  // Interleave schedule/cancel across multiple slots so recycled slots are
  // claimed while older entries are still live, then verify pop order.
  EventQueue queue;
  const EventId a = queue.schedule(3.0, EventType::kArrival, 0);
  const EventId b = queue.schedule(1.0, EventType::kDeparture, 1);
  (void)queue.schedule(2.0, EventType::kRecord, 2);
  EXPECT_TRUE(queue.cancel(b));  // slot recycled while a and c are pending
  const EventId d = queue.schedule(1.5, EventType::kBootComplete, 3);
  EXPECT_FALSE(queue.cancel(b));  // b's id is stale even though d reuses its slot
  std::vector<EventType> order;
  while (const auto event = queue.pop()) order.push_back(event->type);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], EventType::kBootComplete);
  EXPECT_EQ(order[1], EventType::kRecord);
  EXPECT_EQ(order[2], EventType::kArrival);
  EXPECT_FALSE(queue.cancel(a));  // fired
  EXPECT_FALSE(queue.cancel(d));  // fired
}

}  // namespace
}  // namespace gc
