#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

#include "stats/rng.h"

namespace gc {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  queue.schedule(3.0, EventType::kArrival);
  queue.schedule(1.0, EventType::kDeparture, 5);
  queue.schedule(2.0, EventType::kRecord);
  std::vector<double> times;
  while (const auto e = queue.pop()) times.push_back(e->time);
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(EventQueue, TiesBreakInScheduleOrder) {
  EventQueue queue;
  queue.schedule(1.0, EventType::kLongTick);
  queue.schedule(1.0, EventType::kShortTick);
  queue.schedule(1.0, EventType::kArrival);
  std::vector<EventType> types;
  while (const auto e = queue.pop()) types.push_back(e->type);
  EXPECT_EQ(types, (std::vector<EventType>{EventType::kLongTick, EventType::kShortTick,
                                           EventType::kArrival}));
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue queue;
  queue.schedule(1.0, EventType::kArrival);
  const EventId id = queue.schedule(2.0, EventType::kDeparture);
  queue.schedule(3.0, EventType::kRecord);
  EXPECT_TRUE(queue.cancel(id));
  std::vector<EventType> types;
  while (const auto e = queue.pop()) types.push_back(e->type);
  EXPECT_EQ(types, (std::vector<EventType>{EventType::kArrival, EventType::kRecord}));
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue queue;
  const EventId id = queue.schedule(1.0, EventType::kArrival);
  EXPECT_TRUE(queue.cancel(id));
  EXPECT_FALSE(queue.cancel(id));
  EXPECT_FALSE(queue.cancel(kInvalidEventId));
  EXPECT_FALSE(queue.cancel(9999));
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue queue;
  const EventId id = queue.schedule(1.0, EventType::kArrival);
  queue.schedule(2.0, EventType::kRecord);
  ASSERT_TRUE(queue.pop().has_value());
  EXPECT_FALSE(queue.cancel(id));       // already fired
  EXPECT_TRUE(queue.pop().has_value()); // the record event survives
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  const EventId a = queue.schedule(1.0, EventType::kArrival);
  queue.schedule(2.0, EventType::kRecord);
  EXPECT_EQ(queue.size(), 2u);
  queue.cancel(a);
  EXPECT_EQ(queue.size(), 1u);
  (void)queue.pop();
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(EventQueue, NowAdvancesWithPops) {
  EventQueue queue;
  queue.schedule(1.5, EventType::kArrival);
  queue.schedule(4.0, EventType::kRecord);
  EXPECT_DOUBLE_EQ(queue.now(), 0.0);
  (void)queue.pop();
  EXPECT_DOUBLE_EQ(queue.now(), 1.5);
  (void)queue.pop();
  EXPECT_DOUBLE_EQ(queue.now(), 4.0);
}

TEST(EventQueue, SchedulingIntoThePastDies) {
  EventQueue queue;
  queue.schedule(5.0, EventType::kArrival);
  (void)queue.pop();
  EXPECT_DEATH(queue.schedule(4.0, EventType::kArrival), "past");
}

TEST(EventQueue, SchedulingAtNowIsAllowed) {
  EventQueue queue;
  queue.schedule(5.0, EventType::kArrival);
  (void)queue.pop();
  EXPECT_NO_FATAL_FAILURE(queue.schedule(5.0, EventType::kRecord));
  const auto e = queue.pop();
  ASSERT_TRUE(e.has_value());
  EXPECT_DOUBLE_EQ(e->time, 5.0);
}

TEST(EventQueue, SubjectAndIdRoundTrip) {
  EventQueue queue;
  const EventId id = queue.schedule(1.0, EventType::kDeparture, 42);
  const auto e = queue.pop();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->subject, 42u);
  EXPECT_EQ(e->id, id);
  EXPECT_EQ(e->type, EventType::kDeparture);
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue queue;
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    queue.schedule(rng.uniform01() * 1000.0, EventType::kArrival);
  }
  double prev = -1.0;
  std::size_t count = 0;
  while (const auto e = queue.pop()) {
    EXPECT_GE(e->time, prev);
    prev = e->time;
    ++count;
  }
  EXPECT_EQ(count, 10000u);
}

TEST(EventTypeNames, ToString) {
  EXPECT_STREQ(to_string(EventType::kArrival), "arrival");
  EXPECT_STREQ(to_string(EventType::kWarmupEnd), "warmup_end");
}

}  // namespace
}  // namespace gc
