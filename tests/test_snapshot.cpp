// Snapshot tests (cp/snapshot.h + ControlPlane::snapshot/restore): typed
// round trips, the strict-loader contract (reject, never clamp; poison on
// first error), the versioned envelope, and the headline bit-identity
// invariant — a facade restored from its own snapshot emits exactly the
// command stream the original would have.
#include "cp/snapshot.h"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "control/policies.h"
#include "core/provisioner.h"
#include "cp/control_plane.h"
#include "exp/scenario.h"

namespace gc {
namespace {

// -- Writer/reader round trips ------------------------------------------------

TEST(Snapshot, RoundTripsEveryFieldType) {
  SnapshotWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.f64(-1.5);
  w.boolean(true);
  w.boolean(false);
  w.str("hello");
  w.str("");

  SnapshotReader r(w.payload());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(r.f64(), -1.5);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_NO_THROW(r.expect_end());
}

TEST(Snapshot, DoublesRoundTripBitExactly) {
  const double values[] = {0.0, -0.0, 1.0 / 3.0, 1e-300, -1e300,
                           std::numeric_limits<double>::denorm_min()};
  SnapshotWriter w;
  for (const double v : values) w.f64(v);
  SnapshotReader r(w.payload());
  for (const double v : values) {
    const double got = r.f64();
    EXPECT_EQ(std::memcmp(&got, &v, sizeof v), 0);
  }
}

TEST(Snapshot, ReaderRejectsTruncation) {
  SnapshotWriter w;
  w.u64(7);
  const std::string payload = w.payload().substr(0, 5);
  SnapshotReader r(payload);
  EXPECT_THROW((void)r.u64(), SnapshotError);
}

TEST(Snapshot, ReaderRejectsNonFiniteDoubles) {
  SnapshotWriter w;
  w.f64(std::numeric_limits<double>::quiet_NaN());
  SnapshotReader r(w.payload());
  EXPECT_THROW((void)r.f64(), SnapshotError);
}

TEST(Snapshot, ReaderRejectsNonBooleanByte) {
  SnapshotWriter w;
  w.u8(2);
  SnapshotReader r(w.payload());
  EXPECT_THROW((void)r.boolean(), SnapshotError);
}

TEST(Snapshot, ReaderRejectsOversizedStringLength) {
  SnapshotWriter w;
  w.u32(0xffffffffu);  // string length prefix far past the buffer
  SnapshotReader r(w.payload());
  EXPECT_THROW((void)r.str(), SnapshotError);
}

TEST(Snapshot, ExpectEndRejectsTrailingBytes) {
  SnapshotWriter w;
  w.u8(1);
  w.u8(2);
  SnapshotReader r(w.payload());
  (void)r.u8();
  EXPECT_THROW(r.expect_end(), SnapshotError);
}

TEST(Snapshot, FirstErrorPoisonsTheReader) {
  SnapshotWriter w;
  w.u8(9);
  SnapshotReader r(w.payload());
  EXPECT_THROW((void)r.u64(), SnapshotError);  // only 1 byte left
  EXPECT_TRUE(r.poisoned());
  // The byte itself was readable before the failure; not anymore.
  EXPECT_THROW((void)r.u8(), SnapshotError);
  EXPECT_THROW(r.expect_end(), SnapshotError);
}

// -- Envelope -----------------------------------------------------------------

TEST(SnapshotEnvelope, EncodeDecodeRoundTrips) {
  const std::string payload("arbitrary \x00 bytes \xff", 19);
  const std::string bytes = encode_snapshot(payload);
  EXPECT_EQ(decode_snapshot(bytes), payload);
}

TEST(SnapshotEnvelope, RejectsBadMagic) {
  std::string bytes = encode_snapshot("x");
  bytes[0] ^= 0x20;
  EXPECT_THROW((void)decode_snapshot(bytes), SnapshotError);
}

TEST(SnapshotEnvelope, RejectsUnknownVersion) {
  std::string bytes = encode_snapshot("x");
  bytes[8] ^= 0x01;  // version field follows the 8-byte magic
  EXPECT_THROW((void)decode_snapshot(bytes), SnapshotError);
}

TEST(SnapshotEnvelope, RejectsFlippedPayloadByte) {
  std::string bytes = encode_snapshot("payload");
  bytes[16] ^= 0x01;  // first payload byte (magic + version + length = 16)
  EXPECT_THROW((void)decode_snapshot(bytes), SnapshotError);
}

TEST(SnapshotEnvelope, RejectsFlippedCrcByte) {
  std::string bytes = encode_snapshot("payload");
  bytes.back() ^= 0x01;
  EXPECT_THROW((void)decode_snapshot(bytes), SnapshotError);
}

TEST(SnapshotEnvelope, RejectsEveryTruncation) {
  const std::string bytes = encode_snapshot("some payload");
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_THROW((void)decode_snapshot(bytes.substr(0, cut)), SnapshotError)
        << "prefix of length " << cut << " decoded without error";
  }
}

TEST(SnapshotEnvelope, RejectsTrailingGarbage) {
  std::string bytes = encode_snapshot("p");
  bytes += '\0';
  EXPECT_THROW((void)decode_snapshot(bytes), SnapshotError);
}

// -- ControlPlane round trip --------------------------------------------------

TelemetryFrame frame_at(double t, double rate, unsigned m) {
  TelemetryFrame f;
  f.sample_time = t;
  f.rate = rate;
  f.serving = m;
  f.committed = m;
  f.powered = m;
  f.available = 20;
  f.jobs_in_system = static_cast<std::uint64_t>(rate);
  return f;
}

// Drives `cp` through `ticks` control periods of a wavy load and returns
// every command frame issued.
std::vector<CommandFrame> drive(ControlPlane& cp, double start_s, int ticks) {
  std::vector<CommandFrame> out;
  for (int i = 0; i < ticks; ++i) {
    const double now = start_s + 5.0 * (i + 1);
    const double rate = 30.0 + 20.0 * ((i * 7) % 11) / 11.0;
    cp.accept_telemetry(frame_at(now - 0.5, rate, 8 + i % 5));
    const auto d = cp.on_tick(now, /*long_tick=*/i % 6 == 5, /*safe_mode=*/false);
    for (const auto& issued : d.commands) out.push_back(issued.frame);
  }
  return out;
}

bool same_command(const CommandFrame& a, const CommandFrame& b) {
  return a.kind == b.kind && a.gen == b.gen && a.era == b.era &&
         std::memcmp(&a.value, &b.value, sizeof a.value) == 0;
}

struct Facade {
  Facade() : solver(bench_cluster_config()) {
    popts.dcp = bench_dcp_params();
    ControlPlaneOptions options;
    options.actuator.enabled = true;
    options.actuator.ack_timeout_s = 5.0;
    cp.emplace(make_policy(PolicyKind::kCombinedDcp, &solver, popts), options,
               Rng(1, 14));
  }
  Provisioner solver;
  PolicyOptions popts;
  std::optional<ControlPlane> cp;
};

TEST(ControlPlaneSnapshot, RestoreIsABitIdenticalTransplant) {
  // Reference: one uninterrupted facade.
  Facade ref;
  (void)drive(*ref.cp, 0.0, 40);
  const std::vector<CommandFrame> want = drive(*ref.cp, 200.0, 40);

  // Subject: same prefix, snapshot, transplant into a *fresh* facade with
  // a different actuator RNG seed (restore overwrites it), same suffix.
  Facade a;
  (void)drive(*a.cp, 0.0, 40);
  const std::string snap = a.cp->snapshot();
  Facade b;
  ControlPlaneOptions bopts;
  bopts.actuator.enabled = true;
  bopts.actuator.ack_timeout_s = 5.0;
  b.cp.emplace(make_policy(PolicyKind::kCombinedDcp, &b.solver, b.popts), bopts,
               Rng(999, 3));
  b.cp->restore(snap);
  EXPECT_EQ(b.cp->ticks(), 40u);
  const std::vector<CommandFrame> got = drive(*b.cp, 200.0, 40);

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_TRUE(same_command(got[i], want[i])) << "command " << i << " diverged";
  }
  // And the transplant carried the counters, not just the decisions.
  EXPECT_EQ(b.cp->ticks(), ref.cp->ticks());
  EXPECT_EQ(b.cp->telemetry_accepted(), ref.cp->telemetry_accepted());
}

TEST(ControlPlaneSnapshot, EveryPolicyKindRoundTrips) {
  const Provisioner solver(bench_cluster_config());
  PolicyOptions popts;
  popts.dcp = bench_dcp_params();
  for (const PolicyKind kind :
       {PolicyKind::kNpm, PolicyKind::kDvfsOnly, PolicyKind::kVovfOnly,
        PolicyKind::kCombinedDcp, PolicyKind::kCombinedSinglePeriod,
        PolicyKind::kThreshold, PolicyKind::kDcpFailureAware,
        PolicyKind::kDcpReliability}) {
    ControlPlane cp(make_policy(kind, &solver, popts), ControlPlaneOptions{},
                    Rng(1, 14));
    const std::vector<CommandFrame> pre = drive(cp, 0.0, 30);
    const std::string snap = cp.snapshot();
    ControlPlane fresh(make_policy(kind, &solver, popts), ControlPlaneOptions{},
                       Rng(2, 2));
    fresh.restore(snap);
    const std::vector<CommandFrame> want = drive(cp, 150.0, 30);
    const std::vector<CommandFrame> got = drive(fresh, 150.0, 30);
    ASSERT_EQ(got.size(), want.size()) << to_string(kind);
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_TRUE(same_command(got[i], want[i]))
          << to_string(kind) << " command " << i << " diverged";
    }
  }
}

TEST(ControlPlaneSnapshot, RejectsSnapshotFromAnotherPolicy) {
  const Provisioner solver(bench_cluster_config());
  PolicyOptions popts;
  popts.dcp = bench_dcp_params();
  ControlPlane dvfs(make_policy(PolicyKind::kDvfsOnly, &solver, popts),
                    ControlPlaneOptions{}, Rng(1, 14));
  const std::string snap = dvfs.snapshot();
  ControlPlane combined(make_policy(PolicyKind::kCombinedDcp, &solver, popts),
                        ControlPlaneOptions{}, Rng(1, 14));
  EXPECT_THROW(combined.restore(snap), SnapshotError);
}

TEST(ControlPlaneSnapshot, RejectsBitFlipsAnywhereInTheImage) {
  Facade f;
  (void)drive(*f.cp, 0.0, 10);
  const std::string snap = f.cp->snapshot();
  // Flip one byte at a spread of offsets; every flip must throw — either
  // the envelope CRC (payload flips) or the header checks catch it.
  for (std::size_t pos = 0; pos < snap.size(); pos += 13) {
    std::string bad = snap;
    bad[pos] ^= 0x40;
    Facade g;
    EXPECT_THROW(g.cp->restore(bad), SnapshotError)
        << "flip at offset " << pos << " restored without error";
  }
}

}  // namespace
}  // namespace gc
