#include "sim/dispatcher.h"

#include <gtest/gtest.h>

#include <vector>

namespace gc {
namespace {

class DispatcherTest : public ::testing::Test {
 protected:
  DispatcherTest() {
    for (std::uint32_t i = 0; i < 4; ++i) {
      servers_.emplace_back(i, &pm_, 1.0, /*initially_on=*/true, 0.0);
    }
  }

  Job make_job(double size) {
    static std::uint64_t next_id = 1;
    Job job;
    job.id = next_id++;
    job.size = size;
    job.remaining = size;
    return job;
  }

  PowerModel pm_;
  std::vector<Server> servers_;
};

TEST_F(DispatcherTest, RoundRobinCycles) {
  Dispatcher d(DispatchPolicy::kRoundRobin, Rng(1));
  std::vector<long> picks;
  for (int i = 0; i < 8; ++i) picks.push_back(d.pick(0.0, servers_));
  EXPECT_EQ(picks, (std::vector<long>{0, 1, 2, 3, 0, 1, 2, 3}));
}

TEST_F(DispatcherTest, RoundRobinSkipsNonServing) {
  servers_[1].set_draining(0.0, true);
  Dispatcher d(DispatchPolicy::kRoundRobin, Rng(1));
  for (int i = 0; i < 9; ++i) {
    const long pick = d.pick(0.0, servers_);
    EXPECT_NE(pick, 1);
  }
}

TEST_F(DispatcherTest, RandomPicksOnlyServing) {
  servers_[0].set_draining(0.0, true);
  servers_[2].set_draining(0.0, true);
  Dispatcher d(DispatchPolicy::kRandom, Rng(7));
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 2000; ++i) {
    const long pick = d.pick(0.0, servers_);
    ASSERT_GE(pick, 0);
    ++counts[static_cast<std::size_t>(pick)];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[2], 0);
  // Remaining two should split roughly evenly.
  EXPECT_NEAR(counts[1], 1000, 150);
  EXPECT_NEAR(counts[3], 1000, 150);
}

TEST_F(DispatcherTest, JsqPicksShortestQueue) {
  (void)servers_[0].enqueue(0.0, make_job(10.0));
  (void)servers_[0].enqueue(0.0, make_job(10.0));
  (void)servers_[1].enqueue(0.0, make_job(10.0));
  // server 2 and 3 empty; tie broken by lowest index.
  Dispatcher d(DispatchPolicy::kJoinShortestQueue, Rng(1));
  EXPECT_EQ(d.pick(0.0, servers_), 2);
}

TEST_F(DispatcherTest, LeastWorkConsidersJobSizes) {
  (void)servers_[0].enqueue(0.0, make_job(1.0));   // little work
  (void)servers_[1].enqueue(0.0, make_job(100.0)); // one big job
  (void)servers_[2].enqueue(0.0, make_job(2.0));
  (void)servers_[2].enqueue(0.0, make_job(2.0));
  (void)servers_[3].enqueue(0.0, make_job(0.5));
  Dispatcher d(DispatchPolicy::kLeastWork, Rng(1));
  EXPECT_EQ(d.pick(0.0, servers_), 3);
}

TEST_F(DispatcherTest, NoServingServersReturnsMinusOne) {
  for (auto& s : servers_) s.set_draining(0.0, true);
  Dispatcher d(DispatchPolicy::kJoinShortestQueue, Rng(1));
  EXPECT_EQ(d.pick(0.0, servers_), -1);
}

TEST(DispatchPolicyNames, ToString) {
  EXPECT_STREQ(to_string(DispatchPolicy::kRoundRobin), "round-robin");
  EXPECT_STREQ(to_string(DispatchPolicy::kJoinShortestQueue), "jsq");
  EXPECT_STREQ(to_string(DispatchPolicy::kLeastWork), "least-work");
  EXPECT_STREQ(to_string(DispatchPolicy::kRandom), "random");
}

}  // namespace
}  // namespace gc
