// Wire-protocol tests (cp/wire.h): codec round trips under arbitrary
// chunking, strict rejection of malformed frames (the corpus style of
// tests/test_config_fuzz), decoder poisoning, and the socketpair-driven
// serve loop — driver (c)'s proof that the ControlPlane is genuinely
// transport-agnostic.
#include "cp/wire.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <limits>
#include <string>
#include <vector>

#include "cp/control_plane.h"
#include "obs/prometheus.h"

namespace gc {
namespace {

class ScriptedController final : public Controller {
 public:
  ControlAction next;
  [[nodiscard]] double short_period_s() const override { return 10.0; }
  [[nodiscard]] double long_period_s() const override { return 60.0; }
  [[nodiscard]] ControlAction on_short_tick(const ControlContext&) override {
    return next;
  }
  [[nodiscard]] ControlAction on_long_tick(const ControlContext&) override {
    return next;
  }
  [[nodiscard]] const char* name() const override { return "scripted"; }
};

TelemetryFrame sample_telemetry() {
  TelemetryFrame f;
  f.sample_time = 123.5;
  f.rate = 17.25;
  f.serving = 4;
  f.committed = 5;
  f.powered = 6;
  f.available = 7;
  f.jobs_in_system = 42;
  return f;
}

std::string all_frames() {
  std::string buf;
  append_telemetry_frame(buf, sample_telemetry());
  append_tick_frame(buf, TickMsg{250.0, true, false});
  append_command_frame(buf, CommandFrame{CommandKind::kSpeed, 0.875, 9, 2});
  append_ack_frame(buf, AckWireMsg{251.0, CommandKind::kSpeed, 9});
  return buf;
}

void expect_all_frames(FrameDecoder& decoder) {
  const auto t = decoder.next();
  ASSERT_TRUE(t.has_value());
  ASSERT_EQ(t->type, WireMsgType::kTelemetry);
  EXPECT_DOUBLE_EQ(t->telemetry.sample_time, 123.5);
  EXPECT_DOUBLE_EQ(t->telemetry.rate, 17.25);
  EXPECT_EQ(t->telemetry.serving, 4u);
  EXPECT_EQ(t->telemetry.committed, 5u);
  EXPECT_EQ(t->telemetry.powered, 6u);
  EXPECT_EQ(t->telemetry.available, 7u);
  EXPECT_EQ(t->telemetry.jobs_in_system, 42u);

  const auto k = decoder.next();
  ASSERT_TRUE(k.has_value());
  ASSERT_EQ(k->type, WireMsgType::kTick);
  EXPECT_DOUBLE_EQ(k->tick.now, 250.0);
  EXPECT_TRUE(k->tick.long_tick);
  EXPECT_FALSE(k->tick.safe_mode);

  const auto c = decoder.next();
  ASSERT_TRUE(c.has_value());
  ASSERT_EQ(c->type, WireMsgType::kCommand);
  EXPECT_EQ(c->command.kind, CommandKind::kSpeed);
  EXPECT_DOUBLE_EQ(c->command.value, 0.875);
  EXPECT_EQ(c->command.gen, 9u);
  EXPECT_EQ(c->command.era, 2u);

  const auto a = decoder.next();
  ASSERT_TRUE(a.has_value());
  ASSERT_EQ(a->type, WireMsgType::kAck);
  EXPECT_DOUBLE_EQ(a->ack.now, 251.0);
  EXPECT_EQ(a->ack.kind, CommandKind::kSpeed);
  EXPECT_EQ(a->ack.gen, 9u);

  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(Wire, RoundTripsEveryMessageType) {
  FrameDecoder decoder;
  decoder.feed(all_frames());
  expect_all_frames(decoder);
}

TEST(Wire, DecodesUnderByteAtATimeChunking) {
  const std::string buf = all_frames();
  FrameDecoder decoder;
  std::vector<WireMessage> out;
  for (const char byte : buf) {
    decoder.feed(&byte, 1);
    while (const auto msg = decoder.next()) out.push_back(*msg);
  }
  EXPECT_EQ(out.size(), 4u);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(Wire, PartialFrameYieldsNothingUntilCompleted) {
  const std::string buf = all_frames();
  FrameDecoder decoder;
  decoder.feed(buf.data(), 10);  // length prefix + a few payload bytes
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_GT(decoder.buffered(), 0u);
  decoder.feed(buf.data() + 10, buf.size() - 10);
  expect_all_frames(decoder);
}

// -- Malformed-input corpus ---------------------------------------------------

std::string u32le(std::uint32_t v) {
  std::string s;
  for (int i = 0; i < 4; ++i) s.push_back(static_cast<char>(v >> (8 * i)));
  return s;
}

TEST(Wire, RejectsZeroLengthFrame) {
  FrameDecoder decoder;
  decoder.feed(u32le(0));
  EXPECT_THROW((void)decoder.next(), WireError);
}

TEST(Wire, RejectsOversizedFrame) {
  FrameDecoder decoder;
  decoder.feed(u32le(kMaxFrameBytes + 1));
  EXPECT_THROW((void)decoder.next(), WireError);
}

TEST(Wire, RejectsUnknownMessageType) {
  std::string buf = u32le(2);
  buf.push_back(static_cast<char>(0x7f));  // no such type
  buf.push_back('\0');
  FrameDecoder decoder;
  decoder.feed(buf);
  EXPECT_THROW((void)decoder.next(), WireError);
}

TEST(Wire, RejectsLengthMismatchForTheType) {
  // A tick frame claiming a telemetry-sized payload.
  std::string buf = u32le(41);
  buf.push_back(static_cast<char>(WireMsgType::kTick));
  buf.append(40, '\0');
  FrameDecoder decoder;
  decoder.feed(buf);
  EXPECT_THROW((void)decoder.next(), WireError);
}

TEST(Wire, RejectsNonFiniteDoubles) {
  TelemetryFrame f = sample_telemetry();
  f.sample_time = std::numeric_limits<double>::quiet_NaN();
  std::string buf;
  append_telemetry_frame(buf, f);
  FrameDecoder decoder;
  decoder.feed(buf);
  EXPECT_THROW((void)decoder.next(), WireError);
}

TEST(Wire, RejectsNegativeTelemetryRate) {
  TelemetryFrame f = sample_telemetry();
  f.rate = -1.0;
  std::string buf;
  append_telemetry_frame(buf, f);
  FrameDecoder decoder;
  decoder.feed(buf);
  EXPECT_THROW((void)decoder.next(), WireError);
}

TEST(Wire, RejectsNonBooleanFlagByte) {
  std::string buf;
  append_tick_frame(buf, TickMsg{10.0, false, false});
  buf[buf.size() - 2] = 2;  // long_tick byte
  FrameDecoder decoder;
  decoder.feed(buf);
  EXPECT_THROW((void)decoder.next(), WireError);
}

TEST(Wire, RejectsOutOfRangeCommandKind) {
  std::string buf;
  append_command_frame(buf, CommandFrame{CommandKind::kTarget, 1.0, 1, 0});
  buf[5] = 7;  // kind byte, first payload byte after [len][type]
  FrameDecoder decoder;
  decoder.feed(buf);
  EXPECT_THROW((void)decoder.next(), WireError);
}

TEST(Wire, PoisonedDecoderRefusesFurtherUse) {
  FrameDecoder decoder;
  decoder.feed(u32le(0));
  EXPECT_THROW((void)decoder.next(), WireError);
  EXPECT_TRUE(decoder.poisoned());
  EXPECT_THROW((void)decoder.next(), WireError);
  EXPECT_THROW(decoder.feed("x", 1), WireError);
}

// -- CRC trailers -------------------------------------------------------------

TEST(WireCrc, LegacyFramesStillDecodeAndAreCounted) {
  // Pre-CRC recordings carry bare frames; the decoder tells the two
  // layouts apart by length alone, so they replay unchanged.
  std::string buf;
  append_telemetry_frame(buf, sample_telemetry(), WireCrc::kNone);
  append_tick_frame(buf, TickMsg{250.0, true, false}, WireCrc::kNone);
  append_command_frame(buf, CommandFrame{CommandKind::kSpeed, 0.875, 9, 2},
                       WireCrc::kNone);
  append_ack_frame(buf, AckWireMsg{251.0, CommandKind::kSpeed, 9},
                   WireCrc::kNone);
  FrameDecoder decoder;
  decoder.feed(buf);
  expect_all_frames(decoder);
  EXPECT_EQ(decoder.crc_frames(), 0u);
}

TEST(WireCrc, CrcFramesDecodeAndAreCounted) {
  FrameDecoder decoder;
  decoder.feed(all_frames());  // default encoding carries the trailer
  expect_all_frames(decoder);
  EXPECT_EQ(decoder.crc_frames(), 4u);
}

TEST(WireCrc, MixedStreamsDecode) {
  std::string buf;
  append_tick_frame(buf, TickMsg{10.0, false, false}, WireCrc::kNone);
  append_tick_frame(buf, TickMsg{20.0, false, false}, WireCrc::kCrc32);
  FrameDecoder decoder;
  decoder.feed(buf);
  EXPECT_TRUE(decoder.next().has_value());
  EXPECT_TRUE(decoder.next().has_value());
  EXPECT_EQ(decoder.crc_frames(), 1u);
}

TEST(WireCrc, FlippingAnyFrameByteIsRejected) {
  std::string buf;
  append_telemetry_frame(buf, sample_telemetry(), WireCrc::kCrc32);
  // Every byte past the length prefix: type, payload and the trailer
  // itself all land under the check.
  for (std::size_t pos = 4; pos < buf.size(); ++pos) {
    std::string bad = buf;
    bad[pos] ^= 0x10;
    FrameDecoder decoder;
    decoder.feed(bad);
    EXPECT_THROW((void)decoder.next(), WireError)
        << "flip at offset " << pos << " decoded without error";
  }
}

TEST(WireCrc, CorruptionThrowsTheDistinctCrcError) {
  std::string buf;
  append_tick_frame(buf, TickMsg{10.0, false, false}, WireCrc::kCrc32);
  buf[6] ^= 0x01;  // payload byte; frame length stays plausible
  FrameDecoder decoder;
  decoder.feed(buf);
  EXPECT_THROW((void)decoder.next(), WireCrcError);
}

// -- The socketpair feed ------------------------------------------------------

struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
  ~SocketPair() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  // Half-close: signals EOF to the serve loop while keeping our end open
  // to read the command frames it writes back (a full close would raise
  // SIGPIPE on the server's replies).
  void close_peer() { ::shutdown(fds[1], SHUT_WR); }
  void send(const std::string& buf) {
    ASSERT_EQ(::write(fds[1], buf.data(), buf.size()),
              static_cast<ssize_t>(buf.size()));
  }
};

TEST(WireServe, DrivesTheControlPlaneOverASocket) {
  ScriptedController controller;
  controller.next.active_target = 3;
  controller.next.speed = 0.5;
  ControlPlane cp(controller, ControlPlaneOptions{}, Rng(7, 14));

  SocketPair pair;
  std::string buf;
  append_telemetry_frame(buf, sample_telemetry());
  append_tick_frame(buf, TickMsg{130.0, true, false});
  pair.send(buf);
  pair.close_peer();

  const WireServeStats stats = serve_connection(cp, pair.fds[0]);
  EXPECT_EQ(stats.telemetry, 1u);
  EXPECT_EQ(stats.ticks, 1u);
  EXPECT_EQ(stats.commands_sent, 2u);
  EXPECT_EQ(cp.telemetry_accepted(), 1u);
  EXPECT_EQ(cp.ticks(), 1u);

  // The decision's command frames came back over the same stream.
  char reply[256];
  const ssize_t n = ::read(pair.fds[1], reply, sizeof reply);
  ASSERT_GT(n, 0);
  FrameDecoder decoder;
  decoder.feed(reply, static_cast<std::size_t>(n));
  const auto target = decoder.next();
  ASSERT_TRUE(target.has_value());
  EXPECT_EQ(target->command.kind, CommandKind::kTarget);
  EXPECT_DOUBLE_EQ(target->command.value, 3.0);
  const auto speed = decoder.next();
  ASSERT_TRUE(speed.has_value());
  EXPECT_EQ(speed->command.kind, CommandKind::kSpeed);
  EXPECT_DOUBLE_EQ(speed->command.value, 0.5);
}

TEST(WireServe, ForwardsAcksToTheActuator) {
  ScriptedController controller;
  controller.next.active_target = 2;
  ControlPlaneOptions options;
  options.actuator.enabled = true;
  options.actuator.ack_timeout_s = 5.0;
  ControlPlane cp(controller, options, Rng(7, 14));

  SocketPair pair;
  std::string buf;
  append_tick_frame(buf, TickMsg{0.0, false, false});
  append_ack_frame(buf, AckWireMsg{1.0, CommandKind::kTarget, 1});
  pair.send(buf);
  pair.close_peer();
  const WireServeStats stats = serve_connection(cp, pair.fds[0]);
  EXPECT_EQ(stats.acks, 1u);
  const ControlContext ctx = cp.make_context(2.0, false);
  ASSERT_TRUE(ctx.acked_target.has_value());
  EXPECT_EQ(*ctx.acked_target, 2u);
}

TEST(WireServe, RejectsInboundCommandFrames) {
  ScriptedController controller;
  ControlPlane cp(controller, ControlPlaneOptions{}, Rng(7, 14));
  SocketPair pair;
  std::string buf;
  append_command_frame(buf, CommandFrame{CommandKind::kTarget, 1.0, 1, 0});
  pair.send(buf);
  pair.close_peer();
  EXPECT_THROW(serve_connection(cp, pair.fds[0]), WireError);
}

TEST(WireServe, MidFrameEofIsAnError) {
  ScriptedController controller;
  ControlPlane cp(controller, ControlPlaneOptions{}, Rng(7, 14));
  SocketPair pair;
  std::string buf;
  append_telemetry_frame(buf, sample_telemetry());
  pair.send(buf.substr(0, 12));  // cut inside the payload
  pair.close_peer();
  EXPECT_THROW(serve_connection(cp, pair.fds[0]), WireError);
}

TEST(WireServe, CorruptFrameCountsACrcErrorBeforeThrowing) {
  ScriptedController controller;
  ControlPlane cp(controller, ControlPlaneOptions{}, Rng(7, 14));
  SocketPair pair;
  std::string buf;
  append_tick_frame(buf, TickMsg{10.0, false, false});
  append_telemetry_frame(buf, sample_telemetry());
  buf[buf.size() - 6] ^= 0x04;  // inside the telemetry payload
  pair.send(buf);
  pair.close_peer();
  WireServeStats stats;
  EXPECT_THROW(serve_connection(cp, pair.fds[0], stats, nullptr), WireCrcError);
  // The in-place overload's whole point: stats survive the throw, so the
  // transport can count the rejection before reconnecting.
  EXPECT_EQ(stats.ticks, 1u);
  EXPECT_EQ(stats.crc_errors, 1u);
}

TEST(WireServe, LegacyNoCrcStreamDrivesTheLifecycleTracker) {
  // The pre-CRC decode path must stay a first-class citizen: a stream of
  // legacy (trailerless) frames drives the facade, and the lifecycle
  // tracker derives command ids from (gen, kind) exactly as it does for
  // checksummed traffic — identity lives in the frame, not the framing.
  ScriptedController controller;
  controller.next.active_target = 3;
  controller.next.speed = 0.5;
  ControlPlaneOptions options;
  options.actuator.enabled = true;
  options.actuator.ack_timeout_s = 5.0;
  ControlPlane cp(controller, options, Rng(7, 14));

  SocketPair pair;
  std::string buf;
  append_telemetry_frame(buf, sample_telemetry(), WireCrc::kNone);
  append_tick_frame(buf, TickMsg{130.0, true, false}, WireCrc::kNone);
  append_ack_frame(buf, AckWireMsg{131.0, CommandKind::kTarget, 1},
                   WireCrc::kNone);
  pair.send(buf);
  pair.close_peer();
  const WireServeStats stats = serve_connection(cp, pair.fds[0]);
  EXPECT_EQ(stats.telemetry, 1u);
  EXPECT_EQ(stats.ticks, 1u);
  EXPECT_EQ(stats.acks, 1u);
  EXPECT_EQ(stats.crc_errors, 0u);
  EXPECT_EQ(stats.decode_errors, 0u);
  EXPECT_EQ(cp.lifecycle().issued(), 2u);
  EXPECT_EQ(cp.lifecycle().acked(), 1u);
  const auto records = cp.lifecycle().records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].id(), command_lifecycle_id(records[0].kind,
                                                  records[0].gen));
}

TEST(WireServe, StatsRenderAsCounters) {
  WireServeStats stats;
  stats.telemetry = 3;
  stats.ticks = 2;
  stats.acks = 1;
  stats.commands_sent = 4;
  stats.crc_errors = 5;
  stats.decode_errors = 6;
  const CountersSnapshot snap = stats.counters_snapshot();
  auto value_of = [&](const std::string& name) -> std::uint64_t {
    for (const auto& [key, value] : snap.counters) {
      if (key == name) return value;
    }
    ADD_FAILURE() << "missing counter " << name;
    return ~0ull;
  };
  EXPECT_EQ(value_of("cp.wire.accepted.telemetry"), 3u);
  EXPECT_EQ(value_of("cp.wire.accepted.tick"), 2u);
  EXPECT_EQ(value_of("cp.wire.accepted.ack"), 1u);
  EXPECT_EQ(value_of("cp.wire.commands_sent"), 4u);
  EXPECT_EQ(value_of("cp.wire.crc_errors"), 5u);
  EXPECT_EQ(value_of("cp.wire.decode_errors"), 6u);
}

TEST(WireServe, MidFrameEofMetersADecodeErrorNotACrcError) {
  ScriptedController controller;
  ControlPlane cp(controller, ControlPlaneOptions{}, Rng(7, 14));
  SocketPair pair;
  std::string buf;
  append_tick_frame(buf, TickMsg{10.0, false, false});
  append_telemetry_frame(buf, sample_telemetry());
  pair.send(buf.substr(0, buf.size() - 6));  // cut inside the telemetry
  pair.close_peer();
  WireServeStats stats;
  EXPECT_THROW(serve_connection(cp, pair.fds[0], stats, nullptr), WireError);
  EXPECT_EQ(stats.ticks, 1u);
  EXPECT_EQ(stats.decode_errors, 1u);
  EXPECT_EQ(stats.crc_errors, 0u);
}

TEST(WireServe, InboundCommandMetersADecodeError) {
  ScriptedController controller;
  ControlPlane cp(controller, ControlPlaneOptions{}, Rng(7, 14));
  SocketPair pair;
  std::string buf;
  append_command_frame(buf, CommandFrame{CommandKind::kTarget, 1.0, 1, 0});
  pair.send(buf);
  pair.close_peer();
  WireServeStats stats;
  EXPECT_THROW(serve_connection(cp, pair.fds[0], stats, nullptr), WireError);
  EXPECT_EQ(stats.decode_errors, 1u);
}

TEST(WireServe, HooksSeeEveryAcceptedMessage) {
  ScriptedController controller;
  ControlPlane cp(controller, ControlPlaneOptions{}, Rng(7, 14));
  SocketPair pair;
  std::string buf;
  append_telemetry_frame(buf, sample_telemetry());
  append_tick_frame(buf, TickMsg{130.0, false, false});
  pair.send(buf);
  pair.close_peer();
  std::vector<WireMsgType> seen;
  WireHooks hooks;
  hooks.on_accepted = [&](const WireMessage& msg) { seen.push_back(msg.type); };
  WireServeStats stats;
  serve_connection(cp, pair.fds[0], stats, &hooks);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], WireMsgType::kTelemetry);
  EXPECT_EQ(seen[1], WireMsgType::kTick);
}

// -- The scrape endpoint ------------------------------------------------------

TEST(Scrape, AnswersOneHttpRequestWithTheBody) {
  SocketPair pair;
  const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::write(pair.fds[1], request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  serve_scrape(pair.fds[0], "gc_up 1\n");
  ::close(pair.fds[0]);
  pair.fds[0] = -1;
  std::string reply;
  char chunk[512];
  ssize_t n;
  while ((n = ::read(pair.fds[1], chunk, sizeof chunk)) > 0) {
    reply.append(chunk, static_cast<std::size_t>(n));
  }
  EXPECT_EQ(reply.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
  EXPECT_NE(reply.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(reply.find("Content-Length: 8\r\n"), std::string::npos);
  EXPECT_NE(reply.find("\r\n\r\ngc_up 1\n"), std::string::npos);
}

TEST(Scrape, BareReaderWithoutARequestStillGetsTheBody) {
  // netcat-style client: write nothing, half-close, read.
  SocketPair pair;
  pair.close_peer();
  serve_scrape(pair.fds[0], "x");
  ::close(pair.fds[0]);
  pair.fds[0] = -1;
  std::string reply;
  char chunk[512];
  ssize_t n;
  while ((n = ::read(pair.fds[1], chunk, sizeof chunk)) > 0) {
    reply.append(chunk, static_cast<std::size_t>(n));
  }
  EXPECT_NE(reply.find("\r\n\r\nx"), std::string::npos);
}

}  // namespace
}  // namespace gc
