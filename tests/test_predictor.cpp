#include "control/predictor.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace gc {
namespace {

TEST(PredictorFactory, BuildsEveryKind) {
  for (const auto kind : {PredictorKind::kLastValue, PredictorKind::kEwma,
                          PredictorKind::kSlidingMax, PredictorKind::kLinearTrend}) {
    const auto predictor = make_predictor(kind, 30.0);
    ASSERT_NE(predictor, nullptr);
    EXPECT_FALSE(predictor->name().empty());
    predictor->observe(5.0);
    EXPECT_GE(predictor->predict(300.0), 0.0);
  }
}

TEST(PredictorFactory, RejectsBadPeriod) {
  EXPECT_THROW(make_predictor(PredictorKind::kEwma, 0.0), std::invalid_argument);
}

TEST(PredictorKindNames, ToString) {
  EXPECT_STREQ(to_string(PredictorKind::kLastValue), "last-value");
  EXPECT_STREQ(to_string(PredictorKind::kSlidingMax), "sliding-max");
}

TEST(LastValue, ReturnsLatest) {
  LastValuePredictor p;
  EXPECT_DOUBLE_EQ(p.predict(100.0), 0.0);
  p.observe(3.0);
  p.observe(7.0);
  EXPECT_DOUBLE_EQ(p.predict(100.0), 7.0);
  p.reset();
  EXPECT_DOUBLE_EQ(p.predict(100.0), 0.0);
}

TEST(EwmaPred, SmoothsHistory) {
  EwmaPredictor p(0.5);
  p.observe(0.0);
  p.observe(8.0);
  EXPECT_DOUBLE_EQ(p.predict(0.0), 4.0);
}

TEST(EwmaPred, RejectsBadAlpha) {
  EXPECT_THROW(EwmaPredictor(0.0), std::invalid_argument);
}

TEST(SlidingMax, RemembersRecentPeak) {
  SlidingMaxPredictor p(3);
  p.observe(10.0);
  p.observe(2.0);
  p.observe(3.0);
  EXPECT_DOUBLE_EQ(p.predict(0.0), 10.0);
  p.observe(1.0);  // evicts the 10
  EXPECT_DOUBLE_EQ(p.predict(0.0), 3.0);
}

TEST(SlidingMax, RejectsZeroWindow) {
  EXPECT_THROW(SlidingMaxPredictor(0), std::invalid_argument);
}

TEST(LinearTrend, ExtrapolatesRamp) {
  LinearTrendPredictor p(10, 1.0);
  // Perfect ramp: rate t at time t.
  for (int t = 0; t < 10; ++t) p.observe(static_cast<double>(t));
  // At the last sample (t=9), predicting 5 s ahead should give ~14.
  EXPECT_NEAR(p.predict(5.0), 14.0, 1e-9);
}

TEST(LinearTrend, FlatHistoryPredictsFlat) {
  LinearTrendPredictor p(10, 1.0);
  for (int t = 0; t < 10; ++t) p.observe(5.0);
  EXPECT_NEAR(p.predict(100.0), 5.0, 1e-9);
}

TEST(LinearTrend, ClampsNegativePredictionsAtZero) {
  LinearTrendPredictor p(5, 1.0);
  for (int t = 0; t < 5; ++t) p.observe(10.0 - 2.0 * t);
  EXPECT_DOUBLE_EQ(p.predict(100.0), 0.0);
}

TEST(LinearTrend, SingleSampleFallsBack) {
  LinearTrendPredictor p(5, 1.0);
  p.observe(4.0);
  EXPECT_DOUBLE_EQ(p.predict(10.0), 4.0);
}

TEST(LinearTrend, RejectsBadParams) {
  EXPECT_THROW(LinearTrendPredictor(1, 1.0), std::invalid_argument);
  EXPECT_THROW(LinearTrendPredictor(5, 0.0), std::invalid_argument);
}

TEST(LinearTrend, WindowEvictsOldSlope) {
  LinearTrendPredictor p(4, 1.0);
  // Old steep history followed by a flat plateau: once the window rolls,
  // the prediction flattens.
  for (int t = 0; t < 20; ++t) p.observe(t < 10 ? 10.0 * t : 100.0);
  EXPECT_NEAR(p.predict(10.0), 100.0, 1.0);
}

}  // namespace
}  // namespace gc
