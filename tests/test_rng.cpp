#include "stats/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace gc {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123, 0);
  Rng b(123, 0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1, 0);
  Rng b(2, 0);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_EQ(same, 0);
}

TEST(Rng, DifferentStreamsDiffer) {
  Rng a(7, 0);
  Rng b(7, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_EQ(same, 0);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(99);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01OpenLeftNeverZero) {
  Rng rng(99);
  for (int i = 0; i < 100000; ++i) {
    EXPECT_GT(rng.uniform01_open_left(), 0.0);
    EXPECT_LE(rng.uniform01_open_left(), 1.0);
  }
}

TEST(Rng, Uniform01MeanAndVariance) {
  Rng rng(2024);
  const int n = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform01();
    sum += u;
    sumsq += u * u;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformBelowRespectsBound) {
  Rng rng(5);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.uniform_below(bound), bound);
    }
  }
}

TEST(Rng, UniformBelowZeroBoundReturnsZero) {
  Rng rng(5);
  EXPECT_EQ(rng.uniform_below(0), 0u);
}

TEST(Rng, UniformBelowCoversAllValues) {
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, SplitStreamsAreIndependentish) {
  Rng parent(42);
  Rng a = parent.split(1);
  Rng b = parent.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_EQ(same, 0);
}

TEST(Rng, ChiSquareUniformityOf16Bins) {
  Rng rng(31337);
  constexpr int kBins = 16;
  constexpr int kN = 160000;
  std::vector<int> counts(kBins, 0);
  for (int i = 0; i < kN; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform01() * kBins)];
  }
  const double expected = static_cast<double>(kN) / kBins;
  double chi2 = 0.0;
  for (const int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 15 dof: p=0.999 critical value ~ 37.7.
  EXPECT_LT(chi2, 37.7);
}

TEST(SplitMix64, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  EXPECT_NE(first, second);
  // Regression pin: SplitMix64 from seed 0 (reference values).
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), 0xe220a8397b1dcdafULL);
}

}  // namespace
}  // namespace gc
