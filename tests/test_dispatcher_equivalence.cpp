// Equivalence oracle for the indexed dispatcher hot path: for every
// DispatchPolicy, the indexed pick (over the incrementally-maintained
// serving set) must produce the exact same pick sequence as the retained
// O(M) reference scan, across server lifecycle churn — boots, failures,
// repairs, drains and shutdowns.
//
// Two Dispatcher instances are seeded identically; one is fed the sorted
// serving index the test maintains alongside the fleet, the other rebuilds
// the set by scanning.  Any divergence in candidate set, order, or RNG
// consumption shows up as a mismatched pick.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "power/power_model.h"
#include "sim/dispatcher.h"
#include "sim/job.h"
#include "sim/server.h"
#include "stats/rng.h"

namespace gc {
namespace {

constexpr std::uint32_t kNumServers = 48;

class DispatcherEquivalenceTest : public ::testing::TestWithParam<DispatchPolicy> {
 protected:
  DispatcherEquivalenceTest() {
    servers_.reserve(kNumServers);
    for (std::uint32_t i = 0; i < kNumServers; ++i) {
      // Half the fleet starts ON so there is a serving set from step one.
      servers_.emplace_back(i, &power_, /*initial_speed=*/1.0,
                            /*initially_on=*/i % 2 == 0, /*start_time=*/0.0);
    }
    rebuild_index();
  }

  void rebuild_index() {
    index_.clear();
    for (const Server& s : servers_) {
      if (s.serving()) index_.push_back(s.index());
    }
  }

  // Applies one random lifecycle mutation, then refreshes the index the
  // same way the cluster's apply_transition would leave it: sorted indices
  // of the currently-serving servers.
  void churn(double now, Rng& rng) {
    Server& s = servers_[static_cast<std::size_t>(rng.uniform_below(kNumServers))];
    switch (rng.uniform_below(4)) {
      case 0:  // advance towards ON
        if (s.state() == PowerState::kOff) s.start_boot(now);
        else if (s.state() == PowerState::kBooting) s.finish_boot(now);
        else if (s.state() == PowerState::kOn && s.draining()) s.set_draining(now, false);
        break;
      case 1:  // advance towards OFF
        if (s.serving() && index_.size() > 1) s.set_draining(now, true);
        else if (s.state() == PowerState::kOn && s.draining() && !s.busy()) {
          s.begin_shutdown(now);
        } else if (s.state() == PowerState::kShuttingDown) {
          s.finish_shutdown(now);
        }
        break;
      case 2:  // crash / repair
        if (s.failed()) s.finish_repair(now);
        else if (s.state() != PowerState::kOff && !(s.serving() && index_.size() <= 1)) {
          (void)s.fail(now);
        }
        break;
      case 3:  // load it up, so JSQ/least-work have something to compare
        if (s.serving()) {
          Job job;
          job.id = next_job_++;
          job.size = 0.5 + rng.uniform01();
          job.remaining = job.size;
          job.arrival_time = now;
          (void)s.enqueue(now, job);
        }
        break;
    }
    rebuild_index();
  }

  PowerModel power_{PowerModelParams{}};
  std::vector<Server> servers_;
  std::vector<std::uint32_t> index_;
  std::uint64_t next_job_ = 0;
};

TEST_P(DispatcherEquivalenceTest, IndexedAndScanPicksAgreeUnderChurn) {
  Dispatcher indexed(GetParam(), Rng(2024, /*stream=*/3));
  Dispatcher scanning(GetParam(), Rng(2024, /*stream=*/3));
  Rng churn_rng(511);

  double now = 0.0;
  for (int step = 0; step < 5000; ++step) {
    now += 0.25;
    churn(now, churn_rng);
    const long a = indexed.pick(now, servers_, index_);
    const long b = scanning.pick(now, servers_);
    ASSERT_EQ(a, b) << to_string(GetParam()) << " diverged at step " << step;
    if (a >= 0) {
      // Route the job both dispatchers chose, so queue lengths evolve and
      // later JSQ/least-work comparisons are non-trivial.
      Job job;
      job.id = next_job_++;
      job.size = 1.0;
      job.remaining = job.size;
      job.arrival_time = now;
      (void)servers_[static_cast<std::size_t>(a)].enqueue(now, job);
    }
  }
}

TEST_P(DispatcherEquivalenceTest, EmptyServingSetReturnsMinusOneOnBothPaths) {
  Dispatcher indexed(GetParam(), Rng(7, /*stream=*/3));
  Dispatcher scanning(GetParam(), Rng(7, /*stream=*/3));
  std::vector<Server> fleet;
  fleet.emplace_back(0, &power_, 1.0, /*initially_on=*/false, 0.0);
  const std::vector<std::uint32_t> empty;
  EXPECT_EQ(indexed.pick(0.0, fleet, empty), -1);
  EXPECT_EQ(scanning.pick(0.0, fleet), -1);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, DispatcherEquivalenceTest,
                         ::testing::Values(DispatchPolicy::kRoundRobin,
                                           DispatchPolicy::kRandom,
                                           DispatchPolicy::kJoinShortestQueue,
                                           DispatchPolicy::kLeastWork),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case DispatchPolicy::kRoundRobin: return "RoundRobin";
                             case DispatchPolicy::kRandom: return "Random";
                             case DispatchPolicy::kJoinShortestQueue: return "Jsq";
                             case DispatchPolicy::kLeastWork: return "LeastWork";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace gc
