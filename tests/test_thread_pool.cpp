#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace gc {
namespace {

TEST(ThreadPool, RunsEveryIterationExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for_index(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for_index(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, SingleIterationRunsInline) {
  ThreadPool pool(2);
  std::size_t got = 99;
  pool.parallel_for_index(1, [&](std::size_t i) { got = i; });
  EXPECT_EQ(got, 0u);
}

TEST(ThreadPool, ResultIndependentOfThreadCount) {
  constexpr std::size_t kN = 257;
  auto compute = [](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<double> out(kN);
    pool.parallel_for_index(kN, [&](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.5 + 1.0;
    });
    return out;
  };
  EXPECT_EQ(compute(1), compute(7));
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for_index(100,
                              [&](std::size_t i) {
                                if (i == 42) throw std::runtime_error("boom");
                              }),
      std::runtime_error);
}

TEST(ThreadPool, AllIterationsCompleteEvenWithException) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  try {
    pool.parallel_for_index(64, [&](std::size_t i) {
      count.fetch_add(1);
      if (i == 0) throw std::runtime_error("x");
    });
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for_index(100, [&](std::size_t i) {
      sum.fetch_add(static_cast<long>(i));
    });
  }
  EXPECT_EQ(sum.load(), 5 * (99 * 100 / 2));
}

TEST(ThreadPool, DefaultSizeAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, GlobalPoolWorks) {
  std::atomic<int> n{0};
  global_pool().parallel_for_index(10, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 10);
}

}  // namespace
}  // namespace gc
