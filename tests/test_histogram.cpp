#include "stats/histogram.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "stats/rng.h"

namespace gc {
namespace {

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(5.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.1);
  h.add(1.0);   // hi is exclusive
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinEdges) {
  Histogram h(2.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lower(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(0), 2.5);
  EXPECT_DOUBLE_EQ(h.bin_lower(3), 3.5);
  EXPECT_DOUBLE_EQ(h.bin_width(), 0.5);
}

TEST(Histogram, CdfMonotone) {
  Histogram h(0.0, 1.0, 10);
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) h.add(rng.uniform01());
  double prev = 0.0;
  for (std::size_t b = 0; b < h.num_bins(); ++b) {
    const double c = h.cdf_at_bin(b);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(prev, 1.0, 1e-12);
}

TEST(Histogram, QuantileOfUniform) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(5);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform01());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
}

TEST(Histogram, QuantileEmptyDies) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DEATH((void)h.quantile(0.5), "empty");
}

TEST(Histogram, Merge) {
  Histogram a(0.0, 1.0, 4);
  Histogram b(0.0, 1.0, 4);
  a.add(0.1);
  b.add(0.9);
  b.add(-1.0);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.bin_count(0), 1u);
  EXPECT_EQ(a.bin_count(3), 1u);
  EXPECT_EQ(a.underflow(), 1u);
}

TEST(Histogram, MergeIncompatibleDies) {
  Histogram a(0.0, 1.0, 4);
  Histogram b(0.0, 2.0, 4);
  EXPECT_DEATH(a.merge(b), "incompatible");
}

}  // namespace
}  // namespace gc
