// Fault-injection unit tests: scripted crashes, boot hangs, repair cycles
// and the cluster's orphan-job handling, driven through a miniature event
// loop that mirrors the simulation's routing of fault events.
#include "sim/fault_injector.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "sim/cluster.h"

namespace gc {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

ClusterOptions cluster_options(unsigned servers, unsigned active) {
  ClusterOptions options;
  options.num_servers = servers;
  options.initial_active = active;
  options.transition.boot_delay_s = 2.0;
  options.transition.shutdown_delay_s = 0.5;
  return options;
}

Job make_job(std::uint64_t id, double now, double size) {
  Job job;
  job.id = id;
  job.arrival_time = now;
  job.size = size;
  job.remaining = size;
  return job;
}

// Pops events up to `horizon` and routes them the way simulation.cpp does.
// An event past the horizon is put back (with a fresh id — fine for these
// tests, which never resume the run across a put-back boundary in a way
// that depends on the old id).
struct FaultHarness {
  EventQueue queue;
  Cluster cluster;
  FaultInjector injector;
  double now = 0.0;
  std::uint64_t completed = 0;
  // Every kServerFail that actually crashed a server, in firing order.
  std::vector<std::pair<double, std::uint32_t>> crash_log;

  FaultHarness(const ClusterOptions& options, const FaultOptions& faults,
               std::uint64_t seed)
      : cluster(options, &queue), injector(faults, options.num_servers, seed) {
    cluster.set_fault_injector(&injector);
    injector.arm(queue);
  }

  void run_until(double horizon) {
    while (auto event = queue.pop()) {
      if (event->time > horizon) {
        queue.schedule(event->time, event->type, event->subject);
        break;
      }
      now = event->time;
      switch (event->type) {
        case EventType::kDeparture:
          (void)cluster.handle_departure(now, event->subject);
          ++completed;
          break;
        case EventType::kBootComplete:
          cluster.handle_boot_complete(now, event->subject);
          break;
        case EventType::kShutdownComplete:
          cluster.handle_shutdown_complete(now, event->subject);
          break;
        case EventType::kServerFail:
          if (injector.on_fail_event(now, event->subject, cluster, queue)) {
            crash_log.emplace_back(now, event->subject);
          }
          break;
        case EventType::kServerRepair:
          injector.on_repair_event(now, event->subject, cluster, queue);
          break;
        case EventType::kBootTimeout:
          injector.on_boot_timeout(now, event->subject, cluster, queue);
          break;
        default:
          break;
      }
    }
    now = horizon;
  }
};

TEST(FaultOptions, ValidateRejectsBadParameters) {
  FaultOptions ok;
  ok.mtbf_s = 100.0;
  EXPECT_NO_THROW(ok.validate());

  FaultOptions bad = ok;
  bad.mtbf_s = -1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.mttr_s = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.boot_hang_prob = 1.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.boot_timeout_s = -2.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.script.push_back({-1.0, 0});
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.script.push_back({5.0, 0, 0.0});
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(FaultOptions, EnabledOnlyWithAFaultSource) {
  FaultOptions options;
  EXPECT_FALSE(options.enabled());
  options.mtbf_s = 10.0;
  EXPECT_TRUE(options.enabled());
  options = {};
  options.boot_hang_prob = 0.1;
  EXPECT_TRUE(options.enabled());
  options = {};
  options.script.push_back({1.0, 0});
  EXPECT_TRUE(options.enabled());
}

TEST(FaultInjector, RejectsScriptBeyondFleet) {
  FaultOptions faults;
  faults.script.push_back({1.0, 7});
  EXPECT_THROW(FaultInjector(faults, 4, 1), std::invalid_argument);
}

TEST(FaultInjector, ScriptedCrashThenFixedRepair) {
  FaultOptions faults;
  faults.script.push_back({10.0, 0, 5.0});
  FaultHarness h(cluster_options(4, 2), faults, 1);

  h.run_until(9.0);
  EXPECT_EQ(h.cluster.failed_count(), 0u);
  EXPECT_EQ(h.cluster.server(0).state(), PowerState::kOn);

  h.run_until(10.5);
  EXPECT_EQ(h.cluster.failures(), 1u);
  EXPECT_EQ(h.cluster.failed_count(), 1u);
  EXPECT_EQ(h.cluster.available_count(), 3u);
  EXPECT_EQ(h.cluster.server(0).state(), PowerState::kFailed);

  h.run_until(16.0);
  EXPECT_EQ(h.cluster.repairs(), 1u);
  EXPECT_EQ(h.cluster.failed_count(), 0u);
  EXPECT_EQ(h.cluster.server(0).state(), PowerState::kOff);
}

TEST(FaultInjector, ScriptedFaultOnOffServerIsDropped) {
  // Server 3 is OFF (only 0 and 1 are active): the crash is a no-op.
  FaultOptions faults;
  faults.script.push_back({10.0, 3, 5.0});
  FaultHarness h(cluster_options(4, 2), faults, 1);
  h.run_until(20.0);
  EXPECT_EQ(h.cluster.failures(), 0u);
  EXPECT_EQ(h.cluster.failed_count(), 0u);
  EXPECT_EQ(h.cluster.server(3).state(), PowerState::kOff);
}

TEST(FaultInjector, CrashDuringBootFails) {
  // Server 1 boots at t=0 (boot delay 2); the scripted crash at t=1 lands
  // mid-boot, cancels the pending kBootComplete and the repair returns the
  // server to OFF.
  FaultOptions faults;
  faults.script.push_back({1.0, 1, 3.0});
  FaultHarness h(cluster_options(2, 1), faults, 1);
  h.cluster.set_active_target(0.0, 2);
  EXPECT_EQ(h.cluster.server(1).state(), PowerState::kBooting);
  h.run_until(1.5);
  EXPECT_EQ(h.cluster.server(1).state(), PowerState::kFailed);
  h.run_until(10.0);
  EXPECT_EQ(h.cluster.server(1).state(), PowerState::kOff);
  EXPECT_EQ(h.cluster.failures(), 1u);
  EXPECT_EQ(h.cluster.repairs(), 1u);
  EXPECT_EQ(h.cluster.boot_timeouts(), 0u);
}

TEST(FaultInjector, OrphansRedispatchToSurvivors) {
  FaultOptions faults;
  faults.script.push_back({1.0, 0, kInf});
  FaultHarness h(cluster_options(2, 2), faults, 1);
  // Six long jobs at t=0; JSQ splits them 3/3.
  for (std::uint64_t i = 1; i <= 6; ++i) {
    ASSERT_TRUE(h.cluster.route_job(0.0, make_job(i, 0.0, 100.0)));
  }
  h.run_until(2.0);
  EXPECT_EQ(h.cluster.failures(), 1u);
  EXPECT_EQ(h.cluster.jobs_redispatched(), 3u);
  EXPECT_EQ(h.cluster.jobs_lost(), 0u);
  EXPECT_EQ(h.cluster.jobs_in_system(), 6u);  // conservation across the crash
  EXPECT_EQ(h.completed, 0u);
}

TEST(FaultInjector, AllServersDownLosesJobs) {
  FaultOptions faults;
  faults.script.push_back({1.0, 0, kInf});
  faults.script.push_back({2.0, 1, kInf});
  FaultHarness h(cluster_options(2, 2), faults, 1);
  for (std::uint64_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(h.cluster.route_job(0.0, make_job(i, 0.0, 100.0)));
  }
  h.run_until(3.0);
  EXPECT_EQ(h.cluster.failures(), 2u);
  EXPECT_EQ(h.cluster.serving_count(), 0u);
  EXPECT_EQ(h.cluster.failed_count(), 2u);
  // The first crash moves its jobs to the survivor; the second has nowhere
  // left and destroys all four.
  EXPECT_EQ(h.cluster.jobs_redispatched(), 2u);
  EXPECT_EQ(h.cluster.jobs_lost(), 4u);
  EXPECT_EQ(h.cluster.jobs_in_system(), 0u);
}

TEST(FaultInjector, BootHangTimesOutAndRepairs) {
  FaultOptions faults;
  faults.boot_hang_prob = 1.0;
  faults.boot_timeout_s = 5.0;
  faults.mttr_s = 50.0;
  FaultHarness h(cluster_options(2, 1), faults, 3);
  h.cluster.set_active_target(0.0, 2);
  EXPECT_EQ(h.cluster.server(1).state(), PowerState::kBooting);
  h.run_until(4.9);
  EXPECT_EQ(h.cluster.boot_timeouts(), 0u);
  EXPECT_EQ(h.cluster.server(1).state(), PowerState::kBooting);
  h.run_until(5.5);
  EXPECT_EQ(h.cluster.boot_timeouts(), 1u);
  EXPECT_EQ(h.cluster.failures(), 1u);
  EXPECT_EQ(h.cluster.server(1).state(), PowerState::kFailed);
  h.run_until(1e7);  // the exponential repair fires eventually
  EXPECT_EQ(h.cluster.repairs(), 1u);
  EXPECT_EQ(h.cluster.server(1).state(), PowerState::kOff);
}

TEST(FaultInjector, DefaultBootTimeoutIsThreeBootDelays) {
  FaultOptions faults;
  faults.boot_hang_prob = 1.0;  // boot_timeout_s = 0 -> 3 * boot_delay
  FaultHarness h(cluster_options(2, 1), faults, 3);
  h.cluster.set_active_target(0.0, 2);
  h.run_until(5.9);  // 3 * 2.0 = 6.0
  EXPECT_EQ(h.cluster.boot_timeouts(), 0u);
  h.run_until(6.1);
  EXPECT_EQ(h.cluster.boot_timeouts(), 1u);
}

TEST(FaultInjector, BackgroundProcessCrashesAndRepairs) {
  FaultOptions faults;
  faults.mtbf_s = 50.0;
  faults.mttr_s = 10.0;
  FaultHarness h(cluster_options(4, 4), faults, 7);
  h.run_until(2000.0);
  EXPECT_GT(h.cluster.failures(), 0u);
  EXPECT_GT(h.cluster.repairs(), 0u);
  EXPECT_LE(h.cluster.repairs(), h.cluster.failures());
  // Every crash set FAILED and every repair cleared one.
  EXPECT_EQ(h.cluster.failed_count(),
            static_cast<unsigned>(h.cluster.failures() - h.cluster.repairs()));
  // State partition still holds.
  unsigned counted = 0;
  for (std::uint32_t i = 0; i < h.cluster.num_servers(); ++i) {
    switch (h.cluster.server(i).state()) {
      case PowerState::kOn:
      case PowerState::kBooting:
      case PowerState::kShuttingDown:
      case PowerState::kOff:
      case PowerState::kFailed:
        ++counted;
        break;
    }
  }
  EXPECT_EQ(counted, h.cluster.num_servers());
}

TEST(FaultInjector, EnergyStaysMonotoneUnderCrashes) {
  FaultOptions faults;
  faults.mtbf_s = 30.0;
  faults.mttr_s = 5.0;
  FaultHarness h(cluster_options(4, 4), faults, 11);
  double last_energy = 0.0;
  for (double t = 100.0; t <= 1000.0; t += 100.0) {
    h.run_until(t);
    h.cluster.flush_energy(t);
    const double energy = h.cluster.energy().total_j();
    EXPECT_TRUE(std::isfinite(energy));
    EXPECT_GE(energy, last_energy - 1e-9);
    last_energy = energy;
  }
  EXPECT_GT(last_energy, 0.0);
}

TEST(FaultInjector, DeterministicInSeed) {
  FaultOptions faults;
  faults.mtbf_s = 40.0;
  faults.mttr_s = 8.0;
  FaultHarness a(cluster_options(8, 8), faults, 21);
  FaultHarness b(cluster_options(8, 8), faults, 21);
  a.run_until(1500.0);
  b.run_until(1500.0);
  EXPECT_EQ(a.crash_log, b.crash_log);
  EXPECT_EQ(a.cluster.failures(), b.cluster.failures());
  EXPECT_EQ(a.cluster.repairs(), b.cluster.repairs());

  FaultHarness c(cluster_options(8, 8), faults, 22);
  c.run_until(1500.0);
  ASSERT_FALSE(a.crash_log.empty());
  EXPECT_NE(a.crash_log, c.crash_log);  // continuous crash times: collisions
                                        // across seeds are measure-zero
}

}  // namespace
}  // namespace gc
