// End-to-end simulation tests with fault injection and admission control:
// determinism, metric plumbing, graceful degradation under capacity
// shortfall and the failure-aware policy running over a faulty fleet.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "control/policies.h"
#include "sim/simulation.h"
#include "workload/workload.h"

namespace gc {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

ClusterConfig config8() {
  ClusterConfig config;
  config.max_servers = 8;
  config.mu_max = 10.0;
  config.t_ref_s = 0.5;
  return config;
}

SimResult run(PolicyKind kind, SimulationOptions sim, double rate,
              double horizon, std::uint64_t seed = 3) {
  const ClusterConfig config = config8();
  const Provisioner provisioner(config);
  PolicyOptions popts;
  const auto controller = make_policy(kind, &provisioner, popts);
  Workload workload =
      Workload::poisson_exponential(rate, config.mu_max, horizon, seed);
  ClusterOptions cluster;
  cluster.num_servers = config.max_servers;
  cluster.initial_active = config.max_servers;
  cluster.dispatch_seed = 11;
  sim.t_ref_s = config.t_ref_s;
  return run_simulation(workload, cluster, *controller, sim);
}

TEST(FaultSim, BackgroundFaultsProduceConsistentMetrics) {
  SimulationOptions sim;
  sim.faults.mtbf_s = 300.0;
  sim.faults.mttr_s = 60.0;
  sim.faults.seed = 5;
  const SimResult result = run(PolicyKind::kCombinedDcp, sim, 20.0, 1500.0);
  EXPECT_GT(result.completed_jobs, 10000u);
  EXPECT_GT(result.failures, 0u);
  EXPECT_GT(result.repairs, 0u);
  EXPECT_LE(result.repairs, result.failures);
  EXPECT_GT(result.unavailability, 0.0);
  EXPECT_LT(result.unavailability, 1.0);
  EXPECT_LT(result.mean_available, 8.0);
  // unavailability is defined off mean_available over the same clock.
  EXPECT_NEAR(result.unavailability, 1.0 - result.mean_available / 8.0, 1e-9);
  EXPECT_TRUE(std::isfinite(result.energy.total_j()));
  EXPECT_GT(result.energy.total_j(), 0.0);
}

TEST(FaultSim, IdenticalSpecsAreBitwiseReproducible) {
  SimulationOptions sim;
  sim.faults.mtbf_s = 250.0;
  sim.faults.mttr_s = 50.0;
  sim.faults.boot_hang_prob = 0.3;
  sim.faults.seed = 9;
  sim.admission.enabled = true;
  sim.admission.mu_max = 10.0;
  const SimResult a = run(PolicyKind::kDcpFailureAware, sim, 20.0, 1200.0);
  const SimResult b = run(PolicyKind::kDcpFailureAware, sim, 20.0, 1200.0);
  EXPECT_EQ(a.completed_jobs, b.completed_jobs);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.repairs, b.repairs);
  EXPECT_EQ(a.shed_jobs, b.shed_jobs);
  EXPECT_EQ(a.jobs_lost, b.jobs_lost);
  EXPECT_DOUBLE_EQ(a.mean_response_s, b.mean_response_s);
  EXPECT_DOUBLE_EQ(a.energy.total_j(), b.energy.total_j());
}

TEST(FaultSim, IdleAdmissionControlLeavesTheRunUntouched) {
  // With ample capacity the admit probability stays at 1, no RNG is drawn,
  // and the run is event-for-event identical to admission disabled.
  SimulationOptions plain;
  SimulationOptions gated;
  gated.admission.enabled = true;
  gated.admission.mu_max = 10.0;
  const SimResult a = run(PolicyKind::kNpm, plain, 15.0, 800.0);
  const SimResult b = run(PolicyKind::kNpm, gated, 15.0, 800.0);
  EXPECT_EQ(b.shed_jobs, 0u);
  EXPECT_EQ(a.completed_jobs, b.completed_jobs);
  EXPECT_DOUBLE_EQ(a.mean_response_s, b.mean_response_s);
  EXPECT_DOUBLE_EQ(a.energy.total_j(), b.energy.total_j());
}

TEST(FaultSim, CapacityShortfallShedsAndKeepsAdmittedJobsFast) {
  // Five of eight servers die for good at t=400; the surviving three can
  // serve ~24/s but 30/s keep arriving.  Admission control sheds the excess
  // and the admitted jobs stay within the mean-response guarantee.
  SimulationOptions sim;
  for (std::uint32_t s = 3; s < 8; ++s) {
    sim.faults.script.push_back({400.0, s, kInf});
  }
  sim.admission.enabled = true;
  sim.admission.mu_max = 10.0;
  sim.admission.target_fraction = 0.9;
  const SimResult result = run(PolicyKind::kNpm, sim, 30.0, 1500.0);
  EXPECT_EQ(result.failures, 5u);
  EXPECT_EQ(result.repairs, 0u);
  EXPECT_GT(result.shed_jobs, 0u);
  EXPECT_GT(result.shed_ratio, 0.05);
  EXPECT_LT(result.shed_ratio, 0.6);
  EXPECT_GT(result.unavailability, 0.3);
  // Graceful degradation: the admitted stream still meets T_ref on average.
  EXPECT_LT(result.mean_response_s, 0.5);
  EXPECT_EQ(result.dropped_jobs, 0u);
}

TEST(FaultSim, SheddingBeatsQueueCollapseOnMeanResponse) {
  SimulationOptions shed;
  for (std::uint32_t s = 2; s < 8; ++s) {
    shed.faults.script.push_back({300.0, s, kInf});
  }
  shed.admission.enabled = true;
  shed.admission.mu_max = 10.0;
  SimulationOptions collapse = shed;
  collapse.admission.enabled = false;
  collapse.hard_stop_s = 1400.0;
  // Two survivors vs 30/s offered: without shedding the queue grows without
  // bound; with it, admitted jobs stay orders of magnitude faster.
  const SimResult graceful = run(PolicyKind::kNpm, shed, 30.0, 1200.0);
  const SimResult collapsed = run(PolicyKind::kNpm, collapse, 30.0, 1200.0);
  EXPECT_GT(graceful.shed_jobs, 0u);
  EXPECT_LT(graceful.mean_response_s * 5.0, collapsed.mean_response_s);
}

TEST(FaultSim, FailureAwarePolicyRunsOverFaultyFleet) {
  SimulationOptions sim;
  sim.faults.mtbf_s = 200.0;
  sim.faults.mttr_s = 40.0;
  sim.faults.boot_hang_prob = 0.5;
  sim.faults.seed = 17;
  sim.admission.enabled = true;
  sim.admission.mu_max = 10.0;
  const SimResult result = run(PolicyKind::kDcpFailureAware, sim, 20.0, 1500.0);
  // The fleet is savaged (MTBF 200 s, half the boots hang): most of the
  // offered load is shed, but the run completes and stays consistent.
  EXPECT_GT(result.completed_jobs, 1000u);
  EXPECT_GT(result.shed_jobs, 0u);
  EXPECT_GT(result.failures, 0u);
  EXPECT_GT(result.repairs, 0u);
  // Crashed serving servers hand their jobs to survivors.
  EXPECT_GT(result.jobs_redispatched, 0u);
  EXPECT_TRUE(std::isfinite(result.mean_response_s));
}

TEST(FaultSim, BootHangsSurfaceAsBootTimeouts) {
  SimulationOptions sim;
  sim.faults.mtbf_s = 150.0;
  sim.faults.mttr_s = 20.0;
  sim.faults.boot_hang_prob = 0.8;
  sim.faults.seed = 23;
  sim.admission.enabled = true;
  sim.admission.mu_max = 10.0;
  const SimResult result = run(PolicyKind::kDcpFailureAware, sim, 20.0, 1500.0);
  EXPECT_GT(result.boot_timeouts, 0u);
  EXPECT_GE(result.failures, result.boot_timeouts);
}

TEST(FaultSim, InfeasibleTicksAreCounted) {
  // 8 servers serve at most 8 * (mu - 1/T_ref) = 64/s; offering 90/s makes
  // every solver-driven tick infeasible.
  SimulationOptions sim;
  sim.admission.enabled = true;
  sim.admission.mu_max = 10.0;
  sim.hard_stop_s = 900.0;
  const SimResult overloaded = run(PolicyKind::kCombinedDcp, sim, 90.0, 800.0);
  EXPECT_GT(overloaded.infeasible_ticks, 0u);
  EXPECT_GT(overloaded.infeasible_ratio, 0.5);
  SimulationOptions calm_sim;
  const SimResult calm = run(PolicyKind::kCombinedDcp, calm_sim, 15.0, 800.0);
  EXPECT_EQ(calm.infeasible_ticks, 0u);
  EXPECT_DOUBLE_EQ(calm.infeasible_ratio, 0.0);
}

TEST(FaultSim, TimelineRecordsAvailabilityAndAdmitProbability) {
  SimulationOptions sim;
  for (std::uint32_t s = 3; s < 8; ++s) {
    sim.faults.script.push_back({200.0, s, kInf});
  }
  sim.admission.enabled = true;
  sim.admission.mu_max = 10.0;
  sim.record_interval_s = 50.0;
  const SimResult result = run(PolicyKind::kNpm, sim, 30.0, 800.0);
  ASSERT_FALSE(result.timeline.empty());
  bool saw_degraded = false;
  for (const TimelinePoint& point : result.timeline) {
    EXPECT_LE(point.available, 8u);
    if (point.time > 250.0 && point.available <= 3 &&
        point.admit_probability < 1.0) {
      saw_degraded = true;
    }
  }
  EXPECT_TRUE(saw_degraded);
}

}  // namespace
}  // namespace gc
