#include "exp/runner.h"

#include <gtest/gtest.h>

#include "exp/comparison.h"

namespace gc {
namespace {

RunSpec fast_spec() {
  RunSpec spec;
  spec.config = bench_cluster_config();
  spec.policy_options.dcp = bench_dcp_params();
  spec.seed = 7;
  return spec;
}

Scenario fast_scenario() {
  // A short constant-load slice keeps these tests quick.
  return make_scenario(ScenarioKind::kConstant, bench_cluster_config(), 0.5, 3, 1200.0);
}

TEST(RunSpec, EffectiveSimDefaultsWarmupToTwoLongPeriods) {
  const RunSpec spec = fast_spec();
  const SimulationOptions options = spec.effective_sim_options();
  EXPECT_DOUBLE_EQ(options.warmup_s, 2.0 * spec.policy_options.dcp.long_period_s);
  EXPECT_DOUBLE_EQ(options.t_ref_s, spec.config.t_ref_s);
}

TEST(RunSpec, ExplicitWarmupIsKept) {
  RunSpec spec = fast_spec();
  spec.sim.warmup_s = 123.0;
  EXPECT_DOUBLE_EQ(spec.effective_sim_options().warmup_s, 123.0);
}

TEST(Runner, RunOneCompletesJobs) {
  const SimResult result = run_one(fast_scenario(), fast_spec());
  EXPECT_GT(result.completed_jobs, 10000u);
  EXPECT_EQ(result.dropped_jobs, 0u);
  EXPECT_GT(result.energy.total_j(), 0.0);
}

TEST(Runner, DeterministicForSameSeed) {
  const SimResult a = run_one(fast_scenario(), fast_spec());
  const SimResult b = run_one(fast_scenario(), fast_spec());
  EXPECT_EQ(a.completed_jobs, b.completed_jobs);
  EXPECT_DOUBLE_EQ(a.mean_response_s, b.mean_response_s);
  EXPECT_DOUBLE_EQ(a.energy.total_j(), b.energy.total_j());
}

TEST(Runner, ShardedCellIsShardCountInvariant) {
  // Same contract as run_one's determinism, plus K-independence; the deep
  // byte-level equality lives in tests/test_sharded_determinism.cpp.
  const SimResult a = run_one_sharded(fast_scenario(), fast_spec(), 1);
  const SimResult b = run_one_sharded(fast_scenario(), fast_spec(), 3);
  EXPECT_GT(a.completed_jobs, 10000u);
  EXPECT_EQ(a.completed_jobs, b.completed_jobs);
  EXPECT_DOUBLE_EQ(a.mean_response_s, b.mean_response_s);
  EXPECT_DOUBLE_EQ(a.energy.total_j(), b.energy.total_j());
  // Simulated-world counters agree; execution-descriptive ones
  // (sharded.num_shards, queue growth) legitimately differ with K.
  EXPECT_EQ(a.counters.counter_or("sim.jobs.admitted", 0),
            b.counters.counter_or("sim.jobs.admitted", 0));
  EXPECT_EQ(a.counters.counter_or("sim.events.departure", 0),
            b.counters.counter_or("sim.events.departure", 0));
}

TEST(Runner, SeedChangesResult) {
  RunSpec other = fast_spec();
  other.seed = 8;
  const SimResult a = run_one(fast_scenario(), fast_spec());
  const SimResult b = run_one(fast_scenario(), other);
  EXPECT_NE(a.completed_jobs, b.completed_jobs);
}

TEST(Runner, RunAllMatchesRunOne) {
  std::vector<Cell> cells;
  cells.push_back({fast_scenario(), fast_spec()});
  RunSpec npm = fast_spec();
  npm.policy = PolicyKind::kNpm;
  cells.push_back({fast_scenario(), npm});
  const auto results = run_all(cells);
  ASSERT_EQ(results.size(), 2u);
  const SimResult solo = run_one(fast_scenario(), fast_spec());
  EXPECT_DOUBLE_EQ(results[0].energy.total_j(), solo.energy.total_j());
  // NPM burns more than combined.
  EXPECT_GT(results[1].energy.total_j(), results[0].energy.total_j());
}

TEST(Runner, ReplicationsDifferButAgreeOnAverage) {
  const auto results = run_replicated(fast_scenario(), fast_spec(), 3);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_NE(results[0].completed_jobs, results[1].completed_jobs);
  for (const SimResult& r : results) {
    EXPECT_NEAR(r.mean_response_s, results[0].mean_response_s,
                results[0].mean_response_s * 0.3);
  }
}

TEST(Runner, OraclePolicyRunsViaScenarioProfile) {
  RunSpec spec = fast_spec();
  spec.policy = PolicyKind::kOracle;
  const SimResult oracle = run_one(fast_scenario(), spec);
  EXPECT_GT(oracle.completed_jobs, 10000u);
  EXPECT_TRUE(oracle.sla_met(spec.config.t_ref_s));
}

TEST(Runner, JobSizeOverrideChangesService) {
  RunSpec spec = fast_spec();
  spec.job_size = Distribution::deterministic(1.0 / spec.config.mu_max);
  const SimResult det = run_one(fast_scenario(), spec);
  const SimResult exp_sizes = run_one(fast_scenario(), fast_spec());
  // Deterministic service halves queueing (P-K): strictly better response.
  EXPECT_LT(det.mean_response_s, exp_sizes.mean_response_s);
}

TEST(Comparison, RowsIncludeNpmBaseline) {
  const auto rows = compare_policies(fast_scenario(), fast_spec(),
                                     {PolicyKind::kCombinedDcp});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].policy, PolicyKind::kNpm);
  EXPECT_NEAR(rows[0].savings_vs_npm_pct, 0.0, 1e-9);
  EXPECT_GT(rows[1].savings_vs_npm_pct, 0.0);
}

TEST(Comparison, TableRendersAllRows) {
  const auto rows = compare_policies(fast_scenario(), fast_spec(),
                                     {PolicyKind::kDvfsOnly});
  const TablePrinter table = comparison_table("test", rows);
  EXPECT_EQ(table.num_rows(), rows.size());
  const std::string out = table.to_string();
  EXPECT_NE(out.find("npm"), std::string::npos);
  EXPECT_NE(out.find("dvfs-only"), std::string::npos);
}

}  // namespace
}  // namespace gc
