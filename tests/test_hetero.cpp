#include "core/hetero.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/provisioner.h"

namespace gc {
namespace {

ServerClass make_class(const char* name, unsigned count, double mu,
                       double p_idle = 150.0, double p_max = 250.0) {
  ServerClass sc;
  sc.name = name;
  sc.count = count;
  sc.mu_max = mu;
  sc.power.p_idle_watts = p_idle;
  sc.power.p_max_watts = p_max;
  sc.power.utilization_gated = false;  // the paper's power law
  return sc;
}

HeteroConfig two_class_config() {
  HeteroConfig config;
  config.t_ref_s = 0.5;
  // "new" efficient servers and an "old" power-hungry generation.
  config.classes.push_back(make_class("new", 8, 12.0, 100.0, 200.0));
  config.classes.push_back(make_class("old", 8, 10.0, 180.0, 300.0));
  return config;
}

TEST(HeteroConfig, Validation) {
  HeteroConfig config;
  EXPECT_THROW(config.validate(), std::invalid_argument);  // no classes
  config = two_class_config();
  EXPECT_NO_THROW(config.validate());
  config.t_ref_s = 0.05;  // below 1/mu of the old class
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = two_class_config();
  config.classes[0].count = 0;
  config.classes[1].count = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(HeteroConfig, CapacityAggregates) {
  const HeteroConfig config = two_class_config();
  EXPECT_EQ(config.total_servers(), 16u);
  // new: 8*(12-2)=80; old: 8*(10-2)=64.
  EXPECT_DOUBLE_EQ(config.max_feasible_arrival_rate(), 144.0);
}

TEST(Hetero, SingleClassMatchesHomogeneousSolver) {
  // One class must reproduce Provisioner::solve exactly.
  HeteroConfig hetero_config;
  hetero_config.t_ref_s = 0.5;
  hetero_config.classes.push_back(make_class("only", 16, 10.0));

  ClusterConfig homo_config;
  homo_config.max_servers = 16;
  homo_config.mu_max = 10.0;
  homo_config.t_ref_s = 0.5;
  homo_config.power.utilization_gated = false;
  homo_config.min_servers = 1;

  const HeteroProvisioner hetero(hetero_config);
  const Provisioner homo(homo_config);
  // Start above zero: at lambda == 0 the hetero solver may switch the
  // whole fleet off while the homogeneous one is pinned at min_servers=1.
  for (double lambda = 8.0; lambda <= 128.0; lambda += 8.0) {
    const HeteroOperatingPoint hp = hetero.solve(lambda);
    const OperatingPoint op = homo.solve(lambda);
    ASSERT_TRUE(hp.feasible) << lambda;
    EXPECT_NEAR(hp.power_watts, op.power_watts, 1e-6) << lambda;
    EXPECT_EQ(hp.total_active(), op.servers) << lambda;
  }
}

TEST(Hetero, PrefersEfficientClassAtLowLoad) {
  const HeteroProvisioner solver(two_class_config());
  const HeteroOperatingPoint point = solver.solve(30.0);
  ASSERT_TRUE(point.feasible);
  // All load should sit on the efficient "new" class.
  EXPECT_GT(point.allocations[0].servers, 0u);
  EXPECT_EQ(point.allocations[1].servers, 0u);
  EXPECT_NEAR(point.allocations[0].load, 30.0, 1e-9);
}

TEST(Hetero, SpillsToOldClassAtHighLoad) {
  const HeteroProvisioner solver(two_class_config());
  const HeteroOperatingPoint point = solver.solve(120.0);  // > new capacity 80
  ASSERT_TRUE(point.feasible);
  EXPECT_GT(point.allocations[0].servers, 0u);
  EXPECT_GT(point.allocations[1].servers, 0u);
  EXPECT_NEAR(point.allocations[0].load + point.allocations[1].load, 120.0, 1e-6);
}

TEST(Hetero, EveryAllocationMeetsTheSla) {
  const HeteroProvisioner solver(two_class_config());
  for (double lambda = 4.0; lambda <= 144.0; lambda += 10.0) {
    const HeteroOperatingPoint point = solver.solve(lambda);
    ASSERT_TRUE(point.feasible) << lambda;
    for (const ClassAllocation& alloc : point.allocations) {
      if (alloc.servers == 0) continue;
      EXPECT_LE(alloc.response_time_s, 0.5 * (1.0 + 1e-9)) << lambda;
    }
  }
}

TEST(Hetero, PowerMonotoneInLoad) {
  const HeteroProvisioner solver(two_class_config());
  double prev = -1.0;
  for (double lambda = 0.0; lambda <= 144.0; lambda += 6.0) {
    const HeteroOperatingPoint point = solver.solve(lambda);
    EXPECT_GE(point.power_watts, prev - 1e-9) << lambda;
    prev = point.power_watts;
  }
}

TEST(Hetero, BeatsNaiveHomogeneousTreatment) {
  // Treating the whole fleet as 16 worst-class servers (the operator who
  // ignores heterogeneity) must never beat the hetero-aware optimum.
  const HeteroConfig config = two_class_config();
  const HeteroProvisioner hetero(config);

  ClusterConfig naive;
  naive.max_servers = 16;
  naive.mu_max = 10.0;  // worst-class service rate
  naive.t_ref_s = 0.5;
  naive.power.p_idle_watts = 180.0;  // worst-class power
  naive.power.p_max_watts = 300.0;
  naive.power.utilization_gated = false;
  const Provisioner homo(naive);

  for (double lambda : {10.0, 40.0, 80.0, 120.0}) {
    const HeteroOperatingPoint hp = hetero.solve(lambda);
    const OperatingPoint naive_pt = homo.solve(lambda);
    ASSERT_TRUE(hp.feasible) << lambda;
    if (naive_pt.feasible) {
      EXPECT_LE(hp.power_watts, naive_pt.power_watts + 1e-6) << lambda;
    }
  }
}

TEST(Hetero, InfeasibleLoadReturnsBestEffort) {
  const HeteroProvisioner solver(two_class_config());
  const HeteroOperatingPoint point = solver.solve(1000.0);
  EXPECT_FALSE(point.feasible);
  EXPECT_EQ(point.total_active(), 16u);
}

TEST(Hetero, EvaluateCountsRejectsOverCommit) {
  const HeteroProvisioner solver(two_class_config());
  EXPECT_DEATH((void)solver.evaluate_counts(10.0, {9, 0}), "count > class size");
  EXPECT_DEATH((void)solver.evaluate_counts(10.0, {1}), "counts size");
}

TEST(Hetero, EvaluateCountsInfeasibleWhenUndersized) {
  const HeteroProvisioner solver(two_class_config());
  // 1 new server carries at most 10 jobs/s under the SLA.
  EXPECT_FALSE(solver.evaluate_counts(50.0, {1, 0}).has_value());
  EXPECT_TRUE(solver.evaluate_counts(9.0, {1, 0}).has_value());
}

TEST(Hetero, GreedyMatchesBruteForceOnSmallThreeClassInstances) {
  HeteroConfig config;
  config.t_ref_s = 0.5;
  config.classes.push_back(make_class("a", 4, 12.0, 100.0, 200.0));
  config.classes.push_back(make_class("b", 4, 10.0, 150.0, 250.0));
  config.classes.push_back(make_class("c", 4, 8.0, 60.0, 120.0));
  const HeteroProvisioner solver(config);

  for (double lambda : {5.0, 20.0, 45.0, 70.0, 95.0}) {
    const HeteroOperatingPoint greedy = solver.solve(lambda);
    // Brute force every count vector.
    double best = std::numeric_limits<double>::infinity();
    for (unsigned a = 0; a <= 4; ++a) {
      for (unsigned b = 0; b <= 4; ++b) {
        for (unsigned c = 0; c <= 4; ++c) {
          const auto point = solver.evaluate_counts(lambda, {a, b, c});
          if (point) best = std::min(best, point->power_watts);
        }
      }
    }
    ASSERT_TRUE(greedy.feasible) << lambda;
    ASSERT_TRUE(std::isfinite(best)) << lambda;
    // The greedy descent is a heuristic for >= 3 classes; accept a small
    // optimality gap but fail loudly if it degrades.
    EXPECT_LE(greedy.power_watts, best * 1.05 + 1e-6) << lambda;
    EXPECT_GE(greedy.power_watts, best - 1e-6) << lambda;
  }
}

TEST(Hetero, GatedPowerRoutesToLowestMarginalCostFirst) {
  // With utilization-gated power the split cost is affine in the routed
  // load; the class with the smaller dynamic slope must fill first.
  HeteroConfig config;
  config.t_ref_s = 0.5;
  ServerClass cheap = make_class("cheap", 4, 10.0, 150.0, 200.0);   // dyn 50 W
  ServerClass pricey = make_class("pricey", 4, 10.0, 150.0, 450.0); // dyn 300 W
  cheap.power.utilization_gated = true;
  pricey.power.utilization_gated = true;
  config.classes.push_back(cheap);
  config.classes.push_back(pricey);
  const HeteroProvisioner solver(config);
  // Both classes must be active (load above one class's capacity), so the
  // split choice is visible.
  const auto point = solver.evaluate_counts(50.0, {4, 4});
  ASSERT_TRUE(point.has_value());
  EXPECT_GT(point->allocations[0].load, point->allocations[1].load);
  // The cheap class is filled to capacity (4 * 8 = 32 jobs/s) first.
  EXPECT_NEAR(point->allocations[0].load, 32.0, 1e-6);
  EXPECT_NEAR(point->allocations[1].load, 18.0, 1e-6);
}

TEST(Hetero, ContinuousLadderClassIsRejected) {
  HeteroConfig config;
  config.t_ref_s = 0.5;
  ServerClass sc = make_class("c", 4, 10.0);
  sc.ladder = FrequencyLadder::continuous(0.1);
  config.classes.push_back(sc);
  const HeteroProvisioner solver(config);
  EXPECT_DEATH((void)solver.solve(10.0), "discrete");
}

TEST(Hetero, MixedGatingModelsCoexist) {
  HeteroConfig config;
  config.t_ref_s = 0.5;
  ServerClass gated = make_class("gated", 4, 10.0);
  gated.power.utilization_gated = true;
  config.classes.push_back(gated);
  config.classes.push_back(make_class("ungated", 4, 10.0));
  const HeteroProvisioner solver(config);
  const HeteroOperatingPoint point = solver.solve(40.0);
  ASSERT_TRUE(point.feasible);
  EXPECT_NEAR(point.allocations[0].load + point.allocations[1].load, 40.0, 1e-6);
}

TEST(Hetero, ZeroLoadCanPowerEverythingDown) {
  const HeteroProvisioner solver(two_class_config());
  const HeteroOperatingPoint point = solver.solve(0.0);
  ASSERT_TRUE(point.feasible);
  EXPECT_EQ(point.total_active(), 0u);
  // Only the off draw remains: 16 * 5 W.
  EXPECT_NEAR(point.power_watts, 16.0 * 5.0, 1e-9);
}

// -- per-class wear budgets (solve_wear) -------------------------------------

// Two classes identical in every energy-relevant way, so solve() is
// indifferent between them; only the wear budgets differ — by 10x.  Class 0
// is the short-lived generation (200 cycles), class 1 the durable one
// (2000 cycles).
HeteroConfig twin_class_config() {
  HeteroConfig config;
  config.t_ref_s = 0.5;
  config.classes.push_back(make_class("fragile", 8, 10.0));
  config.classes.push_back(make_class("durable", 8, 10.0));
  return config;
}

ReliabilityOptions twin_budgets(double cycle_cost_j) {
  ReliabilityOptions reliability;
  reliability.class_cycles_to_failure = {200.0, 2000.0};
  reliability.cycle_cost_j = cycle_cost_j;
  return reliability;
}

TEST(HeteroWear, ClassTransitionCostScalesWithBudget) {
  const WearModel wear(twin_budgets(1000.0));
  // The durable class sits at the reference budget and pays the plain
  // per-transition cost; the 10x-tighter class pays 10x.
  EXPECT_DOUBLE_EQ(wear.reference_cycles(), 2000.0);
  EXPECT_DOUBLE_EQ(wear.class_transition_cost_j(1, 2), wear.transition_cost_j(2));
  EXPECT_DOUBLE_EQ(wear.class_transition_cost_j(0, 2),
                   10.0 * wear.transition_cost_j(2));
  // A class index past the table falls back to the (unset) global budget:
  // unscaled cost, never a silent exemption.
  EXPECT_DOUBLE_EQ(wear.class_transition_cost_j(5, 2), wear.transition_cost_j(2));
}

TEST(HeteroWear, ZeroCycleCostReducesToSolve) {
  const HeteroProvisioner solver(twin_class_config());
  const std::vector<unsigned> committed = {4, 4};
  for (double lambda = 10.0; lambda <= 120.0; lambda += 22.0) {
    const HeteroOperatingPoint plain = solver.solve(lambda);
    const HeteroOperatingPoint wear =
        solver.solve_wear(lambda, committed, 100.0, twin_budgets(0.0));
    ASSERT_EQ(plain.feasible, wear.feasible) << lambda;
    EXPECT_NEAR(plain.power_watts, wear.power_watts, 1e-9) << lambda;
    EXPECT_EQ(plain.total_active(), wear.total_active()) << lambda;
  }
}

TEST(HeteroWear, ProhibitiveCostFreezesTheCommittedCounts) {
  const HeteroProvisioner solver(twin_class_config());
  // lambda = 42 needs ceil(42 / 8) = 6 active servers; the committed
  // {4, 4} = 8 can carry it, so with transitions priced at ~infinity the
  // zero-transition point must win over the energy-optimal smaller fleet.
  const HeteroOperatingPoint point =
      solver.solve_wear(42.0, {4, 4}, 100.0, twin_budgets(1e12));
  ASSERT_TRUE(point.feasible);
  EXPECT_EQ(point.allocations[0].servers, 4u);
  EXPECT_EQ(point.allocations[1].servers, 4u);
}

TEST(HeteroWear, GrowthLandsOnTheDurableClass) {
  const HeteroProvisioner solver(twin_class_config());
  // lambda = 90 needs ceil(90 / 8) = 12 active — at least 4 boots beyond
  // the committed {4, 4}.  The classes are energy-identical, so only the
  // budgets break the tie: the durable class must absorb more of the
  // growth than the fragile one.
  const HeteroOperatingPoint point =
      solver.solve_wear(90.0, {4, 4}, 100.0, twin_budgets(2000.0));
  ASSERT_TRUE(point.feasible);
  EXPECT_GE(point.total_active(), 12u);
  EXPECT_GT(point.allocations[1].servers, point.allocations[0].servers);
  // Swapping the budgets mirrors the decision.
  ReliabilityOptions swapped = twin_budgets(2000.0);
  std::swap(swapped.class_cycles_to_failure[0],
            swapped.class_cycles_to_failure[1]);
  const HeteroOperatingPoint mirrored =
      solver.solve_wear(90.0, {4, 4}, 100.0, swapped);
  ASSERT_TRUE(mirrored.feasible);
  EXPECT_GT(mirrored.allocations[0].servers, mirrored.allocations[1].servers);
}

TEST(HeteroWear, ShrinkageSparesTheFragileClass) {
  const HeteroProvisioner solver(twin_class_config());
  // From everything-on, light load wants a much smaller fleet; shutdowns
  // are transitions too, so they should be taken from the durable class.
  const HeteroOperatingPoint point =
      solver.solve_wear(20.0, {8, 8}, 100.0, twin_budgets(2000.0));
  ASSERT_TRUE(point.feasible);
  EXPECT_LT(point.total_active(), 16u);
  EXPECT_GT(point.allocations[0].servers, point.allocations[1].servers);
}

TEST(HeteroWear, StillMeetsTheSlaAndCarriesTheLoad) {
  const HeteroProvisioner solver(twin_class_config());
  const HeteroOperatingPoint point =
      solver.solve_wear(90.0, {4, 4}, 100.0, twin_budgets(2000.0));
  ASSERT_TRUE(point.feasible);
  double carried = 0.0;
  for (const ClassAllocation& alloc : point.allocations) {
    carried += alloc.load;
    if (alloc.load > 0.0) {
      EXPECT_LE(alloc.response_time_s, 0.5 * (1.0 + 1e-9));
    }
  }
  EXPECT_NEAR(carried, 90.0, 1e-6);
}

TEST(HeteroWear, InfeasibleLoadStillDegradesToBestEffort) {
  const HeteroProvisioner solver(twin_class_config());
  const HeteroOperatingPoint point =
      solver.solve_wear(1000.0, {4, 4}, 100.0, twin_budgets(2000.0));
  EXPECT_FALSE(point.feasible);
}

}  // namespace
}  // namespace gc
