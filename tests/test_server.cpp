#include "sim/server.h"

#include <gtest/gtest.h>

namespace gc {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  PowerModel pm_;  // idle 150, max 250, alpha 3, gated

  Job make_job(std::uint64_t id, double arrival, double size) {
    Job job;
    job.id = id;
    job.arrival_time = arrival;
    job.size = size;
    job.remaining = size;
    return job;
  }
};

TEST_F(ServerTest, StartsInRequestedState) {
  const Server on(0, &pm_, 1.0, true, 0.0);
  EXPECT_EQ(on.state(), PowerState::kOn);
  EXPECT_TRUE(on.serving());
  const Server off(1, &pm_, 1.0, false, 0.0);
  EXPECT_EQ(off.state(), PowerState::kOff);
  EXPECT_FALSE(off.serving());
}

TEST_F(ServerTest, ServiceTimingAtFullSpeed) {
  Server server(0, &pm_, 1.0, true, 0.0);
  const auto eta = server.enqueue(0.0, make_job(1, 0.0, 2.0));
  ASSERT_TRUE(eta.has_value());
  EXPECT_DOUBLE_EQ(*eta, 2.0);
  const auto completion = server.complete_current(2.0);
  EXPECT_EQ(completion.finished.id, 1u);
  EXPECT_FALSE(completion.next_eta.has_value());
  EXPECT_FALSE(server.busy());
}

TEST_F(ServerTest, ServiceTimingAtHalfSpeed) {
  Server server(0, &pm_, 0.5, true, 0.0);
  const auto eta = server.enqueue(0.0, make_job(1, 0.0, 2.0));
  ASSERT_TRUE(eta.has_value());
  EXPECT_DOUBLE_EQ(*eta, 4.0);
}

TEST_F(ServerTest, FcfsOrdering) {
  Server server(0, &pm_, 1.0, true, 0.0);
  (void)server.enqueue(0.0, make_job(1, 0.0, 1.0));
  const auto eta2 = server.enqueue(0.1, make_job(2, 0.1, 1.0));
  EXPECT_FALSE(eta2.has_value());  // queued behind job 1
  EXPECT_EQ(server.queue_length(), 2u);
  const auto first = server.complete_current(1.0);
  EXPECT_EQ(first.finished.id, 1u);
  ASSERT_TRUE(first.next_eta.has_value());
  EXPECT_DOUBLE_EQ(*first.next_eta, 2.0);
  const auto second = server.complete_current(2.0);
  EXPECT_EQ(second.finished.id, 2u);
}

TEST_F(ServerTest, SpeedChangeMidServiceRetimesCompletion) {
  Server server(0, &pm_, 1.0, true, 0.0);
  (void)server.enqueue(0.0, make_job(1, 0.0, 4.0));  // ETA 4 at s=1
  // After 2s, half done (2.0 work left).  Slow to 0.5: 2.0/0.5 = 4 more s.
  const auto eta = server.set_speed(2.0, 0.5);
  ASSERT_TRUE(eta.has_value());
  EXPECT_DOUBLE_EQ(*eta, 6.0);
  // Speed back up at t=4 (1.0 work left): 1.0/1.0 = 1 more s.
  const auto eta2 = server.set_speed(4.0, 1.0);
  ASSERT_TRUE(eta2.has_value());
  EXPECT_DOUBLE_EQ(*eta2, 5.0);
  const auto completion = server.complete_current(5.0);
  EXPECT_EQ(completion.finished.id, 1u);
}

TEST_F(ServerTest, SetSpeedWhenIdleReturnsNothing) {
  Server server(0, &pm_, 1.0, true, 0.0);
  EXPECT_FALSE(server.set_speed(1.0, 0.5).has_value());
  EXPECT_DOUBLE_EQ(server.speed(), 0.5);
}

TEST_F(ServerTest, SetSameSpeedIsNoop) {
  Server server(0, &pm_, 0.5, true, 0.0);
  (void)server.enqueue(0.0, make_job(1, 0.0, 1.0));
  EXPECT_FALSE(server.set_speed(0.5, 0.5).has_value());
}

TEST_F(ServerTest, OutstandingWorkTracksProgress) {
  Server server(0, &pm_, 1.0, true, 0.0);
  (void)server.enqueue(0.0, make_job(1, 0.0, 4.0));
  (void)server.enqueue(0.0, make_job(2, 0.0, 3.0));
  EXPECT_DOUBLE_EQ(server.outstanding_work(0.0), 7.0);
  EXPECT_DOUBLE_EQ(server.outstanding_work(1.0), 6.0);
  EXPECT_DOUBLE_EQ(server.outstanding_work(4.0), 3.0);
}

TEST_F(ServerTest, BootLifecycle) {
  Server server(0, &pm_, 1.0, false, 0.0);
  server.start_boot(1.0);
  EXPECT_EQ(server.state(), PowerState::kBooting);
  EXPECT_FALSE(server.serving());
  server.finish_boot(11.0);
  EXPECT_EQ(server.state(), PowerState::kOn);
  EXPECT_TRUE(server.serving());
}

TEST_F(ServerTest, DrainAndShutdownLifecycle) {
  Server server(0, &pm_, 1.0, true, 0.0);
  server.set_draining(1.0, true);
  EXPECT_FALSE(server.serving());
  EXPECT_TRUE(server.draining());
  server.begin_shutdown(2.0);
  EXPECT_EQ(server.state(), PowerState::kShuttingDown);
  server.finish_shutdown(4.0);
  EXPECT_EQ(server.state(), PowerState::kOff);
}

TEST_F(ServerTest, ReviveDrainingServer) {
  Server server(0, &pm_, 1.0, true, 0.0);
  server.set_draining(1.0, true);
  server.set_draining(2.0, false);
  EXPECT_TRUE(server.serving());
}

TEST_F(ServerTest, CannotShutdownWithWork) {
  Server server(0, &pm_, 1.0, true, 0.0);
  (void)server.enqueue(0.0, make_job(1, 0.0, 5.0));
  server.set_draining(1.0, true);
  EXPECT_DEATH(server.begin_shutdown(1.0), "empty");
}

TEST_F(ServerTest, EnqueueOnNonServingServerDies) {
  Server server(0, &pm_, 1.0, false, 0.0);
  EXPECT_DEATH((void)server.enqueue(0.0, make_job(1, 0.0, 1.0)), "not serving");
}

TEST_F(ServerTest, EnergyAccountingScriptedScenario) {
  // t=0..2 idle at s=1; t=2..4 busy at s=1; t=4..6 busy at s=0.5
  // (via speed change at 4 with 1.0 work left); completes at 6.
  Server server(0, &pm_, 1.0, true, 0.0);
  (void)server.enqueue(2.0, make_job(1, 2.0, 3.0));  // ETA 5 at s=1
  const auto eta = server.set_speed(4.0, 0.5);       // 1.0 left -> 2 more s
  ASSERT_TRUE(eta.has_value());
  EXPECT_DOUBLE_EQ(*eta, 6.0);
  (void)server.complete_current(6.0);
  server.flush_energy(6.0);
  const EnergyMeter& meter = server.meter();
  // Idle: 2 s at 150 W.
  EXPECT_DOUBLE_EQ(meter.joules_idle(), 300.0);
  // Busy: 2 s at 250 W (s=1) + 2 s at 150+100*0.125 = 162.5 W.
  EXPECT_DOUBLE_EQ(meter.joules_busy(), 500.0 + 325.0);
  EXPECT_DOUBLE_EQ(meter.joules_off(), 0.0);
}

TEST_F(ServerTest, BootEnergyIsTransition) {
  Server server(0, &pm_, 1.0, false, 0.0);
  server.start_boot(0.0);
  server.finish_boot(10.0);
  server.flush_energy(10.0);
  EXPECT_DOUBLE_EQ(server.meter().joules_transition(), 2500.0);
}

TEST_F(ServerTest, CompletionEtaRequiresBusy) {
  Server server(0, &pm_, 1.0, true, 0.0);
  EXPECT_DEATH((void)server.completion_eta(0.0), "no job");
  EXPECT_DEATH((void)server.complete_current(0.0), "no job");
}

}  // namespace
}  // namespace gc
