// End-to-end behavioural checks: the paper's qualitative claims must hold
// on the simulated cluster (these are the "shape" assertions of
// EXPERIMENTS.md in test form).
#include <gtest/gtest.h>

#include "exp/comparison.h"
#include "exp/runner.h"

namespace gc {
namespace {

RunSpec base_spec() {
  RunSpec spec;
  spec.config = bench_cluster_config();
  spec.policy_options.dcp = bench_dcp_params();
  spec.seed = 11;
  return spec;
}

SimResult run_policy(const Scenario& scenario, PolicyKind policy,
                     RunSpec spec = base_spec()) {
  spec.policy = policy;
  return run_one(scenario, spec);
}

TEST(Integration, CombinedMeetsSlaOnDiurnalDay) {
  const Scenario scenario =
      make_scenario(ScenarioKind::kDiurnal, base_spec().config, 0.7, 21, 3600.0);
  const SimResult result = run_policy(scenario, PolicyKind::kCombinedDcp);
  EXPECT_TRUE(result.sla_met(base_spec().config.t_ref_s))
      << "mean T = " << result.mean_response_s;
  EXPECT_EQ(result.dropped_jobs, 0u);
}

TEST(Integration, EnergyOrderingOnDiurnalDay) {
  // The paper's headline: combined <= min(dvfs-only, vovf-only) <= npm.
  const Scenario scenario =
      make_scenario(ScenarioKind::kDiurnal, base_spec().config, 0.7, 22, 3600.0);
  const SimResult npm = run_policy(scenario, PolicyKind::kNpm);
  const SimResult dvfs = run_policy(scenario, PolicyKind::kDvfsOnly);
  const SimResult vovf = run_policy(scenario, PolicyKind::kVovfOnly);
  const SimResult combined = run_policy(scenario, PolicyKind::kCombinedDcp);

  EXPECT_LT(dvfs.energy.total_j(), npm.energy.total_j());
  EXPECT_LT(vovf.energy.total_j(), npm.energy.total_j());
  // A small tolerance: combined pays boot/transition overhead the
  // steady-state analysis ignores.
  EXPECT_LT(combined.energy.total_j(), dvfs.energy.total_j() * 1.02);
  EXPECT_LT(combined.energy.total_j(), vovf.energy.total_j() * 1.02);
}

TEST(Integration, NpmHasLowestResponseTime) {
  const Scenario scenario =
      make_scenario(ScenarioKind::kDiurnal, base_spec().config, 0.7, 23, 3600.0);
  const SimResult npm = run_policy(scenario, PolicyKind::kNpm);
  const SimResult combined = run_policy(scenario, PolicyKind::kCombinedDcp);
  EXPECT_LT(npm.mean_response_s, combined.mean_response_s);
  // NPM is wildly over-provisioned: far below the guarantee.
  EXPECT_LT(npm.mean_response_s, 0.5 * base_spec().config.t_ref_s);
}

TEST(Integration, CombinedUsesFewerServersAtNight) {
  const Scenario scenario =
      make_scenario(ScenarioKind::kDiurnal, base_spec().config, 0.7, 24, 3600.0);
  RunSpec spec = base_spec();
  spec.policy = PolicyKind::kCombinedDcp;
  spec.sim.record_interval_s = 30.0;
  const SimResult result = run_one(scenario, spec);
  ASSERT_FALSE(result.timeline.empty());
  unsigned min_serving = 1000, max_serving = 0;
  for (const TimelinePoint& p : result.timeline) {
    if (p.time < spec.effective_sim_options().warmup_s) continue;
    min_serving = std::min(min_serving, p.serving);
    max_serving = std::max(max_serving, p.serving);
  }
  EXPECT_LT(min_serving, 6u);   // night: a handful of servers
  EXPECT_GT(max_serving, 10u);  // peak: most of the cluster
}

TEST(Integration, DcpBeatsSinglePeriodUnderSlowBoots) {
  // With long boot delays, the reactive single-period controller misses
  // ramps; DCP's prediction horizon covers the boot delay.
  ClusterConfig config = bench_cluster_config();
  config.transition.boot_delay_s = 60.0;  // very slow boots vs 25 s period
  RunSpec spec = base_spec();
  spec.config = config;
  const Scenario scenario = make_scenario(ScenarioKind::kDiurnal, config, 0.75, 25, 3600.0);
  const SimResult dcp = run_policy(scenario, PolicyKind::kCombinedDcp, spec);
  const SimResult single = run_policy(scenario, PolicyKind::kCombinedSinglePeriod, spec);
  EXPECT_LT(dcp.mean_response_s, single.mean_response_s);
  EXPECT_LE(dcp.job_violation_ratio, single.job_violation_ratio);
}

TEST(Integration, VovfOnlyBeatsDvfsOnlyAtLowLoad) {
  // At low load, idle power dominates: turning servers off wins.
  const Scenario scenario =
      make_scenario(ScenarioKind::kConstant, base_spec().config, 0.15, 26, 2400.0);
  const SimResult dvfs = run_policy(scenario, PolicyKind::kDvfsOnly);
  const SimResult vovf = run_policy(scenario, PolicyKind::kVovfOnly);
  EXPECT_LT(vovf.energy.total_j(), dvfs.energy.total_j());
}

TEST(Integration, SavingsShrinkAsLoadApproachesCapacity) {
  std::vector<double> savings;
  for (const double level : {0.3, 0.6, 0.9}) {
    const Scenario scenario =
        make_scenario(ScenarioKind::kConstant, base_spec().config, level, 27, 1600.0);
    const SimResult npm = run_policy(scenario, PolicyKind::kNpm);
    const SimResult combined = run_policy(scenario, PolicyKind::kCombinedDcp);
    savings.push_back(1.0 - combined.energy.total_j() / npm.energy.total_j());
  }
  EXPECT_GT(savings[0], savings[1]);
  EXPECT_GT(savings[1], savings[2]);
  EXPECT_GT(savings[0], 0.4);  // big savings at 30% load
}

TEST(Integration, FlashCrowdHandledWithoutDrops) {
  const Scenario scenario =
      make_scenario(ScenarioKind::kFlashCrowd, base_spec().config, 0.85, 28, 3600.0);
  const SimResult result = run_policy(scenario, PolicyKind::kCombinedDcp);
  EXPECT_EQ(result.dropped_jobs, 0u);
  // Flash crowds may transiently violate, but the mean must stay sane
  // (within 2x of the guarantee).
  EXPECT_LT(result.mean_response_s, 2.0 * base_spec().config.t_ref_s);
}

TEST(Integration, BootsAreBoundedByHysteresis) {
  const Scenario scenario =
      make_scenario(ScenarioKind::kDiurnal, base_spec().config, 0.7, 29, 3600.0);
  const SimResult result = run_policy(scenario, PolicyKind::kCombinedDcp);
  // A 1-hour compressed day has 144 long periods; churn must be far below
  // one boot per period.
  EXPECT_LT(result.boots, 60u);
}

TEST(Integration, OracleBeatsCausalPredictorsUnderFlashCrowds) {
  const Scenario scenario =
      make_scenario(ScenarioKind::kFlashCrowd, base_spec().config, 0.8, 31, 3600.0);
  const SimResult causal = run_policy(scenario, PolicyKind::kCombinedDcp);
  const SimResult oracle = run_policy(scenario, PolicyKind::kOracle);
  EXPECT_LT(oracle.mean_response_s, causal.mean_response_s);
  EXPECT_LT(oracle.job_violation_ratio, causal.job_violation_ratio);
  EXPECT_TRUE(oracle.sla_met(base_spec().config.t_ref_s));
}

TEST(Integration, ThresholdAutoscalerSavesButLagsCombined) {
  const Scenario scenario =
      make_scenario(ScenarioKind::kDiurnal, base_spec().config, 0.7, 32, 3600.0);
  const SimResult npm = run_policy(scenario, PolicyKind::kNpm);
  const SimResult threshold = run_policy(scenario, PolicyKind::kThreshold);
  const SimResult combined = run_policy(scenario, PolicyKind::kCombinedDcp);
  EXPECT_LT(threshold.energy.total_j(), npm.energy.total_j());
  EXPECT_LT(combined.energy.total_j(), threshold.energy.total_j());
}

// The F15a headline (bench/fig15_control_faults): at heavy command loss on
// the flash-crowd day, fire-and-forget DCP misses a scale-up at a spike
// onset and breaks the SLA, while the ack/retry actuator re-asserts lost
// commands within one short tick and stays near the zero-loss baseline.
TEST(Integration, AckRetryActuationHoldsSlaUnderCommandLoss) {
  const Scenario scenario =
      make_scenario(ScenarioKind::kFlashCrowd, base_spec().config, 0.8);
  RunSpec spec = base_spec();
  spec.seed = 7;
  spec.sim.channel.enabled = true;
  spec.sim.channel.command = {0.25, 0.0, 0.0};
  spec.sim.channel.ack = {0.25, 0.0, 0.0};
  spec.sim.channel.seed = 0xf15cULL;
  spec.sim.actuator.ack_timeout_s = 5.0;

  spec.sim.actuator.enabled = false;
  const SimResult naive = run_policy(scenario, PolicyKind::kCombinedDcp, spec);
  spec.sim.actuator.enabled = true;
  const SimResult retry = run_policy(scenario, PolicyKind::kCombinedDcp, spec);

  EXPECT_FALSE(naive.sla_met(base_spec().config.t_ref_s))
      << "mean T = " << naive.mean_response_s;
  EXPECT_TRUE(retry.sla_met(base_spec().config.t_ref_s))
      << "mean T = " << retry.mean_response_s;
  EXPECT_LT(retry.mean_response_s, naive.mean_response_s);
  EXPECT_EQ(naive.command_retries, 0u);
  EXPECT_GT(retry.command_retries, 0u);
}

// The F15b headline: a controller outage across the morning ramp freezes
// the fleet at its overnight size and the SLA collapses; the watchdog's
// safe mode (all-on at nominal frequency) buys it back for an energy
// premium confined to the outage window.
TEST(Integration, WatchdogSafeModeBuysBackSlaDuringControllerOutage) {
  const Scenario scenario =
      make_scenario(ScenarioKind::kFlashCrowd, base_spec().config, 0.8);
  RunSpec spec = base_spec();
  spec.seed = 7;
  spec.sim.channel.enabled = true;
  spec.sim.channel.seed = 0xf15cULL;
  spec.sim.actuator.enabled = true;
  spec.sim.actuator.ack_timeout_s = 5.0;
  spec.sim.controller_faults.script = {
      {scenario.horizon_s * 0.25, scenario.horizon_s * 0.25}};

  spec.sim.controller_faults.safe_mode = false;
  const SimResult frozen = run_policy(scenario, PolicyKind::kCombinedDcp, spec);
  spec.sim.controller_faults.safe_mode = true;
  const SimResult safe = run_policy(scenario, PolicyKind::kCombinedDcp, spec);

  EXPECT_FALSE(frozen.sla_met(base_spec().config.t_ref_s))
      << "mean T = " << frozen.mean_response_s;
  EXPECT_TRUE(safe.sla_met(base_spec().config.t_ref_s))
      << "mean T = " << safe.mean_response_s;
  EXPECT_GT(safe.energy.total_j(), frozen.energy.total_j());
  EXPECT_GT(safe.safe_mode_time_s, 0.0);
  EXPECT_EQ(frozen.safe_mode_time_s, 0.0);
}

TEST(Integration, MeanSpeedBelowOneForCombined) {
  const Scenario scenario =
      make_scenario(ScenarioKind::kDiurnal, base_spec().config, 0.6, 30, 3600.0);
  const SimResult combined = run_policy(scenario, PolicyKind::kCombinedDcp);
  const SimResult vovf = run_policy(scenario, PolicyKind::kVovfOnly);
  EXPECT_LT(combined.mean_speed, 0.95);
  EXPECT_NEAR(vovf.mean_speed, 1.0, 1e-9);
}

}  // namespace
}  // namespace gc
