// Unit tests for the lossy control-plane channel (sim/control_channel):
// option validation, the draw-only-when-needed determinism contract,
// statistical drop/latency behavior, the SlotStore payload parking lot and
// the controller fail-stop option validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/control_channel.h"

namespace gc {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(ChannelLinkOptions, DefaultIsPerfectAndValid) {
  ChannelLinkOptions link;
  EXPECT_TRUE(link.perfect());
  EXPECT_NO_THROW(link.validate("telemetry"));
}

TEST(ChannelLinkOptions, RejectsDropProbOutOfRange) {
  ChannelLinkOptions link;
  link.drop_prob = -0.1;
  EXPECT_THROW(link.validate("telemetry"), std::invalid_argument);
  // 1.0 severs the link entirely — a broken config, not a degraded one.
  link.drop_prob = 1.0;
  EXPECT_THROW(link.validate("telemetry"), std::invalid_argument);
  link.drop_prob = kNaN;
  EXPECT_THROW(link.validate("telemetry"), std::invalid_argument);
  // Boundary: 0 is fine, and values arbitrarily close to 1 are accepted.
  link.drop_prob = 0.0;
  EXPECT_NO_THROW(link.validate("telemetry"));
  link.drop_prob = 0.999999;
  EXPECT_NO_THROW(link.validate("telemetry"));
}

TEST(ChannelLinkOptions, RejectsBadLatencies) {
  ChannelLinkOptions link;
  link.latency_base_s = -1.0;
  EXPECT_THROW(link.validate("command"), std::invalid_argument);
  link.latency_base_s = kInf;
  EXPECT_THROW(link.validate("command"), std::invalid_argument);
  link.latency_base_s = 0.0;
  link.latency_jitter_s = kNaN;
  EXPECT_THROW(link.validate("command"), std::invalid_argument);
  link.latency_jitter_s = -0.5;
  EXPECT_THROW(link.validate("command"), std::invalid_argument);
}

TEST(ChannelLinkOptions, ErrorMessageNamesTheLink) {
  ChannelLinkOptions link;
  link.drop_prob = 2.0;
  try {
    link.validate("ack");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("ack"), std::string::npos);
  }
}

TEST(ControlChannelOptions, ValidateCascadesToEveryLink) {
  ControlChannelOptions opts;
  EXPECT_NO_THROW(opts.validate());
  opts.ack.drop_prob = 1.5;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
}

TEST(ControlChannel, PerfectChannelDeliversInstantlyRegardlessOfSeed) {
  // Zero-loss/zero-latency links make no RNG draws, so the seed cannot
  // matter: every sample is a synchronous (delay 0) delivery.
  ControlChannelOptions opts;
  opts.enabled = true;
  ControlChannel a(opts, /*derived_seed=*/1);
  ControlChannel b(opts, /*derived_seed=*/999);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.telemetry_delay(), std::optional<double>(0.0));
    EXPECT_EQ(b.telemetry_delay(), std::optional<double>(0.0));
    EXPECT_EQ(a.command_delay(), std::optional<double>(0.0));
    EXPECT_EQ(a.ack_delay(), std::optional<double>(0.0));
  }
  EXPECT_EQ(a.telemetry_counters().sent, 100u);
  EXPECT_EQ(a.telemetry_counters().dropped, 0u);
}

TEST(ControlChannel, SameSeedSameHistory) {
  ControlChannelOptions opts;
  opts.enabled = true;
  opts.telemetry = {0.2, 0.1, 0.3};
  opts.command = {0.1, 0.05, 0.2};
  opts.ack = {0.05, 0.0, 0.1};
  ControlChannel a(opts, 42);
  ControlChannel b(opts, 42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.telemetry_delay(), b.telemetry_delay());
    EXPECT_EQ(a.command_delay(), b.command_delay());
    EXPECT_EQ(a.ack_delay(), b.ack_delay());
  }
}

TEST(ControlChannel, ExplicitSeedOverridesDerivedSeed) {
  ControlChannelOptions opts;
  opts.enabled = true;
  opts.command = {0.5, 0.0, 1.0};
  opts.seed = 7;
  ControlChannel a(opts, /*derived_seed=*/1);
  ControlChannel b(opts, /*derived_seed=*/2);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.command_delay(), b.command_delay());
  }
}

TEST(ControlChannel, LinksDrawFromIndependentStreams) {
  // Consuming one link's stream must not shift another's: interleaving
  // telemetry draws between command draws leaves the command history
  // unchanged.
  ControlChannelOptions opts;
  opts.enabled = true;
  opts.telemetry = {0.3, 0.0, 0.5};
  opts.command = {0.3, 0.0, 0.5};
  ControlChannel plain(opts, 42);
  ControlChannel interleaved(opts, 42);
  std::vector<std::optional<double>> expected;
  for (int i = 0; i < 500; ++i) expected.push_back(plain.command_delay());
  for (int i = 0; i < 500; ++i) {
    (void)interleaved.telemetry_delay();
    EXPECT_EQ(interleaved.command_delay(), expected[static_cast<std::size_t>(i)]);
  }
}

TEST(ControlChannel, DropRateMatchesConfiguredProbability) {
  ControlChannelOptions opts;
  opts.enabled = true;
  opts.telemetry.drop_prob = 0.25;
  ControlChannel chan(opts, 1234);
  const int n = 20000;
  for (int i = 0; i < n; ++i) (void)chan.telemetry_delay();
  EXPECT_EQ(chan.telemetry_counters().sent, static_cast<std::uint64_t>(n));
  const double rate =
      static_cast<double>(chan.telemetry_counters().dropped) / n;
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(ControlChannel, DeliveredDelayStaysInJitterWindow) {
  ControlChannelOptions opts;
  opts.enabled = true;
  opts.command = {0.0, 0.5, 0.25};
  ControlChannel chan(opts, 99);
  double lo = kInf;
  double hi = -kInf;
  for (int i = 0; i < 5000; ++i) {
    const std::optional<double> d = chan.command_delay();
    ASSERT_TRUE(d.has_value());
    lo = std::min(lo, *d);
    hi = std::max(hi, *d);
    EXPECT_GE(*d, 0.5);
    EXPECT_LT(*d, 0.75);
  }
  // The jitter actually spreads across the window (reordering is possible).
  EXPECT_LT(lo, 0.55);
  EXPECT_GT(hi, 0.70);
}

TEST(ControlChannel, ConstructorValidates) {
  ControlChannelOptions opts;
  opts.telemetry.drop_prob = 1.0;
  EXPECT_THROW(ControlChannel(opts, 1), std::invalid_argument);
}

TEST(SlotStore, RoundTripsPayloads) {
  SlotStore<int> store;
  const std::uint32_t a = store.put(10);
  const std::uint32_t b = store.put(20);
  EXPECT_NE(a, b);
  EXPECT_EQ(store.in_flight(), 2u);
  EXPECT_EQ(store.take(b), 20);
  EXPECT_EQ(store.take(a), 10);
  EXPECT_EQ(store.in_flight(), 0u);
}

TEST(SlotStore, RecyclesFreedSlots) {
  SlotStore<double> store;
  const std::uint32_t a = store.put(1.0);
  EXPECT_EQ(store.take(a), 1.0);
  // The freed slot is reused before the store grows.
  const std::uint32_t b = store.put(2.0);
  EXPECT_EQ(b, a);
  const std::uint32_t c = store.put(3.0);
  EXPECT_NE(c, b);
  EXPECT_EQ(store.take(b), 2.0);
  EXPECT_EQ(store.take(c), 3.0);
  EXPECT_EQ(store.in_flight(), 0u);
}

TEST(SlotStore, SurvivesManyChurnCycles) {
  SlotStore<std::uint64_t> store;
  std::vector<std::uint32_t> live;
  for (std::uint64_t round = 0; round < 100; ++round) {
    for (std::uint64_t i = 0; i < 8; ++i) {
      live.push_back(store.put(round * 8 + i));
    }
    for (std::uint64_t i = 0; i < 8; ++i) {
      const std::uint32_t slot = live[live.size() - 8 + i];
      EXPECT_EQ(store.take(slot), round * 8 + i);
    }
    live.resize(live.size() - 8);
  }
  EXPECT_EQ(store.in_flight(), 0u);
}

TEST(ControllerFaultOptions, DefaultIsDisabledAndValid) {
  ControllerFaultOptions cf;
  EXPECT_FALSE(cf.enabled());
  EXPECT_NO_THROW(cf.validate());
}

TEST(ControllerFaultOptions, ScriptOrMtbfEnables) {
  ControllerFaultOptions cf;
  cf.script.push_back({100.0, 50.0});
  EXPECT_TRUE(cf.enabled());
  cf.script.clear();
  cf.mtbf_s = 3600.0;
  EXPECT_TRUE(cf.enabled());
}

TEST(ControllerFaultOptions, RejectsBadOutages) {
  ControllerFaultOptions cf;
  cf.script.push_back({-1.0, 10.0});
  EXPECT_THROW(cf.validate(), std::invalid_argument);
  cf.script = {{100.0, 0.0}};
  EXPECT_THROW(cf.validate(), std::invalid_argument);
  cf.script = {{100.0, kInf}};
  EXPECT_THROW(cf.validate(), std::invalid_argument);
  cf.script = {{kNaN, 10.0}};
  EXPECT_THROW(cf.validate(), std::invalid_argument);
}

TEST(ControllerFaultOptions, RejectsBadRandomProcess) {
  ControllerFaultOptions cf;
  cf.mtbf_s = -1.0;
  EXPECT_THROW(cf.validate(), std::invalid_argument);
  cf.mtbf_s = 3600.0;
  cf.mttr_s = 0.0;
  EXPECT_THROW(cf.validate(), std::invalid_argument);
  cf.mttr_s = kInf;
  EXPECT_THROW(cf.validate(), std::invalid_argument);
  cf.mttr_s = 60.0;
  EXPECT_NO_THROW(cf.validate());
  // mttr is irrelevant (and unchecked) when the random process is off.
  cf.mtbf_s = 0.0;
  cf.mttr_s = 0.0;
  EXPECT_NO_THROW(cf.validate());
}

TEST(ControllerFaultOptions, RejectsZeroWatchdogTicks) {
  ControllerFaultOptions cf;
  cf.watchdog_ticks = 0;
  EXPECT_THROW(cf.validate(), std::invalid_argument);
  cf.watchdog_ticks = 1;
  EXPECT_NO_THROW(cf.validate());
}

}  // namespace
}  // namespace gc
