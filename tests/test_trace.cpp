#include "workload/trace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string>

namespace gc {
namespace {

TEST(Trace, RejectsUnsortedOrNegative) {
  EXPECT_THROW(Trace({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Trace({-0.5, 1.0}), std::invalid_argument);
}

TEST(Trace, RejectsNonFiniteTimestamps) {
  // NaN slips past ordering comparisons, so it needs its own check.
  EXPECT_THROW(Trace({0.0, std::nan(""), 2.0}), std::invalid_argument);
  EXPECT_THROW(Trace({std::numeric_limits<double>::infinity()}),
               std::invalid_argument);
  try {
    Trace({0.0, 1.0, std::nan("")});
    FAIL() << "expected a throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("#2"), std::string::npos);
  }
}

TEST(Trace, LoadCsvRejectsNaN) {
  const auto path = std::filesystem::temp_directory_path() / "gc_trace_nan.csv";
  {
    std::ofstream out(path);
    out << "arrival_s\n1.0\nnan\n3.0\n";
  }
  try {
    (void)Trace::load_csv(path);
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("row 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("arrival_s"), std::string::npos);
  }
  std::filesystem::remove(path);
}

TEST(Trace, LoadCsvRejectsNegativeArrivals) {
  const auto path = std::filesystem::temp_directory_path() / "gc_trace_neg.csv";
  {
    std::ofstream out(path);
    out << "arrival_s\n1.0\n-2.5\n";
  }
  EXPECT_THROW((void)Trace::load_csv(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Trace, MeanRate) {
  const Trace trace({0.0, 1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(trace.duration(), 4.0);
  EXPECT_DOUBLE_EQ(trace.mean_rate(), 5.0 / 4.0);
}

TEST(Trace, EmptyTrace) {
  const Trace trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_DOUBLE_EQ(trace.duration(), 0.0);
  EXPECT_DOUBLE_EQ(trace.mean_rate(), 0.0);
}

TEST(Trace, FromProfileApproximatesRate) {
  const ConstantRate profile(25.0);
  const Trace trace = Trace::from_profile(profile, 4000.0, 33);
  EXPECT_NEAR(trace.mean_rate(), 25.0, 1.0);
}

TEST(Trace, FromProfileDeterministicInSeed) {
  const ConstantRate profile(5.0);
  const Trace a = Trace::from_profile(profile, 100.0, 1);
  const Trace b = Trace::from_profile(profile, 100.0, 1);
  EXPECT_EQ(a.timestamps(), b.timestamps());
  const Trace c = Trace::from_profile(profile, 100.0, 2);
  EXPECT_NE(a.timestamps(), c.timestamps());
}

TEST(Trace, CsvRoundTrip) {
  const Trace trace({0.25, 1.5, 2.75});
  const auto path = std::filesystem::temp_directory_path() / "gc_trace_test.csv";
  trace.save_csv(path);
  const Trace loaded = Trace::load_csv(path);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_NEAR(loaded.timestamps()[1], 1.5, 1e-9);
  std::filesystem::remove(path);
}

TEST(Trace, LoadCsvRequiresColumn) {
  const auto path = std::filesystem::temp_directory_path() / "gc_trace_bad.csv";
  {
    std::ofstream out(path);
    out << "wrong_column\n1.0\n";
  }
  EXPECT_THROW(Trace::load_csv(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Trace, ToRateProfileRecoversConstantRate) {
  const ConstantRate profile(40.0);
  const Trace trace = Trace::from_profile(profile, 2000.0, 11);
  const auto empirical = trace.to_rate_profile(100.0);
  // Mid-trace the empirical rate should track 40/s.
  EXPECT_NEAR(empirical->rate(1000.0), 40.0, 4.0);
}

TEST(Trace, ToRateProfileTracksShape) {
  const SinusoidalRate profile(50.0, 40.0, 2000.0);
  const Trace trace = Trace::from_profile(profile, 2000.0, 13);
  const auto empirical = trace.to_rate_profile(100.0);
  // Peak (t=500) should be clearly above trough (t=1500).
  EXPECT_GT(empirical->rate(500.0), empirical->rate(1500.0) + 20.0);
}

TEST(Trace, ToRateProfileValidatesBin) {
  const Trace trace({1.0});
  EXPECT_DEATH((void)trace.to_rate_profile(0.0), "bin");
}

TEST(Trace, SingleArrivalProfileIsFlat) {
  const Trace trace({5.0});
  const auto profile = trace.to_rate_profile(10.0);
  EXPECT_GE(profile->rate(0.0), 0.0);
}

}  // namespace
}  // namespace gc
