// End-to-end simulation tests for the degraded control plane: channel
// loss/latency plumbing, ack/retry actuation over a lossy channel,
// stale-telemetry handling, watchdog safe-mode failover during controller
// outages, era gating of stale in-flight commands, and determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "control/policies.h"
#include "obs/audit.h"
#include "sim/simulation.h"
#include "workload/workload.h"

namespace gc {
namespace {

ClusterConfig config8() {
  ClusterConfig config;
  config.max_servers = 8;
  config.mu_max = 10.0;
  config.t_ref_s = 0.5;
  return config;
}

SimResult run(PolicyKind kind, SimulationOptions sim, double rate,
              double horizon, PolicyOptions popts = {},
              DecisionAuditLog* audit = nullptr) {
  const ClusterConfig config = config8();
  const Provisioner provisioner(config);
  const auto controller = make_policy(kind, &provisioner, popts);
  Workload workload =
      Workload::poisson_exponential(rate, config.mu_max, horizon, /*seed=*/3);
  ClusterOptions cluster;
  cluster.num_servers = config.max_servers;
  cluster.initial_active = config.max_servers;
  cluster.dispatch_seed = 11;
  sim.t_ref_s = config.t_ref_s;
  sim.audit = audit;
  return run_simulation(workload, cluster, *controller, sim);
}

TEST(ControlSim, PerfectChannelMatchesLegacyPathUnderFaults) {
  // Channel + actuator enabled at zero loss/latency reproduce the direct
  // path event-for-event, even with data-plane faults and admission in the
  // mix — the full draw-only-when-needed contract.
  SimulationOptions plain;
  plain.faults.mtbf_s = 300.0;
  plain.faults.mttr_s = 60.0;
  plain.faults.seed = 5;
  plain.admission.enabled = true;
  plain.admission.mu_max = 10.0;
  SimulationOptions channeled = plain;
  channeled.channel.enabled = true;
  channeled.actuator.enabled = true;
  const SimResult a = run(PolicyKind::kCombinedDcp, plain, 20.0, 1500.0);
  const SimResult b = run(PolicyKind::kCombinedDcp, channeled, 20.0, 1500.0);
  EXPECT_EQ(a.completed_jobs, b.completed_jobs);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.shed_jobs, b.shed_jobs);
  EXPECT_DOUBLE_EQ(a.mean_response_s, b.mean_response_s);
  EXPECT_DOUBLE_EQ(a.energy.total_j(), b.energy.total_j());
  EXPECT_EQ(b.command_retries, 0u);
  EXPECT_EQ(b.commands_dropped, 0u);
  EXPECT_EQ(b.telemetry_dropped, 0u);
}

TEST(ControlSim, LossyChannelDropsAndRetriesAreAccounted) {
  SimulationOptions sim;
  sim.channel.enabled = true;
  sim.channel.telemetry = {0.2, 0.1, 0.5};
  sim.channel.command = {0.2, 0.1, 0.5};
  sim.channel.ack = {0.2, 0.1, 0.5};
  sim.actuator.enabled = true;
  sim.actuator.ack_timeout_s = 5.0;
  const SimResult result = run(PolicyKind::kCombinedDcp, sim, 20.0, 2000.0);
  EXPECT_GT(result.completed_jobs, 10000u);
  EXPECT_GT(result.telemetry_dropped, 0u);
  EXPECT_GT(result.commands_dropped, 0u);
  EXPECT_GT(result.acks_dropped, 0u);
  // A dropped command (or dropped ack) must eventually retransmit.
  EXPECT_GT(result.command_retries, 0u);
  // Retransmits of applied commands surface as fleet-side duplicates.
  EXPECT_GT(result.command_duplicates, 0u);
  EXPECT_GT(result.counters.counter_or("act.acked", 0), 0u);
  EXPECT_GT(result.counters.counter_or("chan.command.sent", 0),
            result.commands_dropped);
  EXPECT_TRUE(std::isfinite(result.mean_response_s));
}

TEST(ControlSim, LossyRunsAreBitwiseReproducible) {
  SimulationOptions sim;
  sim.channel.enabled = true;
  sim.channel.telemetry = {0.1, 0.2, 0.3};
  sim.channel.command = {0.1, 0.2, 0.3};
  sim.channel.ack = {0.1, 0.2, 0.3};
  sim.actuator.enabled = true;
  sim.controller_faults.mtbf_s = 600.0;
  sim.controller_faults.mttr_s = 90.0;
  const SimResult a = run(PolicyKind::kCombinedDcp, sim, 20.0, 1500.0);
  const SimResult b = run(PolicyKind::kCombinedDcp, sim, 20.0, 1500.0);
  EXPECT_EQ(a.completed_jobs, b.completed_jobs);
  EXPECT_EQ(a.telemetry_dropped, b.telemetry_dropped);
  EXPECT_EQ(a.command_retries, b.command_retries);
  EXPECT_EQ(a.ticks_missed, b.ticks_missed);
  EXPECT_EQ(a.safe_mode_entries, b.safe_mode_entries);
  EXPECT_DOUBLE_EQ(a.safe_mode_time_s, b.safe_mode_time_s);
  EXPECT_DOUBLE_EQ(a.mean_response_s, b.mean_response_s);
  EXPECT_DOUBLE_EQ(a.energy.total_j(), b.energy.total_j());
}

TEST(ControlSim, ChannelSeedVariesTheLossHistory) {
  SimulationOptions sim;
  sim.channel.enabled = true;
  sim.channel.command = {0.3, 0.0, 0.0};
  sim.actuator.enabled = true;
  SimulationOptions reseeded = sim;
  reseeded.channel.seed = 777;
  const SimResult a = run(PolicyKind::kCombinedDcp, sim, 20.0, 1500.0);
  const SimResult b = run(PolicyKind::kCombinedDcp, reseeded, 20.0, 1500.0);
  EXPECT_NE(a.commands_dropped, b.commands_dropped);
}

TEST(ControlSim, LatentTelemetryAgesTheControllerView) {
  // With a 10 s telemetry delay every control tick plans on an old sample;
  // the audit trail records the age the policy actually saw.
  SimulationOptions sim;
  sim.channel.enabled = true;
  sim.channel.telemetry = {0.0, 10.0, 0.0};
  DecisionAuditLog audit;
  const SimResult result =
      run(PolicyKind::kCombinedDcp, sim, 20.0, 1200.0, {}, &audit);
  EXPECT_GT(result.completed_jobs, 10000u);
  ASSERT_FALSE(audit.empty());
  bool saw_aged = false;
  for (const AuditRecord& r : audit.records()) {
    EXPECT_GE(r.obs_age_s, 0.0);
    if (r.obs_age_s >= 10.0) saw_aged = true;
  }
  EXPECT_TRUE(saw_aged);
}

TEST(ControlSim, StalenessGuardKeepsPolicyFunctionalUnderTelemetryBlackout) {
  // 90% telemetry loss with multi-minute latency: most ticks plan on stale
  // observations.  The staleness guard holds the last good estimate and
  // widens the margin instead of chasing a dead sample.
  SimulationOptions sim;
  sim.channel.enabled = true;
  sim.channel.telemetry = {0.9, 30.0, 60.0};
  PolicyOptions popts;
  popts.staleness.horizon_s = 45.0;
  popts.staleness.margin_widen = 1.5;
  DecisionAuditLog audit;
  const SimResult result =
      run(PolicyKind::kCombinedDcp, sim, 20.0, 2000.0, popts, &audit);
  EXPECT_GT(result.completed_jobs, 10000u);
  EXPECT_GT(result.telemetry_dropped, 0u);
  EXPECT_TRUE(std::isfinite(result.mean_response_s));
  // The widened margin is visible in the audited planning state.
  bool saw_widened = false;
  for (const AuditRecord& r : audit.records()) {
    if (r.obs_age_s > 45.0 && r.safety_margin > 1.4) saw_widened = true;
  }
  EXPECT_TRUE(saw_widened);
}

TEST(ControlSim, ScriptedOutageTripsWatchdogIntoSafeMode) {
  // Controller dark from t=400 to t=700.  With 30 s short ticks the
  // watchdog (3 misses) trips around t=480; safe mode turns everything on
  // at nominal frequency, so service continues at full capacity.
  SimulationOptions sim;
  sim.channel.enabled = true;
  sim.actuator.enabled = true;
  sim.controller_faults.script = {{400.0, 300.0}};
  const SimResult result = run(PolicyKind::kCombinedDcp, sim, 20.0, 1500.0);
  EXPECT_EQ(result.safe_mode_entries, 1u);
  EXPECT_GE(result.ticks_missed, 3u);
  EXPECT_GT(result.safe_mode_time_s, 100.0);
  EXPECT_LT(result.safe_mode_time_s, 600.0);
  EXPECT_GT(result.completed_jobs, 10000u);
  EXPECT_EQ(result.dropped_jobs, 0u);
  EXPECT_TRUE(std::isfinite(result.mean_response_s));
  EXPECT_EQ(result.counters.counter_or("control.safe_mode_entries", 0), 1u);
  EXPECT_EQ(result.counters.counter_or("control.ticks_missed", 0),
            result.ticks_missed);
}

TEST(ControlSim, SafeModeOffOnlyCounts) {
  SimulationOptions sim;
  sim.controller_faults.script = {{400.0, 300.0}};
  sim.controller_faults.safe_mode = false;
  const SimResult result = run(PolicyKind::kCombinedDcp, sim, 20.0, 1500.0);
  EXPECT_GE(result.ticks_missed, 3u);
  EXPECT_EQ(result.safe_mode_entries, 0u);
  EXPECT_DOUBLE_EQ(result.safe_mode_time_s, 0.0);
  EXPECT_GT(result.completed_jobs, 10000u);
}

TEST(ControlSim, StaleEraCommandsAreRejectedDuringSafeMode) {
  // A 100 s command latency puts every pre-outage command in flight long
  // enough to land after the watchdog trips (~t=480); those carry the dead
  // incarnation's era and must be rejected, not applied.  The first
  // post-recovery command (fresh era) ends safe mode.
  SimulationOptions sim;
  sim.channel.enabled = true;
  sim.channel.command = {0.0, 100.0, 0.0};
  sim.actuator.enabled = true;
  sim.actuator.ack_timeout_s = 500.0;  // quiet retries; isolate era gating
  sim.controller_faults.script = {{400.0, 300.0}};
  const SimResult result = run(PolicyKind::kCombinedDcp, sim, 20.0, 1500.0);
  EXPECT_EQ(result.safe_mode_entries, 1u);
  EXPECT_GT(result.counters.counter_or("act.rejected_era", 0), 0u);
  // Recovery at t=700, first tick ~720, delivery ~820: safe mode ends well
  // before the horizon.
  EXPECT_LT(result.safe_mode_time_s, 500.0);
  EXPECT_GT(result.completed_jobs, 10000u);
}

TEST(ControlSim, RandomControllerOutagesRecoverRepeatedly) {
  SimulationOptions sim;
  sim.controller_faults.mtbf_s = 300.0;
  sim.controller_faults.mttr_s = 120.0;
  sim.controller_faults.seed = 21;
  const SimResult result = run(PolicyKind::kCombinedDcp, sim, 20.0, 3000.0);
  EXPECT_GT(result.ticks_missed, 0u);
  EXPECT_GE(result.safe_mode_entries, 2u);
  EXPECT_GT(result.safe_mode_time_s, 0.0);
  EXPECT_GT(result.completed_jobs, 20000u);
  EXPECT_TRUE(std::isfinite(result.mean_response_s));
}

TEST(ControlSim, InvalidOptionsThrowBeforeTheRunStarts) {
  {
    SimulationOptions sim;
    sim.channel.command.drop_prob = 1.0;  // severed link
    EXPECT_THROW(run(PolicyKind::kCombinedDcp, sim, 10.0, 100.0),
                 std::invalid_argument);
  }
  {
    SimulationOptions sim;
    sim.actuator.enabled = true;
    sim.actuator.retry_budget = 0;
    EXPECT_THROW(run(PolicyKind::kCombinedDcp, sim, 10.0, 100.0),
                 std::invalid_argument);
  }
  {
    SimulationOptions sim;
    sim.controller_faults.watchdog_ticks = 0;
    EXPECT_THROW(run(PolicyKind::kCombinedDcp, sim, 10.0, 100.0),
                 std::invalid_argument);
  }
  {
    SimulationOptions sim;
    sim.controller_faults.script = {{100.0, -5.0}};
    EXPECT_THROW(run(PolicyKind::kCombinedDcp, sim, 10.0, 100.0),
                 std::invalid_argument);
  }
}

}  // namespace
}  // namespace gc
