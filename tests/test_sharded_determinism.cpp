// K-invariance property tests for the sharded simulation core
// (sim/sharded.h, DESIGN.md §11).
//
// The contract under test: run_sharded_simulation's output is a pure
// function of its inputs and *independent of the shard count* — the same
// configuration at K ∈ {1, 2, 4, 7} must produce bit-identical SimResult
// checksums, byte-identical time-series CSVs and byte-identical audit
// JSONL.  Two sharded goldens (K = 1 and K = 4 on the fig5-style diurnal
// configuration) are pinned so cross-K agreement cannot drift silently as
// a group, and the sequential engine's lossy-channel golden is re-asserted
// to prove the sharded work left run_simulation untouched.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "control/policies.h"
#include "exp/scenario.h"
#include "obs/audit.h"
#include "obs/timeseries.h"
#include "sim/sharded.h"
#include "sim/simulation.h"
#include "workload/trace.h"
#include "workload/workload.h"

namespace gc {
namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0x100000001b3ULL;
  return h;
}

std::uint64_t mix(std::uint64_t h, double v) {
  return mix(h, std::bit_cast<std::uint64_t>(v));
}

// Same shape as the sequential golden checksum (tests/
// test_determinism_golden.cpp): every scalar plus the timeline, not the
// counters snapshot.
std::uint64_t checksum(const SimResult& r) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = mix(h, r.completed_jobs);
  h = mix(h, r.dropped_jobs);
  h = mix(h, r.shed_jobs);
  h = mix(h, r.failures);
  h = mix(h, r.repairs);
  h = mix(h, r.boot_timeouts);
  h = mix(h, r.jobs_redispatched);
  h = mix(h, r.jobs_lost);
  h = mix(h, r.sim_time_s);
  h = mix(h, r.mean_response_s);
  h = mix(h, r.p95_response_s);
  h = mix(h, r.p99_response_s);
  h = mix(h, r.max_response_s);
  h = mix(h, r.job_violation_ratio);
  h = mix(h, r.window_violation_ratio);
  h = mix(h, r.energy.busy_j);
  h = mix(h, r.energy.idle_j);
  h = mix(h, r.energy.transition_j);
  h = mix(h, r.energy.off_j);
  h = mix(h, r.mean_power_w);
  h = mix(h, r.boots);
  h = mix(h, r.shutdowns);
  h = mix(h, r.mean_serving);
  h = mix(h, r.mean_speed);
  h = mix(h, r.mean_jobs_in_system);
  h = mix(h, r.mean_available);
  h = mix(h, r.unavailability);
  h = mix(h, r.shed_ratio);
  h = mix(h, r.infeasible_ticks);
  h = mix(h, r.infeasible_ratio);
  for (const TimelinePoint& p : r.timeline) {
    h = mix(h, p.time);
    h = mix(h, p.arrival_rate);
    h = mix(h, static_cast<std::uint64_t>(p.serving));
    h = mix(h, static_cast<std::uint64_t>(p.powered));
    h = mix(h, static_cast<std::uint64_t>(p.available));
    h = mix(h, p.speed);
    h = mix(h, p.power_watts);
    h = mix(h, p.jobs_in_system);
    h = mix(h, p.window_mean_response_s);
    h = mix(h, p.admit_probability);
  }
  return h;
}

constexpr unsigned kShardCounts[] = {1, 2, 4, 7};

// Fixed-seed sharded configuration: the bench cluster driven by the
// combined DCP policy over a concrete arrival trace sampled once from a
// scenario profile (every K replays the *same* arrivals).
struct ShardedRun {
  ClusterConfig config = bench_cluster_config();
  PolicyOptions popts;
  Scenario scenario;
  SimulationOptions extra;
  std::uint64_t workload_seed = 97;

  ShardedRun() {
    popts.dcp = bench_dcp_params();
    scenario = make_scenario(ScenarioKind::kDiurnal, config, /*level=*/0.7,
                             /*seed=*/1234, /*day_s=*/2400.0);
  }

  [[nodiscard]] SimResult run(unsigned num_shards, DecisionAuditLog* audit,
                              TimeSeriesRecorder* timeseries) const {
    const Trace trace =
        Trace::from_profile(*scenario.profile, scenario.horizon_s, workload_seed);
    const Distribution job_size = Distribution::exponential(config.mu_max);
    const Provisioner solver(config);
    const auto controller = make_policy(PolicyKind::kCombinedDcp, &solver, popts);
    ClusterOptions cluster;
    cluster.num_servers = config.max_servers;
    cluster.power = config.power;
    cluster.transition = config.transition;
    cluster.initial_active = config.max_servers;
    cluster.dispatch_seed = 4242;
    SimulationOptions sim = extra;
    sim.t_ref_s = config.t_ref_s;
    sim.warmup_s = popts.dcp.long_period_s;
    sim.record_interval_s = 120.0;
    sim.audit = audit;
    sim.timeseries = timeseries;
    ShardedOptions sharded;
    sharded.num_shards = num_shards;
    return run_sharded_simulation(trace, job_size, workload_seed, cluster,
                                  *controller, sim, sharded);
  }
};

// The fig8-style degraded configuration: scripted + background faults,
// boot hangs, admission control and a lossy, latent control channel with
// the ack/retry actuator.  (No controller outages — those are
// sequential-only and rejected by the sharded engine.)
ShardedRun make_degraded_run() {
  ShardedRun r;
  r.extra.faults.script = {{600.0, 0, 900.0},
                           {600.0, 1, 900.0},
                           {601.0, 2, 1200.0},
                           {1200.0, 3, std::numeric_limits<double>::infinity()}};
  r.extra.faults.mtbf_s = 20000.0;
  r.extra.faults.mttr_s = 300.0;
  r.extra.faults.boot_hang_prob = 0.05;
  r.extra.faults.seed = 99;
  r.extra.admission.enabled = true;
  r.extra.admission.mu_max = r.config.mu_max;
  r.extra.channel.enabled = true;
  r.extra.channel.telemetry = {/*drop_prob=*/0.05, /*latency_base_s=*/0.05,
                               /*latency_jitter_s=*/0.1};
  r.extra.channel.command = {/*drop_prob=*/0.05, /*latency_base_s=*/0.05,
                             /*latency_jitter_s=*/0.1};
  r.extra.channel.ack = {/*drop_prob=*/0.05, /*latency_base_s=*/0.05,
                         /*latency_jitter_s=*/0.1};
  r.extra.actuator.enabled = true;
  r.extra.actuator.ack_timeout_s = 2.0;
  r.popts.staleness.horizon_s = 60.0;
  return r;
}

[[nodiscard]] std::string csv_bytes(const TimeSeriesRecorder& ts,
                                    const std::string& tag) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("gc_sharded_determinism_" + tag + ".csv");
  ts.write_csv(path);
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::filesystem::remove(path);
  return buffer.str();
}

struct RunArtifacts {
  std::uint64_t sum = 0;
  std::string audit_jsonl;
  std::string ts_csv;
  SimResult result;
};

[[nodiscard]] RunArtifacts run_with_sinks(const ShardedRun& spec, unsigned k,
                                          const std::string& tag) {
  DecisionAuditLog audit;
  TimeSeriesRecorder timeseries;
  RunArtifacts out;
  out.result = spec.run(k, &audit, &timeseries);
  out.sum = checksum(out.result);
  out.audit_jsonl = audit.to_jsonl();
  out.ts_csv = csv_bytes(timeseries, tag + "_k" + std::to_string(k));
  return out;
}

// -- cross-K invariance ------------------------------------------------------

TEST(ShardedDeterminism, DiurnalRunIsShardCountInvariant) {
  const ShardedRun spec;
  const RunArtifacts base = run_with_sinks(spec, 1, "diurnal");
  EXPECT_GT(base.result.completed_jobs, 0u);
  for (const unsigned k : kShardCounts) {
    if (k == 1) continue;
    const RunArtifacts other = run_with_sinks(spec, k, "diurnal");
    EXPECT_EQ(base.sum, other.sum) << "checksum diverged at K=" << k;
    EXPECT_EQ(base.audit_jsonl, other.audit_jsonl) << "audit diverged at K=" << k;
    EXPECT_EQ(base.ts_csv, other.ts_csv) << "timeseries diverged at K=" << k;
  }
}

TEST(ShardedDeterminism, DegradedRunIsShardCountInvariant) {
  const ShardedRun spec = make_degraded_run();
  const RunArtifacts base = run_with_sinks(spec, 1, "degraded");
  // The degraded path actually exercised what it pins.
  EXPECT_GT(base.result.failures, 0u);
  EXPECT_GT(base.result.repairs, 0u);
  EXPECT_GT(base.result.telemetry_dropped, 0u);
  EXPECT_GT(base.result.command_retries, 0u);
  for (const unsigned k : kShardCounts) {
    if (k == 1) continue;
    const RunArtifacts other = run_with_sinks(spec, k, "degraded");
    EXPECT_EQ(base.sum, other.sum) << "checksum diverged at K=" << k;
    EXPECT_EQ(base.audit_jsonl, other.audit_jsonl) << "audit diverged at K=" << k;
    EXPECT_EQ(base.ts_csv, other.ts_csv) << "timeseries diverged at K=" << k;
  }
}

// Run-to-run determinism at a fixed K (thread scheduling must not leak).
TEST(ShardedDeterminism, RepeatedRunsAreBitIdentical) {
  const ShardedRun spec;
  const SimResult a = spec.run(4, nullptr, nullptr);
  const SimResult b = spec.run(4, nullptr, nullptr);
  EXPECT_EQ(checksum(a), checksum(b));
  EXPECT_EQ(a.counters, b.counters);
}

// -- pinned sharded goldens --------------------------------------------------
//
// The sharded engine is a distinct simulation model (round-robin trace
// dispatch, per-server fault streams — see DESIGN.md §11.1), so it pins its
// *own* goldens, separate from the sequential ones.  K = 1 and K = 4 pin
// the same value by construction; both are asserted so a K-dependent
// regression and a model regression are distinguishable in the failure.
constexpr std::uint64_t kShardedDiurnalGolden = 11986199079868584697ULL;

TEST(ShardedDeterminism, DiurnalGoldenIsPinnedAtK1) {
  const ShardedRun spec;
  EXPECT_EQ(checksum(spec.run(1, nullptr, nullptr)), kShardedDiurnalGolden);
}

TEST(ShardedDeterminism, DiurnalGoldenIsPinnedAtK4) {
  const ShardedRun spec;
  EXPECT_EQ(checksum(spec.run(4, nullptr, nullptr)), kShardedDiurnalGolden);
}

// -- model sanity ------------------------------------------------------------

// K above the fleet size clamps instead of creating empty shards.
TEST(ShardedDeterminism, ShardCountAboveFleetSizeClamps) {
  ShardedRun spec;
  const SimResult wide = spec.run(1000, nullptr, nullptr);
  const SimResult one_per_server = spec.run(spec.config.max_servers, nullptr, nullptr);
  EXPECT_EQ(checksum(wide), checksum(one_per_server));
}

// Unsupported sequential-only features are rejected loudly, not silently
// approximated.
TEST(ShardedDeterminism, RejectsHeterogeneousGroups) {
  const ShardedRun spec;
  const Trace trace = Trace::from_profile(*spec.scenario.profile, 60.0, 1);
  const Distribution job_size = Distribution::exponential(spec.config.mu_max);
  const Provisioner solver(spec.config);
  const auto controller =
      make_policy(PolicyKind::kCombinedDcp, &solver, spec.popts);
  ClusterOptions cluster;
  cluster.num_servers = 8;
  cluster.groups.push_back({.count = 8});
  SimulationOptions sim;
  EXPECT_DEATH((void)run_sharded_simulation(trace, job_size, 1, cluster,
                                            *controller, sim, {}),
               "sequential-only");
}

// The event accounting closes: every trace arrival is counted exactly once
// (admitted + shed across the whole run equals the trace length, including
// arrivals orphaned by an empty serving set).
TEST(ShardedDeterminism, ArrivalAccountingCloses) {
  const ShardedRun spec = make_degraded_run();
  const Trace trace = Trace::from_profile(*spec.scenario.profile,
                                          spec.scenario.horizon_s,
                                          spec.workload_seed);
  const SimResult r = spec.run(4, nullptr, nullptr);
  EXPECT_EQ(r.counters.counter_or("sim.jobs.admitted", 0) +
                r.counters.counter_or("sim.jobs.shed", 0),
            trace.size());
  EXPECT_EQ(r.counters.counter_or("sim.events.arrival", 0), trace.size());
}

// -- sequential engine stays untouched ---------------------------------------
//
// The sequential lossy-channel golden from tests/test_obs_determinism.cpp,
// re-asserted here so a sharded-core regression that leaks into shared code
// (event queue, channel, actuator, server) fails in this suite too.
TEST(ShardedDeterminism, SequentialLossyGoldenStillPinned) {
  ClusterConfig config = bench_cluster_config();
  PolicyOptions popts;
  popts.dcp = bench_dcp_params();
  popts.staleness.horizon_s = 60.0;
  const Scenario scenario = make_scenario(ScenarioKind::kDiurnal, config,
                                          /*level=*/0.7, /*seed=*/1234,
                                          /*day_s=*/2400.0);
  Workload workload = scenario.make_workload(config, /*seed=*/97);
  const Provisioner solver(config);
  const auto controller = make_policy(PolicyKind::kCombinedDcp, &solver, popts);
  ClusterOptions cluster;
  cluster.num_servers = config.max_servers;
  cluster.power = config.power;
  cluster.transition = config.transition;
  cluster.initial_active = config.max_servers;
  cluster.dispatch_seed = 4242;
  SimulationOptions sim;
  sim.t_ref_s = config.t_ref_s;
  sim.warmup_s = popts.dcp.long_period_s;
  sim.record_interval_s = 120.0;
  sim.faults.script = {{600.0, 0, 900.0},
                       {600.0, 1, 900.0},
                       {601.0, 2, 1200.0},
                       {1200.0, 3, std::numeric_limits<double>::infinity()}};
  sim.faults.seed = 99;
  sim.admission.enabled = true;
  sim.admission.mu_max = config.mu_max;
  sim.channel.enabled = true;
  sim.channel.telemetry = {0.05, 0.05, 0.1};
  sim.channel.command = {0.05, 0.05, 0.1};
  sim.channel.ack = {0.05, 0.05, 0.1};
  sim.actuator.enabled = true;
  sim.actuator.ack_timeout_s = 2.0;
  sim.controller_faults.script = {{900.0, 120.0}};
  const SimResult result = run_simulation(workload, cluster, *controller, sim);
  EXPECT_EQ(checksum(result), 13159024489807549190ULL);
}

}  // namespace
}  // namespace gc
