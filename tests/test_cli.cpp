#include "util/cli.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace gc {
namespace {

CliArgs parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, EqualsForm) {
  const CliArgs args = parse({"--level=0.7", "--name=x"});
  EXPECT_EQ(args.get("level").value(), "0.7");
  EXPECT_EQ(args.get("name").value(), "x");
}

TEST(Cli, SpaceForm) {
  const CliArgs args = parse({"--servers", "16", "--policy", "combined-dcp"});
  EXPECT_EQ(args.get_or("servers", ""), "16");
  EXPECT_EQ(args.get_or("policy", ""), "combined-dcp");
}

TEST(Cli, BareFlagIsBooleanTrue) {
  const CliArgs args = parse({"--verbose", "--level=1"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_TRUE(args.get_bool_or("verbose", false));
}

TEST(Cli, Positional) {
  const CliArgs args = parse({"trace.csv", "--bin", "60", "more.txt"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "trace.csv");
  EXPECT_EQ(args.positional()[1], "more.txt");
}

TEST(Cli, TypedGetters) {
  const CliArgs args = parse({"--rate=2.5", "--count", "7", "--on=false"});
  EXPECT_DOUBLE_EQ(args.get_double_or("rate", 0.0), 2.5);
  EXPECT_EQ(args.get_int_or("count", 0), 7);
  EXPECT_FALSE(args.get_bool_or("on", true));
  EXPECT_DOUBLE_EQ(args.get_double_or("missing", 9.5), 9.5);
  EXPECT_EQ(args.get_int_or("missing", -1), -1);
  EXPECT_TRUE(args.get_bool_or("missing", true));
}

TEST(Cli, TypedGettersRejectGarbage) {
  const CliArgs args = parse({"--rate=abc", "--count=1.5", "--on=maybe"});
  EXPECT_THROW((void)args.get_double_or("rate", 0.0), std::invalid_argument);
  EXPECT_THROW((void)args.get_int_or("count", 0), std::invalid_argument);
  EXPECT_THROW((void)args.get_bool_or("on", false), std::invalid_argument);
}

TEST(Cli, UnknownFlags) {
  const CliArgs args = parse({"--good=1", "--oops=2"});
  const auto unknown = args.unknown_flags({"good"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "oops");
  EXPECT_TRUE(args.unknown_flags({"good", "oops"}).empty());
}

TEST(Cli, BareDoubleDashThrows) {
  EXPECT_THROW(parse({"--"}), std::invalid_argument);
}

TEST(Cli, LastOccurrenceWins) {
  const CliArgs args = parse({"--x=1", "--x=2"});
  EXPECT_EQ(args.get("x").value(), "2");
}

}  // namespace
}  // namespace gc
