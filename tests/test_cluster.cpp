#include "sim/cluster.h"

#include <gtest/gtest.h>

namespace gc {
namespace {

ClusterOptions small_options() {
  ClusterOptions options;
  options.num_servers = 4;
  options.initial_active = 2;
  options.transition.boot_delay_s = 10.0;
  options.transition.shutdown_delay_s = 2.0;
  return options;
}

Job make_job(std::uint64_t id, double arrival, double size) {
  Job job;
  job.id = id;
  job.arrival_time = arrival;
  job.size = size;
  job.remaining = size;
  return job;
}

// Drives the queue, dispatching server events back into the cluster.
// Returns completed jobs.  Stops at `until`.
std::vector<Job> drive(EventQueue& queue, Cluster& cluster, double until) {
  std::vector<Job> done;
  while (const auto e = queue.pop()) {
    if (e->time > until) break;
    switch (e->type) {
      case EventType::kDeparture:
        done.push_back(cluster.handle_departure(e->time, e->subject));
        break;
      case EventType::kBootComplete:
        cluster.handle_boot_complete(e->time, e->subject);
        break;
      case EventType::kShutdownComplete:
        cluster.handle_shutdown_complete(e->time, e->subject);
        break;
      default:
        break;
    }
  }
  return done;
}

TEST(Cluster, InitialCounts) {
  EventQueue queue;
  const Cluster cluster(small_options(), &queue);
  EXPECT_EQ(cluster.serving_count(), 2u);
  EXPECT_EQ(cluster.committed_count(), 2u);
  EXPECT_EQ(cluster.powered_count(), 2u);
  EXPECT_EQ(cluster.num_servers(), 4u);
}

TEST(Cluster, RejectsBadOptions) {
  EventQueue queue;
  ClusterOptions options = small_options();
  options.num_servers = 0;
  EXPECT_THROW(Cluster(options, &queue), std::invalid_argument);
  options = small_options();
  options.initial_active = 5;
  EXPECT_THROW(Cluster(options, &queue), std::invalid_argument);
  options = small_options();
  options.initial_speed = 0.0;
  EXPECT_THROW(Cluster(options, &queue), std::invalid_argument);
}

TEST(Cluster, ScaleUpBootsServers) {
  EventQueue queue;
  Cluster cluster(small_options(), &queue);
  cluster.set_active_target(0.0, 4);
  EXPECT_EQ(cluster.serving_count(), 2u);    // boots take time
  EXPECT_EQ(cluster.committed_count(), 4u);
  EXPECT_EQ(cluster.boots_started(), 2u);
  (void)drive(queue, cluster, 100.0);
  EXPECT_EQ(cluster.serving_count(), 4u);
}

TEST(Cluster, ScaleDownDrainsIdleServersImmediately) {
  EventQueue queue;
  Cluster cluster(small_options(), &queue);
  cluster.set_active_target(0.0, 1);
  // One idle server drains straight into shutdown.
  EXPECT_EQ(cluster.serving_count(), 1u);
  EXPECT_EQ(cluster.shutdowns_started(), 1u);
  (void)drive(queue, cluster, 100.0);
  EXPECT_EQ(cluster.powered_count(), 1u);
}

TEST(Cluster, ScaleDownWaitsForBusyServers) {
  EventQueue queue;
  Cluster cluster(small_options(), &queue);
  // Load both servers.
  ASSERT_TRUE(cluster.route_job(0.0, make_job(1, 0.0, 5.0)));
  ASSERT_TRUE(cluster.route_job(0.0, make_job(2, 0.0, 5.0)));
  cluster.set_active_target(0.0, 1);
  // Victim is draining but still busy: no shutdown yet.
  EXPECT_EQ(cluster.shutdowns_started(), 0u);
  EXPECT_EQ(cluster.serving_count(), 1u);
  const auto done = drive(queue, cluster, 100.0);
  EXPECT_EQ(done.size(), 2u);  // both jobs complete (no migration, no loss)
  EXPECT_EQ(cluster.shutdowns_started(), 1u);
  EXPECT_EQ(cluster.powered_count(), 1u);
}

TEST(Cluster, ReviveDrainingBeforeBooting) {
  EventQueue queue;
  Cluster cluster(small_options(), &queue);
  ASSERT_TRUE(cluster.route_job(0.0, make_job(1, 0.0, 50.0)));
  ASSERT_TRUE(cluster.route_job(0.0, make_job(2, 0.0, 50.0)));
  cluster.set_active_target(0.0, 1);  // drain one (busy, so it lingers)
  EXPECT_EQ(cluster.serving_count(), 1u);
  cluster.set_active_target(1.0, 2);  // should revive, not boot
  EXPECT_EQ(cluster.serving_count(), 2u);
  EXPECT_EQ(cluster.boots_started(), 0u);
}

TEST(Cluster, NeverDrainsLastServingServer) {
  EventQueue queue;
  Cluster cluster(small_options(), &queue);
  cluster.set_active_target(0.0, 1);
  EXPECT_EQ(cluster.serving_count(), 1u);
  // Target 0 is clamped to 1 and the last server is protected.
  cluster.set_active_target(1.0, 0);
  EXPECT_EQ(cluster.serving_count(), 1u);
}

TEST(Cluster, RouteJobSchedulesDeparture) {
  EventQueue queue;
  Cluster cluster(small_options(), &queue);
  ASSERT_TRUE(cluster.route_job(0.0, make_job(1, 0.0, 2.0)));
  EXPECT_EQ(cluster.jobs_in_system(), 1u);
  const auto done = drive(queue, cluster, 10.0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].id, 1u);
  EXPECT_EQ(cluster.jobs_in_system(), 0u);
}

TEST(Cluster, SpeedChangeRetimesAllDepartures) {
  EventQueue queue;
  Cluster cluster(small_options(), &queue);
  ASSERT_TRUE(cluster.route_job(0.0, make_job(1, 0.0, 2.0)));  // ETA 2 at s=1
  cluster.set_all_speeds(1.0, 0.5);  // 1.0 work left -> finishes at 3.0
  const auto done = drive(queue, cluster, 10.0);
  ASSERT_EQ(done.size(), 1u);
  // Verify the finish time via the meter: flush at known time and check
  // jobs_in_system cleared before t=3.01.
  EXPECT_EQ(cluster.jobs_in_system(), 0u);
}

TEST(Cluster, EnergyBreakdownSumsToTotal) {
  EventQueue queue;
  Cluster cluster(small_options(), &queue);
  ASSERT_TRUE(cluster.route_job(0.0, make_job(1, 0.0, 3.0)));
  (void)drive(queue, cluster, 10.0);
  cluster.flush_energy(10.0);
  const EnergyBreakdown energy = cluster.energy();
  EXPECT_GT(energy.busy_j, 0.0);
  EXPECT_GT(energy.idle_j, 0.0);
  EXPECT_GT(energy.off_j, 0.0);  // two OFF servers
  EXPECT_NEAR(energy.total_j(),
              energy.busy_j + energy.idle_j + energy.transition_j + energy.off_j, 1e-9);
}

TEST(Cluster, EnergyConservationScripted) {
  // 2 servers ON idle for 10 s + 2 OFF: 2*150*10 + 2*5*10 = 3100 J.
  EventQueue queue;
  Cluster cluster(small_options(), &queue);
  cluster.flush_energy(10.0);
  EXPECT_NEAR(cluster.energy().total_j(), 3100.0, 1e-9);
}

TEST(Cluster, InstantaneousPowerTracksState) {
  EventQueue queue;
  Cluster cluster(small_options(), &queue);
  // 2 idle ON at 150 + 2 OFF at 5 = 310.
  EXPECT_NEAR(cluster.instantaneous_power(), 310.0, 1e-9);
  ASSERT_TRUE(cluster.route_job(0.0, make_job(1, 0.0, 5.0)));
  // One busy at 250 now.
  EXPECT_NEAR(cluster.instantaneous_power(), 250.0 + 150.0 + 10.0, 1e-9);
}

TEST(Cluster, BootThenTargetDownLetsBootLand) {
  EventQueue queue;
  Cluster cluster(small_options(), &queue);
  cluster.set_active_target(0.0, 4);  // boot 2 (committed 4)
  cluster.set_active_target(1.0, 2);  // drain idles, but keep >= 1 serving
  // Only one of the two idle ON servers may drain before the boots land
  // (the last serving server is protected), so 3 end up serving; the next
  // control decision trims the extra.
  (void)drive(queue, cluster, 50.0);
  EXPECT_EQ(cluster.serving_count(), 3u);
  cluster.set_active_target(50.0, 2);
  (void)drive(queue, cluster, 100.0);
  EXPECT_EQ(cluster.serving_count(), 2u);
}

ClusterOptions grouped_options() {
  ClusterOptions options;
  ServerGroupSpec fast;
  fast.count = 3;
  fast.rate_scale = 2.0;
  fast.initial_active = 2;
  fast.initial_speed = 1.0;
  ServerGroupSpec slow;
  slow.count = 2;
  slow.rate_scale = 1.0;
  slow.initial_active = 1;
  slow.initial_speed = 0.5;
  options.groups = {fast, slow};
  options.transition.boot_delay_s = 4.0;
  options.transition.shutdown_delay_s = 1.0;
  return options;
}

TEST(ClusterGroups, LayoutAndCounts) {
  EventQueue queue;
  const Cluster cluster(grouped_options(), &queue);
  EXPECT_EQ(cluster.num_groups(), 2u);
  EXPECT_EQ(cluster.num_servers(), 5u);
  EXPECT_EQ(cluster.group_size(0), 3u);
  EXPECT_EQ(cluster.group_size(1), 2u);
  EXPECT_EQ(cluster.group_serving_count(0), 2u);
  EXPECT_EQ(cluster.group_serving_count(1), 1u);
  EXPECT_EQ(cluster.group_of(0), 0u);
  EXPECT_EQ(cluster.group_of(2), 0u);
  EXPECT_EQ(cluster.group_of(3), 1u);
  EXPECT_DEATH((void)cluster.group_of(99), "out of range");
  EXPECT_DEATH((void)cluster.group_size(7), "out of range");
}

TEST(ClusterGroups, PerGroupRateScaleAffectsServiceTime) {
  EventQueue queue;
  Cluster cluster(grouped_options(), &queue);
  // Route one job into the fast group (scale 2 at s=1): a 2.0-work job
  // completes in 1 s.
  ASSERT_TRUE(cluster.route_job_to_group(0.0, 0, make_job(1, 0.0, 2.0)));
  const auto e = queue.pop();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->type, EventType::kDeparture);
  EXPECT_DOUBLE_EQ(e->time, 1.0);
  (void)cluster.handle_departure(e->time, e->subject);
  // Same job in the slow group (scale 1 at s=0.5): 4 s.
  ASSERT_TRUE(cluster.route_job_to_group(1.0, 1, make_job(2, 1.0, 2.0)));
  const auto e2 = queue.pop();
  ASSERT_TRUE(e2.has_value());
  EXPECT_DOUBLE_EQ(e2->time, 5.0);
}

TEST(ClusterGroups, GroupTargetsAreIndependent) {
  EventQueue queue;
  Cluster cluster(grouped_options(), &queue);
  cluster.set_group_active_target(0.0, 0, 3);  // boot the third fast server
  EXPECT_EQ(cluster.boots_started(), 1u);
  EXPECT_EQ(cluster.group_serving_count(1), 1u);  // slow group untouched
  cluster.set_group_active_target(0.0, 1, 0);     // shut the slow group down
  (void)drive(queue, cluster, 100.0);
  EXPECT_EQ(cluster.group_serving_count(0), 3u);
  EXPECT_EQ(cluster.group_serving_count(1), 0u);
}

TEST(ClusterGroups, GroupSpeedOnlyTouchesThatGroup) {
  EventQueue queue;
  Cluster cluster(grouped_options(), &queue);
  cluster.set_group_speed(0.0, 1, 1.0);
  EXPECT_DOUBLE_EQ(cluster.server(0).speed(), 1.0);   // fast group unchanged
  EXPECT_DOUBLE_EQ(cluster.server(3).speed(), 1.0);   // slow group raised
  cluster.set_group_speed(0.0, 0, 0.25);
  EXPECT_DOUBLE_EQ(cluster.server(1).speed(), 0.25);
  EXPECT_DOUBLE_EQ(cluster.server(3).speed(), 1.0);
}

TEST(ClusterGroups, BootedServerAdoptsItsGroupsSpeed) {
  EventQueue queue;
  Cluster cluster(grouped_options(), &queue);
  cluster.set_group_speed(0.0, 0, 0.5);
  cluster.set_group_active_target(0.0, 0, 3);
  (void)drive(queue, cluster, 100.0);
  // Server 2 (the booted one in group 0) must come up at the group speed.
  EXPECT_DOUBLE_EQ(cluster.server(2).speed(), 0.5);
}

TEST(ClusterGroups, RoutingToEmptyGroupDrops) {
  EventQueue queue;
  Cluster cluster(grouped_options(), &queue);
  cluster.set_group_active_target(0.0, 1, 0);
  (void)drive(queue, cluster, 100.0);
  EXPECT_FALSE(cluster.route_job_to_group(100.0, 1, make_job(9, 100.0, 1.0)));
  EXPECT_EQ(cluster.jobs_dropped(), 1u);
}

TEST(ClusterGroups, RejectsBadGroupSpecs) {
  EventQueue queue;
  ClusterOptions options = grouped_options();
  options.groups[0].count = 0;
  EXPECT_THROW(Cluster(options, &queue), std::invalid_argument);
  options = grouped_options();
  options.groups[0].initial_active = 99;
  EXPECT_THROW(Cluster(options, &queue), std::invalid_argument);
  options = grouped_options();
  options.groups[0].rate_scale = 0.0;
  EXPECT_THROW(Cluster(options, &queue), std::invalid_argument);
  options = grouped_options();
  options.groups[0].initial_active = 0;
  options.groups[1].initial_active = 0;
  EXPECT_THROW(Cluster(options, &queue), std::invalid_argument);
}

TEST(Cluster, ServerAccessorBounds) {
  EventQueue queue;
  Cluster cluster(small_options(), &queue);
  EXPECT_EQ(cluster.server(0).index(), 0u);
  EXPECT_DEATH((void)cluster.server(99), "out of range");
}

}  // namespace
}  // namespace gc
