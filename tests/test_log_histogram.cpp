// stats/log_histogram.h — bucket placement, the advertised relative-error
// bound against exact order statistics, exact mergeability (associativity
// and merge == pooled), serialization round trips, and range handling.
#include "stats/log_histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "stats/rng.h"

namespace gc {
namespace {

// Exact p-quantile of a sorted sample with the same rank convention the
// histogram uses: the ceil(p * n)-th smallest value.
double exact_quantile(std::vector<double> sorted, double p) {
  std::sort(sorted.begin(), sorted.end());
  const auto n = sorted.size();
  auto rank = static_cast<std::size_t>(std::ceil(p * static_cast<double>(n)));
  rank = std::min(std::max<std::size_t>(rank, 1), n);
  return sorted[rank - 1];
}

std::vector<double> random_sample(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Mix three shapes so samples span several octaves: exponential
    // response times, a heavy lognormal-ish tail, and small uniforms.
    // Floored at 2e-6 (above the default 2^-20 lower range bound) so no
    // sample underflows and the relative-error contract applies to all.
    const double u = rng.uniform01();
    double x = 0.0;
    if (u < 0.6) {
      x = -std::log(1.0 - rng.uniform01()) * 0.05;
    } else if (u < 0.9) {
      x = std::exp(2.0 * rng.uniform01() - 1.0) * 0.2;
    } else {
      x = rng.uniform01() * 1e-3;
    }
    xs.push_back(std::max(x, 2e-6));
  }
  return xs;
}

TEST(LogHistogram, EmptyHistogramIsZeroEverywhere) {
  const LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.saturated(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_TRUE(h.nonzero_buckets().empty());
}

TEST(LogHistogram, ExactScalarsTrackAddedValues) {
  LogHistogram h;
  h.add(0.5);
  h.add(0.25);
  h.add(1.5, 2);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 0.25 + 2 * 1.5);
  EXPECT_DOUBLE_EQ(h.mean(), h.sum() / 4.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.25);
  EXPECT_DOUBLE_EQ(h.max(), 1.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.25);  // exact min
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.5);   // exact max
}

TEST(LogHistogram, QuantilesWithinAdvertisedRelativeError) {
  for (const std::uint64_t seed : {7ULL, 21ULL, 5150ULL}) {
    const auto xs = random_sample(seed, 20000);
    LogHistogram h;
    for (const double x : xs) h.add(x);
    ASSERT_EQ(h.count(), xs.size());
    ASSERT_EQ(h.underflow(), 0u);
    ASSERT_EQ(h.saturated(), 0u);
    const double bound = h.relative_error_bound();
    EXPECT_DOUBLE_EQ(bound, 1.0 / 128.0);  // 6 sub-bucket bits
    for (const double p : {0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999}) {
      const double exact = exact_quantile(xs, p);
      const double est = h.quantile(p);
      EXPECT_NEAR(est, exact, bound * exact)
          << "seed " << seed << " p " << p;
    }
  }
}

TEST(LogHistogram, CoarserGeometryHasLooserBoundButStillHolds) {
  LogHistogramOptions coarse;
  coarse.sub_bucket_bits = 3;  // 8 sub-buckets, 6.25% relative error
  const auto xs = random_sample(99, 10000);
  LogHistogram h(coarse);
  for (const double x : xs) h.add(x);
  EXPECT_DOUBLE_EQ(h.relative_error_bound(), 1.0 / 16.0);
  for (const double p : {0.5, 0.95, 0.99}) {
    const double exact = exact_quantile(xs, p);
    EXPECT_NEAR(h.quantile(p), exact, h.relative_error_bound() * exact);
  }
}

TEST(LogHistogram, MergeEqualsPooledSamples) {
  const auto a_xs = random_sample(1, 5000);
  const auto b_xs = random_sample(2, 3000);
  LogHistogram a, b, pooled;
  for (const double x : a_xs) { a.add(x); pooled.add(x); }
  for (const double x : b_xs) { b.add(x); pooled.add(x); }
  a.merge(b);
  EXPECT_EQ(a, pooled);  // == excludes the order-dependent float sum
  EXPECT_NEAR(a.sum(), pooled.sum(), 1e-9 * pooled.sum());
  EXPECT_EQ(a.count(), a_xs.size() + b_xs.size());
  EXPECT_EQ(a.quantile(0.95), pooled.quantile(0.95));
}

TEST(LogHistogram, MergeIsAssociative) {
  LogHistogram a, b, c;
  for (const double x : random_sample(11, 2000)) a.add(x);
  for (const double x : random_sample(12, 2000)) b.add(x);
  for (const double x : random_sample(13, 2000)) c.add(x);

  LogHistogram ab = a;
  ab.merge(b);
  LogHistogram ab_c = ab;
  ab_c.merge(c);

  LogHistogram bc = b;
  bc.merge(c);
  LogHistogram a_bc = a;
  a_bc.merge(bc);

  EXPECT_EQ(ab_c, a_bc);
}

TEST(LogHistogram, MergeWithEmptyIsIdentity) {
  LogHistogram a, empty;
  for (const double x : random_sample(3, 1000)) a.add(x);
  const LogHistogram before = a;
  a.merge(empty);
  EXPECT_EQ(a, before);
  empty.merge(a);
  EXPECT_EQ(empty, before);
}

TEST(LogHistogram, MergeRejectsGeometryMismatch) {
  LogHistogramOptions other;
  other.sub_bucket_bits = 4;
  LogHistogram a, b(other);
  EXPECT_FALSE(a.same_geometry(b));
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(LogHistogram, UnderflowAndSaturationAreCounted) {
  LogHistogramOptions narrow;
  narrow.min_exponent = -4;  // lowest trackable 1/16
  narrow.max_exponent = 4;   // >= 16 saturates
  LogHistogram h(narrow);
  h.add(0.0);
  h.add(-1.0);
  h.add(1e-9);
  h.add(1.0);
  h.add(1e9);
  EXPECT_EQ(h.count(), 5u);  // exact scalars cover every add
  EXPECT_EQ(h.underflow(), 3u);
  EXPECT_EQ(h.saturated(), 1u);
  // Exact min/max still see out-of-range values; the clamped add lands in
  // the top bucket so upper quantiles stay above the in-range sample.
  EXPECT_DOUBLE_EQ(h.min(), -1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
  EXPECT_GT(h.quantile(0.99), 1.0);
}

TEST(LogHistogram, JsonRoundTripIsExact) {
  LogHistogram h;
  for (const double x : random_sample(42, 4000)) h.add(x);
  h.add(0.0);    // underflow
  h.add(1e300);  // saturated
  const LogHistogram back = LogHistogram::from_json(h.to_json());
  EXPECT_EQ(back, h);
  EXPECT_EQ(back.underflow(), h.underflow());
  EXPECT_EQ(back.saturated(), h.saturated());
  EXPECT_DOUBLE_EQ(back.sum(), h.sum());
  EXPECT_EQ(back.quantile(0.5), h.quantile(0.5));
}

TEST(LogHistogram, FromJsonRejectsGarbage) {
  EXPECT_THROW(LogHistogram::from_json(""), std::runtime_error);
  EXPECT_THROW(LogHistogram::from_json("not json"), std::runtime_error);
  EXPECT_THROW(LogHistogram::from_json(R"({"buckets": {"999999": 1}})"),
               std::runtime_error);
}

TEST(LogHistogram, ClearForgetsSamplesKeepsGeometry) {
  LogHistogramOptions opts;
  opts.sub_bucket_bits = 5;
  LogHistogram h(opts);
  for (const double x : random_sample(8, 500)) h.add(x);
  h.clear();
  EXPECT_EQ(h, LogHistogram(opts));
  EXPECT_EQ(h.count(), 0u);
  h.add(0.125);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 0.125);
}

TEST(LogHistogram, NonzeroBucketsAreOrderedAndCoverTheCounts) {
  LogHistogram h;
  const auto xs = random_sample(77, 3000);
  for (const double x : xs) h.add(x);
  const auto buckets = h.nonzero_buckets();
  ASSERT_FALSE(buckets.empty());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    EXPECT_LT(buckets[i].lower, buckets[i].upper);
    EXPECT_GT(buckets[i].count, 0u);
    if (i > 0) {
      EXPECT_LE(buckets[i - 1].upper, buckets[i].lower + 1e-12);
    }
    total += buckets[i].count;
  }
  EXPECT_EQ(total, h.count());
}

TEST(LogHistogram, OptionsValidateRejectsBadGeometry) {
  LogHistogramOptions bad;
  bad.min_exponent = 5;
  bad.max_exponent = 5;  // empty octave range
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = {};
  bad.sub_bucket_bits = 40;  // outside the supported [1, 12]
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace gc
