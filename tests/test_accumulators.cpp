#include "stats/accumulators.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace gc {
namespace {

TEST(MeanVar, EmptyIsZero) {
  MeanVarAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(MeanVar, SingleValue) {
  MeanVarAccumulator acc;
  acc.add(5.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 5.0);
  EXPECT_DOUBLE_EQ(acc.max(), 5.0);
}

TEST(MeanVar, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0, -3.0};
  MeanVarAccumulator acc;
  double sum = 0.0;
  for (const double x : xs) {
    acc.add(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (const double x : xs) ss += (x - mean) * (x - mean);
  EXPECT_NEAR(acc.mean(), mean, 1e-12);
  EXPECT_NEAR(acc.variance(), ss / (static_cast<double>(xs.size()) - 1.0), 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), -3.0);
  EXPECT_DOUBLE_EQ(acc.max(), 16.0);
  EXPECT_NEAR(acc.sum(), sum, 1e-12);
}

TEST(MeanVar, NumericallyStableForLargeOffset) {
  MeanVarAccumulator acc;
  const double offset = 1e9;
  for (int i = 0; i < 1000; ++i) acc.add(offset + (i % 2 == 0 ? 1.0 : -1.0));
  EXPECT_NEAR(acc.mean(), offset, 1e-3);
  EXPECT_NEAR(acc.variance(), 1.0 + 1.0 / 999.0, 1e-6);
}

TEST(MeanVar, MergeEqualsSequential) {
  MeanVarAccumulator a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i * 0.7) * 10.0;
    (i < 40 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(MeanVar, MergeWithEmpty) {
  MeanVarAccumulator a, empty;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  MeanVarAccumulator b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(MeanVar, SemShrinksWithSamples) {
  MeanVarAccumulator small, large;
  for (int i = 0; i < 10; ++i) small.add(i % 3);
  for (int i = 0; i < 1000; ++i) large.add(i % 3);
  EXPECT_GT(small.sem(), large.sem());
}

TEST(TimeWeighted, PiecewiseConstantIntegral) {
  TimeWeightedAccumulator acc(0.0);
  acc.advance(2.0, 5.0);   // 5 for 2s -> 10
  acc.advance(3.0, 1.0);   // 1 for 1s -> 1
  acc.advance(3.0, 99.0);  // zero-length segment contributes nothing
  acc.advance(5.0, 0.0);   // 0 for 2s
  EXPECT_DOUBLE_EQ(acc.integral(), 11.0);
  EXPECT_DOUBLE_EQ(acc.elapsed(), 5.0);
  EXPECT_DOUBLE_EQ(acc.time_average(), 11.0 / 5.0);
}

TEST(TimeWeighted, NonZeroStart) {
  TimeWeightedAccumulator acc(10.0);
  acc.advance(12.0, 4.0);
  EXPECT_DOUBLE_EQ(acc.integral(), 8.0);
  EXPECT_DOUBLE_EQ(acc.elapsed(), 2.0);
}

TEST(TimeWeighted, EmptyElapsedGivesZeroAverage) {
  TimeWeightedAccumulator acc(1.0);
  EXPECT_DOUBLE_EQ(acc.time_average(), 0.0);
}

TEST(Ratio, Basics) {
  RatioAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.ratio(), 0.0);
  acc.add(true);
  acc.add(false);
  acc.add(false);
  acc.add(true);
  EXPECT_DOUBLE_EQ(acc.ratio(), 0.5);
  EXPECT_EQ(acc.total(), 4u);
  EXPECT_EQ(acc.hits(), 2u);
}

TEST(Ratio, Merge) {
  RatioAccumulator a, b;
  a.add(true);
  b.add(false);
  b.add(false);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_NEAR(a.ratio(), 1.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace gc
