// Unit tests for the ControlPlane facade (cp/control_plane.h): the
// newest-wins observation store, context construction, command stamping
// order, era bookkeeping, the ack/retry integration and the cp.* metric
// snapshot.  Everything here drives the facade directly — no simulator —
// which is the point of the extraction.
#include "cp/control_plane.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

namespace gc {
namespace {

// A policy whose next action is scripted by the test; records the contexts
// it was shown.
class ScriptedController final : public Controller {
 public:
  ControlAction next;
  std::vector<ControlContext> seen;

  [[nodiscard]] double short_period_s() const override { return 10.0; }
  [[nodiscard]] double long_period_s() const override { return 60.0; }
  [[nodiscard]] ControlAction on_short_tick(const ControlContext& ctx) override {
    seen.push_back(ctx);
    return next;
  }
  [[nodiscard]] ControlAction on_long_tick(const ControlContext& ctx) override {
    seen.push_back(ctx);
    return next;
  }
  [[nodiscard]] const char* name() const override { return "scripted"; }
};

TelemetryFrame frame_at(double t, double rate = 5.0, unsigned serving = 4) {
  TelemetryFrame f;
  f.sample_time = t;
  f.rate = rate;
  f.serving = serving;
  f.committed = serving;
  f.powered = serving;
  f.available = serving;
  f.jobs_in_system = 2;
  return f;
}

ControlPlane make_plane(ScriptedController& controller,
                        ControlPlaneOptions options = {}) {
  return ControlPlane(controller, options, Rng(/*seed=*/7, /*stream=*/14));
}

TEST(ControlPlane, NewestWinsObservationStore) {
  ScriptedController controller;
  ControlPlane cp = make_plane(controller);
  cp.accept_telemetry(frame_at(10.0, 3.0));
  cp.accept_telemetry(frame_at(20.0, 7.0));
  // A reordered (older) delivery must not move the view backwards.
  cp.accept_telemetry(frame_at(15.0, 99.0));
  EXPECT_DOUBLE_EQ(cp.latest_observation().sample_time, 20.0);
  EXPECT_DOUBLE_EQ(cp.latest_observation().rate, 7.0);
  EXPECT_EQ(cp.telemetry_accepted(), 2u);
  EXPECT_EQ(cp.telemetry_stale_discarded(), 1u);
}

TEST(ControlPlane, SeedObservationDoesNotCountAsDelivery) {
  ScriptedController controller;
  ControlPlane cp = make_plane(controller);
  cp.seed_observation(frame_at(0.0, 11.0));
  EXPECT_EQ(cp.telemetry_accepted(), 0u);
  EXPECT_DOUBLE_EQ(cp.latest_observation().rate, 11.0);
}

TEST(ControlPlane, MakeContextDerivesObservationAge) {
  ScriptedController controller;
  ControlPlane cp = make_plane(controller);
  cp.accept_telemetry(frame_at(5.0, 4.5, /*serving=*/6));
  const ControlContext ctx = cp.make_context(/*now=*/8.0, /*safe_mode=*/true);
  EXPECT_DOUBLE_EQ(ctx.now, 8.0);
  EXPECT_DOUBLE_EQ(ctx.obs_age_s, 3.0);
  EXPECT_DOUBLE_EQ(ctx.measured_rate, 4.5);
  EXPECT_EQ(ctx.serving, 6u);
  EXPECT_TRUE(ctx.safe_mode);
  // Actuator protocol never ran: no acked state to plan against.
  EXPECT_FALSE(ctx.acked_target.has_value());
  EXPECT_FALSE(ctx.acked_speed.has_value());
}

TEST(ControlPlane, TickIssuesTargetBeforeSpeed) {
  ScriptedController controller;
  controller.next.active_target = 3;
  controller.next.speed = 0.75;
  ControlPlane cp = make_plane(controller);
  cp.accept_telemetry(frame_at(0.0));
  const ControlPlane::Decision d = cp.on_tick(10.0, /*long_tick=*/true, false);
  ASSERT_EQ(d.commands.size(), 2u);
  EXPECT_EQ(d.commands[0].frame.kind, CommandKind::kTarget);
  EXPECT_DOUBLE_EQ(d.commands[0].frame.value, 3.0);
  EXPECT_EQ(d.commands[1].frame.kind, CommandKind::kSpeed);
  EXPECT_DOUBLE_EQ(d.commands[1].frame.value, 0.75);
  EXPECT_FALSE(d.commands[0].retransmit);
  EXPECT_FALSE(d.commands[1].retransmit);
  // Per-kind generations both start at 1; era 0 until the driver bumps it.
  EXPECT_EQ(d.commands[0].frame.gen, 1u);
  EXPECT_EQ(d.commands[1].frame.gen, 1u);
  EXPECT_EQ(d.commands[0].frame.era, 0u);
  EXPECT_EQ(cp.commands_issued(), 2u);
  EXPECT_EQ(controller.seen.size(), 1u);
}

TEST(ControlPlane, UnsetActionFieldsIssueNothing) {
  ScriptedController controller;  // next is all-unset
  ControlPlane cp = make_plane(controller);
  const ControlPlane::Decision d = cp.on_tick(10.0, /*long_tick=*/false, false);
  EXPECT_TRUE(d.commands.empty());
  EXPECT_EQ(cp.commands_issued(), 0u);
  EXPECT_EQ(cp.ticks(), 1u);
  EXPECT_EQ(cp.long_ticks(), 0u);
}

TEST(ControlPlane, EraBumpStampsSubsequentCommands) {
  ScriptedController controller;
  controller.next.active_target = 2;
  ControlPlane cp = make_plane(controller);
  (void)cp.on_tick(10.0, false, false);
  cp.bump_era();
  cp.bump_era();
  EXPECT_EQ(cp.era(), 2u);
  const ControlPlane::Decision d = cp.on_tick(20.0, false, false);
  ASSERT_EQ(d.commands.size(), 1u);
  EXPECT_EQ(d.commands[0].frame.era, 2u);
  // Generations keep counting across eras (monotone per kind).
  EXPECT_EQ(d.commands[0].frame.gen, 2u);
}

TEST(ControlPlane, UnackedCommandRetransmitsAndAckStopsIt) {
  ScriptedController controller;
  controller.next.active_target = 5;
  ControlPlaneOptions options;
  options.actuator.enabled = true;
  options.actuator.ack_timeout_s = 5.0;
  ControlPlane cp(controller, options, Rng(7, 14));
  const ControlPlane::Decision issued = cp.on_tick(0.0, false, false);
  ASSERT_EQ(issued.commands.size(), 1u);
  const std::uint64_t gen = issued.commands[0].frame.gen;

  // Past the ack timeout with no ack and no fresh command: the actuator
  // re-asserts the unacked target as retry traffic.
  controller.next = ControlAction{};
  const ControlPlane::Decision retry = cp.on_tick(10.0, false, false);
  ASSERT_EQ(retry.commands.size(), 1u);
  EXPECT_TRUE(retry.commands[0].retransmit);
  EXPECT_EQ(retry.commands[0].frame.gen, gen);

  // Acked: nothing left in flight, and the acked value feeds the context.
  cp.on_ack(11.0, CommandKind::kTarget, gen);
  const ControlPlane::Decision quiet = cp.on_tick(30.0, false, false);
  EXPECT_TRUE(quiet.commands.empty());
  const ControlContext ctx = cp.make_context(31.0, false);
  ASSERT_TRUE(ctx.acked_target.has_value());
  EXPECT_EQ(*ctx.acked_target, 5u);
}

TEST(ControlPlane, InfeasibleTicksAreCounted) {
  ScriptedController controller;
  controller.next.infeasible = true;
  ControlPlane cp = make_plane(controller);
  (void)cp.on_tick(10.0, true, false);
  (void)cp.on_tick(20.0, false, false);
  EXPECT_EQ(cp.infeasible_ticks(), 2u);
  EXPECT_EQ(cp.long_ticks(), 1u);
}

TEST(ControlPlane, CountersSnapshotCarriesTheCpNamespace) {
  ScriptedController controller;
  controller.next.speed = 0.5;
  ControlPlane cp = make_plane(controller);
  cp.accept_telemetry(frame_at(0.0, 8.0));
  (void)cp.on_tick(10.0, false, false);
  const CountersSnapshot snap = cp.counters_snapshot();
  EXPECT_EQ(snap.counter_or("cp.ticks", 0), 1u);
  EXPECT_EQ(snap.counter_or("cp.commands.issued", 0), 1u);
  EXPECT_EQ(snap.counter_or("cp.telemetry.accepted", 0), 1u);
  EXPECT_DOUBLE_EQ(snap.gauge_or("cp.rate.latest", -1.0), 8.0);
  EXPECT_DOUBLE_EQ(snap.gauge_or("cp.era", -1.0), 0.0);
  // The Prometheus exposition renders the same snapshot.
  EXPECT_NE(cp.prometheus_text().find("cp"), std::string::npos);
}

TEST(ControlPlane, SmoothedRateFollowsDeliveredSamples) {
  ScriptedController controller;
  ControlPlaneOptions options;
  options.rate_ewma_alpha = 1.0;  // degenerate EWMA: tracks the last sample
  ControlPlane cp(controller, options, Rng(7, 14));
  cp.accept_telemetry(frame_at(1.0, 3.0));
  cp.accept_telemetry(frame_at(2.0, 9.0));
  EXPECT_DOUBLE_EQ(cp.smoothed_rate(), 9.0);
}

TEST(ControlPlane, StalenessInstrumentIsObservational) {
  ScriptedController controller;
  controller.next.speed = 1.0;
  ControlPlaneOptions options;
  options.staleness.horizon_s = 5.0;
  ControlPlane cp(controller, options, Rng(7, 14));
  cp.accept_telemetry(frame_at(0.0));
  const ControlPlane::Decision d = cp.on_tick(100.0, false, false);
  EXPECT_TRUE(cp.telemetry_stale());
  EXPECT_GE(cp.counters_snapshot().counter_or("cp.telemetry.stale_ticks", 0), 1u);
  // The guard never rewrites what the policy sees: the context carries the
  // raw delivered sample and its true age.
  EXPECT_DOUBLE_EQ(d.ctx.obs_age_s, 100.0);
  EXPECT_DOUBLE_EQ(d.ctx.measured_rate, 5.0);
}

TEST(ControlPlane, OptionsValidateRejectsBadSettings) {
  ScriptedController controller;
  ControlPlaneOptions bad_alpha;
  bad_alpha.rate_ewma_alpha = 0.0;
  EXPECT_THROW(ControlPlane(controller, bad_alpha, Rng(7, 14)),
               std::invalid_argument);
  ControlPlaneOptions bad_staleness;
  bad_staleness.staleness.horizon_s = -1.0;
  EXPECT_THROW(ControlPlane(controller, bad_staleness, Rng(7, 14)),
               std::invalid_argument);
  EXPECT_THROW(ControlPlane(std::unique_ptr<Controller>(), ControlPlaneOptions{},
                            Rng(7, 14)),
               std::invalid_argument);
}

}  // namespace
}  // namespace gc
