#include "queueing/mg1.h"
#include "queueing/mm1.h"
#include "queueing/mmc.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace gc {
namespace {

// -- M/M/1 --------------------------------------------------------------------

TEST(Mm1, ClassicNumbers) {
  // lambda=8, mu=10: rho=0.8, T=1/2=0.5, L=4, W=0.4.
  EXPECT_DOUBLE_EQ(mm1::utilization(8.0, 10.0), 0.8);
  EXPECT_DOUBLE_EQ(mm1::mean_response_time(8.0, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(mm1::mean_number_in_system(8.0, 10.0), 4.0);
  EXPECT_DOUBLE_EQ(mm1::mean_waiting_time(8.0, 10.0), 0.4);
}

TEST(Mm1, LittlesLawHolds) {
  for (double rho : {0.1, 0.5, 0.9, 0.99}) {
    const double mu = 10.0;
    const double lambda = rho * mu;
    EXPECT_NEAR(mm1::mean_number_in_system(lambda, mu),
                lambda * mm1::mean_response_time(lambda, mu), 1e-9);
  }
}

TEST(Mm1, StabilityCheck) {
  EXPECT_TRUE(mm1::stable(5.0, 10.0));
  EXPECT_FALSE(mm1::stable(10.0, 10.0));
  EXPECT_FALSE(mm1::stable(11.0, 10.0));
  EXPECT_FALSE(mm1::stable(1.0, 0.0));
}

TEST(Mm1, UnstableThrows) {
  EXPECT_THROW((void)mm1::mean_response_time(10.0, 10.0), std::invalid_argument);
  EXPECT_THROW((void)mm1::mean_number_in_system(-1.0, 10.0), std::invalid_argument);
}

TEST(Mm1, ResponseTimeTailIsExponential) {
  const double lambda = 5.0, mu = 10.0;
  EXPECT_DOUBLE_EQ(mm1::response_time_tail(lambda, mu, 0.0), 1.0);
  EXPECT_NEAR(mm1::response_time_tail(lambda, mu, 0.2), std::exp(-1.0), 1e-12);
  EXPECT_DOUBLE_EQ(mm1::response_time_tail(lambda, mu, -1.0), 1.0);
}

TEST(Mm1, QuantileInvertsTail) {
  const double lambda = 5.0, mu = 10.0;
  const double q95 = mm1::response_time_quantile(lambda, mu, 0.95);
  EXPECT_NEAR(mm1::response_time_tail(lambda, mu, q95), 0.05, 1e-12);
  EXPECT_THROW((void)mm1::response_time_quantile(lambda, mu, 1.0), std::invalid_argument);
}

TEST(Mm1, RequiredServiceRateInverts) {
  const double mu = mm1::required_service_rate(8.0, 0.5);
  EXPECT_DOUBLE_EQ(mu, 10.0);
  EXPECT_NEAR(mm1::mean_response_time(8.0, mu), 0.5, 1e-12);
  EXPECT_THROW((void)mm1::required_service_rate(1.0, 0.0), std::invalid_argument);
}

// -- M/M/c --------------------------------------------------------------------

TEST(Mmc, SingleServerReducesToMm1) {
  const double lambda = 7.0, mu = 10.0;
  EXPECT_NEAR(mmc::mean_response_time(lambda, mu, 1),
              mm1::mean_response_time(lambda, mu), 1e-9);
  EXPECT_NEAR(mmc::erlang_c(lambda, mu, 1), 0.7, 1e-9);  // C(1,a) = rho
}

TEST(Mmc, ErlangCKnownValue) {
  // a = 2 Erlang offered to c = 3 servers: Erlang-C = 4/9 (textbook).
  EXPECT_NEAR(mmc::erlang_c(2.0, 1.0, 3), 4.0 / 9.0, 1e-9);
}

TEST(Mmc, WaitVanishesWithManyServers) {
  const double lambda = 10.0, mu = 1.0;
  EXPECT_GT(mmc::mean_waiting_time(lambda, mu, 11), mmc::mean_waiting_time(lambda, mu, 20));
  EXPECT_LT(mmc::mean_waiting_time(lambda, mu, 40), 1e-6);
  EXPECT_NEAR(mmc::mean_response_time(lambda, mu, 40), 1.0 / mu, 1e-6);
}

TEST(Mmc, Stability) {
  EXPECT_TRUE(mmc::stable(9.9, 1.0, 10));
  EXPECT_FALSE(mmc::stable(10.0, 1.0, 10));
  EXPECT_FALSE(mmc::stable(1.0, 1.0, 0));
}

TEST(Mmc, UnstableThrows) {
  EXPECT_THROW((void)mmc::erlang_c(10.0, 1.0, 10), std::invalid_argument);
}

TEST(Mmc, LittlesLaw) {
  EXPECT_NEAR(mmc::mean_number_in_system(5.0, 1.0, 8),
              5.0 * mmc::mean_response_time(5.0, 1.0, 8), 1e-9);
}

TEST(Mmc, MinServersForResponseTime) {
  // lambda=10, mu=1: need c >= 11 for stability; tight t_ref needs more.
  const unsigned c = mmc::min_servers_for_response_time(10.0, 1.0, 1.05, 100);
  EXPECT_GE(c, 11u);
  EXPECT_LE(mmc::mean_response_time(10.0, 1.0, c), 1.05);
  if (c > 11) {
    EXPECT_GT(mmc::mean_response_time(10.0, 1.0, c - 1), 1.05);
  }
}

TEST(Mmc, MinServersImpossibleReturnsZero) {
  // t_ref below the bare service time is unattainable.
  EXPECT_EQ(mmc::min_servers_for_response_time(1.0, 1.0, 0.5, 100), 0u);
}

// -- M/G/1 --------------------------------------------------------------------

TEST(Mg1, Scv1ReducesToMm1) {
  const double lambda = 6.0, mu = 10.0;
  EXPECT_NEAR(mg1::mean_response_time(lambda, 1.0 / mu, 1.0),
              mm1::mean_response_time(lambda, mu), 1e-9);
}

TEST(Mg1, DeterministicHalvesWaiting) {
  const double lambda = 6.0, es = 0.1;
  EXPECT_NEAR(mg1::mean_waiting_time(lambda, es, 0.0),
              0.5 * mg1::mean_waiting_time(lambda, es, 1.0), 1e-12);
}

TEST(Mg1, HeavyTailInflatesWaiting) {
  const double lambda = 6.0, es = 0.1;
  EXPECT_GT(mg1::mean_waiting_time(lambda, es, 10.0),
            mg1::mean_waiting_time(lambda, es, 1.0));
}

TEST(Mg1, UnstableThrows) {
  EXPECT_THROW((void)mg1::mean_waiting_time(10.0, 0.1, 1.0), std::invalid_argument);
  EXPECT_THROW((void)mg1::mean_waiting_time(1.0, 0.1, -1.0), std::invalid_argument);
}

TEST(Mg1, LittlesLaw) {
  EXPECT_NEAR(mg1::mean_number_in_system(5.0, 0.1, 2.0),
              5.0 * mg1::mean_response_time(5.0, 0.1, 2.0), 1e-12);
}

}  // namespace
}  // namespace gc
