#include "core/dcp.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace gc {
namespace {

ClusterConfig small_config() {
  ClusterConfig config;
  config.max_servers = 16;
  config.mu_max = 10.0;
  config.t_ref_s = 0.5;
  config.transition.boot_delay_s = 60.0;
  return config;
}

TEST(DcpParams, ValidationRules) {
  DcpParams params;
  EXPECT_NO_THROW(params.validate());
  params.long_period_s = 0.0;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params = {};
  params.short_period_s = params.long_period_s + 1.0;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params = {};
  params.safety_margin = 0.9;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params = {};
  params.scale_down_patience = 0;
  EXPECT_THROW(params.validate(), std::invalid_argument);
}

TEST(DcpPlanner, HorizonIncludesBootDelay) {
  const Provisioner solver(small_config());
  DcpParams params;
  params.long_period_s = 300.0;
  const DcpPlanner planner(&solver, params);
  EXPECT_DOUBLE_EQ(planner.prediction_horizon(), 360.0);
}

TEST(DcpPlanner, PlanServersAppliesMargin) {
  const Provisioner solver(small_config());
  DcpParams params;
  params.safety_margin = 1.5;
  const DcpPlanner planner(&solver, params);
  // With margin 1.5, planning for 60/s solves for 90/s.
  EXPECT_EQ(planner.plan_servers(60.0), solver.solve(90.0).servers);
}

TEST(DcpPlanner, PlanServersTrendsUpWithLoad) {
  // Not strictly monotone: ladder rounding can trade one server against a
  // frequency step.  But the trend must be upward and local dips small.
  const Provisioner solver(small_config());
  const DcpPlanner planner(&solver, {});
  unsigned prev = 0;
  for (double rate = 0.0; rate <= 110.0; rate += 5.0) {
    const unsigned m = planner.plan_servers(rate);
    EXPECT_GE(m + 1, prev) << rate;  // dips of at most one server
    prev = std::max(prev, m);
  }
  EXPECT_GT(planner.plan_servers(110.0), planner.plan_servers(5.0));
}

TEST(DcpPlanner, PlanSpeedTracksLoadForFixedServers) {
  const Provisioner solver(small_config());
  const DcpPlanner planner(&solver, {});
  const OperatingPoint slow = planner.plan_speed(10.0, 8);
  const OperatingPoint fast = planner.plan_speed(60.0, 8);
  EXPECT_LT(slow.speed, fast.speed);
  EXPECT_TRUE(slow.feasible);
  EXPECT_TRUE(fast.feasible);
}

TEST(DcpPlanner, PlanSpeedClampsServingCount) {
  const Provisioner solver(small_config());
  const DcpPlanner planner(&solver, {});
  // serving = 0 is clamped to 1; serving above M is clamped to M.
  EXPECT_NO_THROW((void)planner.plan_speed(1.0, 0));
  EXPECT_NO_THROW((void)planner.plan_speed(1.0, 99));
}

TEST(DcpPlanner, RejectsBadInputs) {
  const Provisioner solver(small_config());
  const DcpPlanner planner(&solver, {});
  EXPECT_DEATH((void)planner.plan_servers(-1.0), "bad predicted rate");
  EXPECT_DEATH((void)planner.plan_speed(-1.0, 1), "bad current rate");
}

TEST(HysteresisGate, IncreasesPassImmediately) {
  HysteresisGate gate(3);
  EXPECT_EQ(gate.propose(4, 8), 8u);
  EXPECT_EQ(gate.propose(8, 8), 8u);
}

TEST(HysteresisGate, DecreasesNeedPatience) {
  HysteresisGate gate(3);
  EXPECT_EQ(gate.propose(8, 4), 8u);  // streak 1
  EXPECT_EQ(gate.propose(8, 4), 8u);  // streak 2
  EXPECT_EQ(gate.propose(8, 4), 4u);  // streak 3: allowed
}

TEST(HysteresisGate, IncreaseResetsStreak) {
  HysteresisGate gate(2);
  EXPECT_EQ(gate.propose(8, 4), 8u);
  EXPECT_EQ(gate.propose(8, 9), 9u);  // growth resets
  EXPECT_EQ(gate.propose(9, 4), 9u);  // streak restarts
  EXPECT_EQ(gate.propose(9, 4), 4u);
}

TEST(HysteresisGate, PatienceOneShrinksImmediately) {
  HysteresisGate gate(1);
  EXPECT_EQ(gate.propose(8, 3), 3u);
}

TEST(HysteresisGate, RejectsZeroPatience) {
  EXPECT_THROW(HysteresisGate(0), std::invalid_argument);
}

TEST(BreakEven, FormulaAndEdgeCases) {
  const PowerModel pm;  // idle 150, off 5, transition 250
  TransitionModel tm;
  tm.boot_delay_s = 60.0;
  tm.shutdown_delay_s = 12.0;
  // (60+12)*250 / (150-5) = 18000/145.
  EXPECT_NEAR(tm.break_even_time_s(pm), 18000.0 / 145.0, 1e-9);

  PowerModelParams equal;
  equal.p_idle_watts = 5.0;
  equal.p_max_watts = 10.0;
  equal.p_off_watts = 5.0;  // off saves nothing
  const PowerModel pm_equal(equal);
  EXPECT_TRUE(std::isinf(tm.break_even_time_s(pm_equal)));
}

TEST(EffectivePatience, DisabledReturnsConfigured) {
  DcpParams params;
  params.scale_down_patience = 3;
  EXPECT_EQ(effective_patience(params, TransitionModel{}, PowerModel{}), 3u);
}

TEST(EffectivePatience, RaisedToBreakEvenHorizon) {
  DcpParams params;
  params.long_period_s = 60.0;
  params.short_period_s = 10.0;
  params.scale_down_patience = 1;
  params.auto_patience_from_break_even = true;
  TransitionModel tm;
  tm.boot_delay_s = 120.0;
  tm.shutdown_delay_s = 0.0;
  const PowerModel pm;  // t_be = 120*250/145 = 206.9 s -> ceil(/60) = 4
  EXPECT_EQ(effective_patience(params, tm, pm), 4u);
}

TEST(EffectivePatience, NeverLowersConfiguredPatience) {
  DcpParams params;
  params.long_period_s = 1000.0;
  params.short_period_s = 10.0;
  params.scale_down_patience = 5;
  params.auto_patience_from_break_even = true;
  TransitionModel tm;  // t_be small vs 1000 s period -> horizon 1
  EXPECT_EQ(effective_patience(params, tm, PowerModel{}), 5u);
}

TEST(EffectivePatience, InfiniteBreakEvenFallsBack) {
  DcpParams params;
  params.auto_patience_from_break_even = true;
  PowerModelParams p;
  p.p_idle_watts = 5.0;
  p.p_max_watts = 10.0;
  p.p_off_watts = 5.0;
  EXPECT_EQ(effective_patience(params, TransitionModel{}, PowerModel(p)),
            params.scale_down_patience);
}

TEST(DcpPlanner, BacklogAwareSpeedAtOrAboveBaseline) {
  const Provisioner solver(small_config());
  const DcpPlanner planner(&solver, {});
  const double rate = 40.0;
  const unsigned serving = 8;
  const OperatingPoint base = planner.plan_speed(rate, serving);
  // No backlog: Little's-law target is rate * t_ref; at or below it the
  // planned speed matches the plain short tick.
  const OperatingPoint no_excess =
      planner.plan_speed_with_backlog(rate, serving, rate * 0.5 * 0.5, 5.0);
  EXPECT_DOUBLE_EQ(no_excess.speed, base.speed);
  // Heavy backlog: plan strictly faster.
  const OperatingPoint heavy =
      planner.plan_speed_with_backlog(rate, serving, 200.0, 5.0);
  EXPECT_GT(heavy.speed, base.speed);
}

TEST(DcpPlanner, BacklogDrainBudgetMatchesFormula) {
  const Provisioner solver(small_config());
  const DcpPlanner planner(&solver, {});
  const double rate = 30.0;
  const double jobs = 100.0;
  const double horizon = 10.0;
  const double on_target = rate * solver.config().t_ref_s;  // 15
  const double effective = rate + (jobs - on_target) / horizon;  // 38.5
  EXPECT_DOUBLE_EQ(planner.plan_speed_with_backlog(rate, 8, jobs, horizon).speed,
                   planner.plan_speed(effective, 8).speed);
}

TEST(DcpPlanner, BacklogAwareRejectsBadInputs) {
  const Provisioner solver(small_config());
  const DcpPlanner planner(&solver, {});
  EXPECT_DEATH((void)planner.plan_speed_with_backlog(1.0, 1, -1.0, 5.0), "negative");
  EXPECT_DEATH((void)planner.plan_speed_with_backlog(1.0, 1, 1.0, 0.0), "horizon");
}

}  // namespace
}  // namespace gc
