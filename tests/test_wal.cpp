// WAL tests (cp/wal.h): append/replay round trips, the checkpoint +
// log-truncation discipline (restore(snapshot) + wal_replay lands on the
// uninterrupted facade's exact state), and the strict-loader contract for
// malformed logs.
#include "cp/wal.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "control/policies.h"
#include "core/provisioner.h"
#include "cp/control_plane.h"
#include "cp/snapshot.h"
#include "exp/scenario.h"

namespace gc {
namespace {

TelemetryFrame frame_at(double t, double rate, unsigned m) {
  TelemetryFrame f;
  f.sample_time = t;
  f.rate = rate;
  f.serving = m;
  f.committed = m;
  f.powered = m;
  f.available = 20;
  f.jobs_in_system = static_cast<std::uint64_t>(rate);
  return f;
}

bool same_command(const CommandFrame& a, const CommandFrame& b) {
  return a.kind == b.kind && a.gen == b.gen && a.era == b.era &&
         std::memcmp(&a.value, &b.value, sizeof a.value) == 0;
}

struct Rig {
  Rig() : solver(bench_cluster_config()) {
    popts.dcp = bench_dcp_params();
    options.actuator.enabled = true;
    options.actuator.ack_timeout_s = 5.0;
  }
  [[nodiscard]] ControlPlane fresh(std::uint64_t seed = 1) const {
    return ControlPlane(make_policy(PolicyKind::kCombinedDcp, &solver, popts),
                        options, Rng(seed, 14));
  }
  Provisioner solver;
  PolicyOptions popts;
  ControlPlaneOptions options;
};

TEST(Wal, StartsAsABareHeaderAndResets) {
  WalWriter wal;
  EXPECT_EQ(wal.bytes(), kWalMagic);
  EXPECT_EQ(wal.records(), 0u);
  wal.append_tick({5.0, false, false});
  EXPECT_GT(wal.bytes().size(), kWalMagic.size());
  EXPECT_EQ(wal.records(), 1u);
  wal.reset();
  EXPECT_EQ(wal.bytes(), kWalMagic);
  EXPECT_EQ(wal.records(), 0u);
}

TEST(Wal, RefusesToJournalCommands) {
  WalWriter wal;
  WireMessage msg;
  msg.type = WireMsgType::kCommand;
  msg.command = {CommandKind::kTarget, 4.0, 1, 0};
  EXPECT_THROW(wal.append(msg), WalError);
}

TEST(Wal, ReplayFeedsEveryInboundType) {
  Rig rig;
  WalWriter wal;
  wal.append_telemetry(frame_at(4.5, 25.0, 10));
  wal.append_tick({5.0, false, false});
  wal.append_ack({6.0, CommandKind::kTarget, 1});
  ControlPlane cp = rig.fresh();
  const WalReplayStats stats = wal_replay(cp, wal.bytes());
  EXPECT_EQ(stats.telemetry, 1u);
  EXPECT_EQ(stats.ticks, 1u);
  EXPECT_EQ(stats.acks, 1u);
  EXPECT_EQ(cp.telemetry_accepted(), 1u);
  EXPECT_EQ(cp.ticks(), 1u);
}

TEST(Wal, CheckpointPlusReplayLandsOnTheUninterruptedState) {
  // Uninterrupted reference run: telemetry + tick per step, checkpoint
  // cadence woven in exactly as a durable transport would.
  Rig rig;
  ControlPlane ref = rig.fresh();
  ControlPlane live = rig.fresh();
  WalWriter wal;
  std::string checkpoint = live.snapshot();

  constexpr int kSteps = 57;  // not a multiple of the checkpoint cadence
  constexpr int kEvery = 10;
  for (int i = 0; i < kSteps; ++i) {
    const double now = 5.0 * (i + 1);
    const TelemetryFrame f = frame_at(now - 0.5, 30.0 + (i * 13) % 17, 9);
    const TickMsg tick{now, i % 6 == 5, false};
    ref.accept_telemetry(f);
    (void)ref.on_tick(tick.now, tick.long_tick, tick.safe_mode);

    live.accept_telemetry(f);
    wal.append_telemetry(f);
    (void)live.on_tick(tick.now, tick.long_tick, tick.safe_mode);
    wal.append_tick(tick);
    if (live.ticks() % kEvery == 0) {
      checkpoint = live.snapshot();
      wal.reset();
    }
  }

  // Crash: rebuild from the last checkpoint + the log tail.
  ControlPlane recovered = rig.fresh(/*seed=*/42);
  recovered.restore(checkpoint);
  const WalReplayStats stats = wal_replay(recovered, wal.bytes());
  EXPECT_EQ(stats.ticks, static_cast<std::uint64_t>(kSteps % kEvery));
  EXPECT_EQ(recovered.ticks(), ref.ticks());
  EXPECT_EQ(recovered.telemetry_accepted(), ref.telemetry_accepted());

  // The proof that state matters: both facades now produce the identical
  // command stream for the same future.
  for (int i = 0; i < 20; ++i) {
    const double now = 5.0 * (kSteps + 1 + i);
    const TelemetryFrame f = frame_at(now - 0.5, 45.0 - i, 9);
    ref.accept_telemetry(f);
    recovered.accept_telemetry(f);
    const auto want = ref.on_tick(now, i % 6 == 0, false);
    const auto got = recovered.on_tick(now, i % 6 == 0, false);
    ASSERT_EQ(got.commands.size(), want.commands.size()) << "tick " << i;
    for (std::size_t c = 0; c < want.commands.size(); ++c) {
      EXPECT_TRUE(same_command(got.commands[c].frame, want.commands[c].frame))
          << "tick " << i << " command " << c;
    }
  }
}

// -- Strict loading -----------------------------------------------------------

TEST(Wal, RejectsShortBuffer) {
  Rig rig;
  ControlPlane cp = rig.fresh();
  EXPECT_THROW((void)wal_replay(cp, "GCCP"), WalError);
}

TEST(Wal, RejectsBadMagic) {
  WalWriter wal;
  wal.append_tick({5.0, false, false});
  std::string bytes = wal.bytes();
  bytes[0] ^= 0x20;
  Rig rig;
  ControlPlane cp = rig.fresh();
  EXPECT_THROW((void)wal_replay(cp, bytes), WalError);
}

TEST(Wal, RejectsEmbeddedCommandFrame) {
  std::string bytes{kWalMagic};
  append_command_frame(bytes, CommandFrame{CommandKind::kSpeed, 0.5, 3, 1});
  Rig rig;
  ControlPlane cp = rig.fresh();
  EXPECT_THROW((void)wal_replay(cp, bytes), WalError);
}

TEST(Wal, RejectsTruncatedTail) {
  WalWriter wal;
  wal.append_telemetry(frame_at(4.0, 20.0, 8));
  const std::size_t first_frame_end = wal.bytes().size();
  wal.append_tick({5.0, false, false});
  const std::string bytes = wal.bytes();
  Rig rig;
  for (std::size_t cut = kWalMagic.size() + 1; cut < bytes.size(); ++cut) {
    // A cut landing exactly on a frame boundary is a shorter valid log,
    // not a truncation — every other prefix must throw.
    if (cut == first_frame_end) continue;
    ControlPlane cp = rig.fresh();
    EXPECT_THROW((void)wal_replay(cp, bytes.substr(0, cut)), std::runtime_error)
        << "prefix of length " << cut << " replayed without error";
  }
}

TEST(Wal, RejectsCorruptedFrameViaCrc) {
  WalWriter wal;
  wal.append_telemetry(frame_at(4.0, 20.0, 8));
  std::string bytes = wal.bytes();
  bytes[kWalMagic.size() + 6] ^= 0x01;  // payload byte inside the frame
  Rig rig;
  ControlPlane cp = rig.fresh();
  EXPECT_THROW((void)wal_replay(cp, bytes), WireError);
}

}  // namespace
}  // namespace gc
