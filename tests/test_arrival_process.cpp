#include "workload/arrival_process.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

namespace gc {
namespace {

std::vector<double> drain(ArrivalProcess& process) {
  std::vector<double> ts;
  while (const auto t = process.next()) ts.push_back(*t);
  return ts;
}

TEST(Poisson, CountMatchesRateTimesHorizon) {
  PoissonProcess process(50.0, 1000.0, Rng(1));
  const auto ts = drain(process);
  // Poisson(50000): sd ~ 224; allow 5 sigma.
  EXPECT_NEAR(static_cast<double>(ts.size()), 50000.0, 5.0 * 224.0);
}

TEST(Poisson, StrictlyIncreasingWithinHorizon) {
  PoissonProcess process(10.0, 100.0, Rng(2));
  const auto ts = drain(process);
  for (std::size_t i = 1; i < ts.size(); ++i) EXPECT_GT(ts[i], ts[i - 1]);
  EXPECT_LE(ts.back(), 100.0);
}

TEST(Poisson, InterarrivalsAreExponential) {
  PoissonProcess process(4.0, 50000.0, Rng(3));
  const auto ts = drain(process);
  double sum = 0.0, sumsq = 0.0;
  for (std::size_t i = 1; i < ts.size(); ++i) {
    const double gap = ts[i] - ts[i - 1];
    sum += gap;
    sumsq += gap * gap;
  }
  const double n = static_cast<double>(ts.size() - 1);
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.25, 0.005);
  EXPECT_NEAR(var, 0.0625, 0.005);  // exp: var = mean^2
}

TEST(Poisson, ResetReproducesSequence) {
  PoissonProcess process(10.0, 100.0, Rng(4));
  const auto first = drain(process);
  process.reset();
  const auto second = drain(process);
  EXPECT_EQ(first, second);
}

TEST(Poisson, RejectsBadParams) {
  EXPECT_THROW(PoissonProcess(0.0, 10.0, Rng(1)), std::invalid_argument);
  EXPECT_THROW(PoissonProcess(1.0, 0.0, Rng(1)), std::invalid_argument);
}

TEST(Nhpp, ConstantProfileMatchesPoissonStatistics) {
  auto profile = std::make_shared<ConstantRate>(20.0);
  NhppProcess process(profile, 5000.0, Rng(5));
  const auto ts = drain(process);
  EXPECT_NEAR(static_cast<double>(ts.size()), 100000.0, 5.0 * 316.0);
}

TEST(Nhpp, CountTracksProfileIntegral) {
  // Sinusoid: integral over a full period is base * period.
  auto profile = std::make_shared<SinusoidalRate>(30.0, 20.0, 1000.0);
  NhppProcess process(profile, 10000.0, Rng(6));
  const auto ts = drain(process);
  EXPECT_NEAR(static_cast<double>(ts.size()), 300000.0, 5.0 * 548.0);
}

TEST(Nhpp, LocalIntensityFollowsProfile) {
  // Count arrivals in the high vs low half of a square-ish profile.
  auto profile = std::make_shared<PiecewiseLinearRate>(
      std::vector<PiecewiseLinearRate::Knot>{{0.0, 100.0}, {999.9, 100.0},
                                             {1000.0, 10.0}, {2000.0, 10.0}});
  NhppProcess process(profile, 2000.0, Rng(7), /*majorant_window_s=*/100.0);
  std::size_t high = 0, low = 0;
  while (const auto t = process.next()) {
    (*t < 1000.0 ? high : low) += 1;
  }
  EXPECT_NEAR(static_cast<double>(high), 100000.0, 5.0 * 316.0);
  EXPECT_NEAR(static_cast<double>(low), 10000.0, 5.0 * 100.0);
}

TEST(Nhpp, ZeroRateRegionsProduceNoArrivals) {
  auto profile = std::make_shared<PiecewiseLinearRate>(
      std::vector<PiecewiseLinearRate::Knot>{{0.0, 0.0}, {100.0, 0.0}, {100.1, 50.0},
                                             {200.0, 50.0}});
  NhppProcess process(profile, 200.0, Rng(8), 10.0);
  while (const auto t = process.next()) {
    EXPECT_GT(*t, 99.9);
  }
}

TEST(Nhpp, ResetReproduces) {
  auto profile = std::make_shared<SinusoidalRate>(10.0, 5.0, 100.0);
  NhppProcess process(profile, 500.0, Rng(9));
  const auto first = drain(process);
  process.reset();
  EXPECT_EQ(first, drain(process));
}

TEST(Mmpp, MeanRateFormula) {
  MmppProcess::Params params;
  params.rate0 = 10.0;
  params.rate1 = 100.0;
  params.switch_rate0 = 0.01;
  params.switch_rate1 = 0.03;
  MmppProcess process(params, 1.0, Rng(10));
  // pi0 = 0.03/0.04 = 0.75 -> mean = 0.75*10 + 0.25*100 = 32.5
  EXPECT_NEAR(process.mean_rate(), 32.5, 1e-12);
}

TEST(Mmpp, EmpiricalRateMatchesMeanRate) {
  MmppProcess::Params params;
  MmppProcess process(params, 100000.0, Rng(11));
  const auto ts = drain(process);
  const double empirical = static_cast<double>(ts.size()) / 100000.0;
  EXPECT_NEAR(empirical, process.mean_rate(), process.mean_rate() * 0.05);
}

TEST(Mmpp, ResetReproduces) {
  MmppProcess process({}, 1000.0, Rng(12));
  const auto first = drain(process);
  process.reset();
  EXPECT_EQ(first, drain(process));
}

TEST(DeterministicArrivals, FixedSpacing) {
  DeterministicProcess process(2.0, 10.0, 1.0);
  const auto ts = drain(process);
  ASSERT_EQ(ts.size(), 5u);  // 1,3,5,7,9
  EXPECT_DOUBLE_EQ(ts[0], 1.0);
  EXPECT_DOUBLE_EQ(ts[4], 9.0);
}

TEST(DeterministicArrivals, ResetWorks) {
  DeterministicProcess process(1.0, 3.0);
  const auto first = drain(process);
  EXPECT_EQ(first.size(), 4u);  // 0, 1, 2, 3
  process.reset();
  EXPECT_EQ(drain(process), first);
}

TEST(TraceArrivals, ReplaysInOrder) {
  TraceProcess process({0.5, 1.0, 1.0, 2.5});
  const auto ts = drain(process);
  ASSERT_EQ(ts.size(), 4u);
  EXPECT_DOUBLE_EQ(ts[2], 1.0);
}

TEST(TraceArrivals, RejectsUnsorted) {
  EXPECT_THROW(TraceProcess({1.0, 0.5}), std::invalid_argument);
  EXPECT_THROW(TraceProcess({-1.0}), std::invalid_argument);
}

TEST(TraceArrivals, EmptyTraceIsExhausted) {
  TraceProcess process({});
  EXPECT_FALSE(process.next().has_value());
}

}  // namespace
}  // namespace gc
