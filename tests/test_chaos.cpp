// Chaos-harness tests (cp/chaos.h): schedule parsing, the per-op fault
// injection over real socketpairs, and the drift oracle — every fault but
// drop must leave the command stream bit-identical to the clean run.
#include "cp/chaos.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "control/policies.h"
#include "core/provisioner.h"
#include "exp/scenario.h"

namespace gc {
namespace {

// -- Schedule parsing ---------------------------------------------------------

TEST(ChaosSchedule, ParsesEveryOp) {
  const auto events = parse_chaos_schedule(
      "drop@3, dup@10,reorder@20,corrupt@31,truncate@44,kill@50");
  ASSERT_EQ(events.size(), 6u);
  EXPECT_EQ(events[0].op, ChaosOp::kDrop);
  EXPECT_EQ(events[0].index, 3u);
  EXPECT_EQ(events[5].op, ChaosOp::kKill);
  EXPECT_EQ(events[5].index, 50u);
}

TEST(ChaosSchedule, EmptyTextIsAnEmptySchedule) {
  EXPECT_TRUE(parse_chaos_schedule("").empty());
  EXPECT_TRUE(parse_chaos_schedule("  ").empty());
}

TEST(ChaosSchedule, RejectsMalformedEntries) {
  EXPECT_THROW((void)parse_chaos_schedule("explode@3"), std::invalid_argument);
  EXPECT_THROW((void)parse_chaos_schedule("drop"), std::invalid_argument);
  EXPECT_THROW((void)parse_chaos_schedule("drop@"), std::invalid_argument);
  EXPECT_THROW((void)parse_chaos_schedule("drop@x"), std::invalid_argument);
  EXPECT_THROW((void)parse_chaos_schedule("drop@1,dup@1"), std::invalid_argument);
}

// -- The harness --------------------------------------------------------------

// A deterministic synthetic input stream: telemetry then tick per step,
// wavy rate so the policy actually issues commands.
std::vector<WireMessage> make_inputs(int steps) {
  std::vector<WireMessage> inputs;
  for (int i = 0; i < steps; ++i) {
    const double now = 5.0 * (i + 1);
    WireMessage t;
    t.type = WireMsgType::kTelemetry;
    t.telemetry.sample_time = now - 0.5;
    t.telemetry.rate = 30.0 + 20.0 * ((i * 7) % 11) / 11.0;
    t.telemetry.serving = 8 + i % 5;
    t.telemetry.committed = t.telemetry.serving;
    t.telemetry.powered = t.telemetry.serving;
    t.telemetry.available = 20;
    t.telemetry.jobs_in_system = 40;
    inputs.push_back(t);
    WireMessage k;
    k.type = WireMsgType::kTick;
    k.tick = {now, i % 6 == 5, false};
    inputs.push_back(k);
  }
  return inputs;
}

struct Rig {
  Rig() : solver(bench_cluster_config()) {
    popts.dcp = bench_dcp_params();
    options.actuator.enabled = true;
    options.actuator.ack_timeout_s = 5.0;
    factory = [this] {
      return make_policy(PolicyKind::kCombinedDcp, &solver, popts);
    };
  }
  ChaosReport run(const std::string& schedule, int steps = 60) const {
    ChaosOptions chaos;
    chaos.events = parse_chaos_schedule(schedule);
    chaos.checkpoint_every = 16;
    return run_chaos(make_inputs(steps), factory, options, Rng(1, 14), chaos);
  }
  Provisioner solver;
  PolicyOptions popts;
  ControlPlaneOptions options;
  ControllerFactory factory;
};

TEST(Chaos, CleanScheduleMatchesTheOracle) {
  const Rig rig;
  const ChaosReport report = rig.run("");
  EXPECT_EQ(report.inputs, 120u);
  EXPECT_EQ(report.episodes, 1u);
  EXPECT_EQ(report.drift_mismatches, 0u);
  EXPECT_TRUE(report.clean());
  EXPECT_GT(report.commands_chaos, 0u);
  EXPECT_EQ(report.commands_chaos, report.commands_clean);
}

TEST(Chaos, EveryFaultTypeLeavesZeroDrift) {
  const Rig rig;
  const ChaosReport report =
      rig.run("drop@10,dup@20,reorder@30,corrupt@41,truncate@53,kill@71");
  EXPECT_EQ(report.drops, 1u);
  EXPECT_EQ(report.dups, 1u);
  EXPECT_EQ(report.reorders, 1u);
  EXPECT_EQ(report.corrupts, 1u);
  EXPECT_EQ(report.truncates, 1u);
  EXPECT_EQ(report.kills, 1u);
  // corrupt + truncate + kill each tear a connection down.
  EXPECT_EQ(report.episodes, 4u);
  EXPECT_EQ(report.crc_errors, 1u);
  EXPECT_TRUE(report.clean()) << report.drift_mismatches << " mismatches";
}

TEST(Chaos, DupAndReorderOnATickAreSkippedNotInjected) {
  const Rig rig;
  // Odd indices are ticks in the telemetry/tick interleaving.
  const ChaosReport report = rig.run("dup@11,reorder@21");
  EXPECT_EQ(report.dups, 0u);
  EXPECT_EQ(report.reorders, 0u);
  EXPECT_EQ(report.skipped_on_tick, 2u);
  EXPECT_TRUE(report.clean());
}

TEST(Chaos, KillRightAfterACheckpointBoundaryRecovers) {
  const Rig rig;
  // checkpoint_every = 16 ticks = input index 32; kill on the frame after.
  const ChaosReport report = rig.run("kill@33");
  EXPECT_EQ(report.kills, 1u);
  EXPECT_TRUE(report.clean());
}

TEST(Chaos, BackToBackKillsRecover) {
  const Rig rig;
  const ChaosReport report = rig.run("kill@5,kill@7,kill@91");
  EXPECT_EQ(report.kills, 3u);
  EXPECT_EQ(report.episodes, 4u);
  EXPECT_TRUE(report.clean());
}

TEST(Chaos, ReportRendersCounters) {
  const Rig rig;
  const ChaosReport report = rig.run("drop@10,kill@20");
  const CountersSnapshot snap = report.counters_snapshot();
  auto value_of = [&](const std::string& name) -> std::uint64_t {
    for (const auto& [key, value] : snap.counters) {
      if (key == name) return value;
    }
    ADD_FAILURE() << "missing counter " << name;
    return ~0ull;
  };
  EXPECT_EQ(value_of("cp.chaos.inputs"), 120u);
  EXPECT_EQ(value_of("cp.chaos.drops"), 1u);
  EXPECT_EQ(value_of("cp.chaos.kills"), 1u);
  EXPECT_EQ(value_of("cp.drift.mismatches"), 0u);
}

TEST(Chaos, AttributesEveryConsumedFrameToItsOp) {
  const Rig rig;
  const ChaosReport report =
      rig.run("drop@10,dup@20,reorder@30,corrupt@41,truncate@53");
  // The sum invariant: every frame an op consumed is charged exactly once,
  // so attribution.total() equals the consuming ops (dup/reorder/kill eat
  // nothing).
  EXPECT_EQ(report.attribution.total(),
            report.drops + report.corrupts + report.truncates);
  // Index 10 is telemetry (even); 41/53 are ticks (odd) torn by
  // corrupt/truncate: check the per-cause cells by name.
  const CountersSnapshot snap = report.counters_snapshot();
  auto value_of = [&](const std::string& name) -> std::uint64_t {
    for (const auto& [key, value] : snap.counters) {
      if (key == name) return value;
    }
    ADD_FAILURE() << "missing counter " << name;
    return ~0ull;
  };
  EXPECT_EQ(value_of("cp.drop.total"), report.attribution.total());
  EXPECT_EQ(value_of("cp.drop.telemetry.chaos_drop"), 1u);
  std::uint64_t sum = 0;
  for (const auto& [key, value] : snap.counters) {
    if (key.rfind("cp.drop.", 0) == 0 && key != "cp.drop.total") sum += value;
  }
  EXPECT_EQ(sum, report.attribution.total());
}

TEST(Chaos, DupAndReorderPreserveLifecycleDedup) {
  const Rig rig;
  // Duplicated/reordered telemetry exercises the newest-wins dedup in the
  // facade: (gen, kind) command identity must keep the chaos stream's
  // command sequence bit-identical to the clean oracle — same generations,
  // same order — and nothing gets charged to attribution (nothing is
  // consumed, only repeated or swapped).
  const ChaosReport report = rig.run("dup@10,dup@30,reorder@50");
  EXPECT_EQ(report.dups, 2u);
  EXPECT_EQ(report.reorders, 1u);
  EXPECT_TRUE(report.clean()) << report.drift_mismatches << " mismatches";
  EXPECT_EQ(report.attribution.total(), 0u);
}

TEST(Chaos, WireLedgerLandsInTheSnapshot) {
  const Rig rig;
  const ChaosReport report = rig.run("corrupt@41");
  EXPECT_EQ(report.wire.crc_errors, 1u);
  const CountersSnapshot snap = report.counters_snapshot();
  auto value_of = [&](const std::string& name) -> std::uint64_t {
    for (const auto& [key, value] : snap.counters) {
      if (key == name) return value;
    }
    ADD_FAILURE() << "missing counter " << name;
    return ~0ull;
  };
  EXPECT_EQ(value_of("cp.wire.crc_errors"), 1u);
  EXPECT_GT(value_of("cp.wire.accepted.telemetry"), 0u);
  EXPECT_GT(value_of("cp.wire.accepted.tick"), 0u);
  EXPECT_GT(value_of("cp.wire.commands_sent"), 0u);
}

TEST(Chaos, RejectsEventIndexPastTheInputs) {
  const Rig rig;
  ChaosOptions chaos;
  chaos.events = parse_chaos_schedule("drop@500");
  EXPECT_THROW((void)run_chaos(make_inputs(10), rig.factory, rig.options,
                               Rng(1, 14), chaos),
               std::invalid_argument);
}

TEST(Chaos, RejectsCommandFramesInTheInputs) {
  const Rig rig;
  std::vector<WireMessage> inputs = make_inputs(2);
  WireMessage bad;
  bad.type = WireMsgType::kCommand;
  inputs.push_back(bad);
  EXPECT_THROW((void)run_chaos(inputs, rig.factory, rig.options, Rng(1, 14),
                               ChaosOptions{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace gc
