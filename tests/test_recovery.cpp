// Controller crash-recovery tests (ControllerRecoveryMode,
// sim/control_channel.h + the kControllerRecover handler in
// sim/simulation.cpp): a warm restart — snapshot, tear down, rebuild,
// restore — must be bit-identical to the historical preserve path, a cold
// restart must run to completion on a regressed clock without tripping
// invariants, and both must keep the era monotone so post-outage commands
// clear safe mode's incarnation gate.
#include <gtest/gtest.h>

#include <cmath>

#include "control/policies.h"
#include "sim/simulation.h"
#include "workload/workload.h"

namespace gc {
namespace {

ClusterConfig config8() {
  ClusterConfig config;
  config.max_servers = 8;
  config.mu_max = 10.0;
  config.t_ref_s = 0.5;
  return config;
}

SimResult run(ControllerRecoveryMode mode, bool random_outages = false) {
  const ClusterConfig config = config8();
  const Provisioner provisioner(config);
  PolicyOptions popts;
  const auto controller = make_policy(PolicyKind::kCombinedDcp, &provisioner, popts);
  Workload workload =
      Workload::poisson_exponential(20.0, config.mu_max, 3000.0, /*seed=*/3);
  ClusterOptions cluster;
  cluster.num_servers = config.max_servers;
  cluster.initial_active = config.max_servers;
  cluster.dispatch_seed = 11;
  SimulationOptions sim;
  sim.t_ref_s = config.t_ref_s;
  sim.channel.enabled = true;
  sim.actuator.enabled = true;
  sim.actuator.ack_timeout_s = 5.0;
  // Two scripted outages (the second overlapping nothing) plus, when
  // asked, a random fail-stop process layered on top.
  sim.controller_faults.script = {{600.0, 120.0}, {1800.0, 200.0}};
  if (random_outages) {
    sim.controller_faults.mtbf_s = 700.0;
    sim.controller_faults.mttr_s = 90.0;
  }
  sim.controller_faults.recovery = mode;
  return run_simulation(workload, cluster, *controller, sim);
}

void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.completed_jobs, b.completed_jobs);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.ticks_missed, b.ticks_missed);
  EXPECT_EQ(a.command_retries, b.command_retries);
  EXPECT_DOUBLE_EQ(a.mean_response_s, b.mean_response_s);
  EXPECT_DOUBLE_EQ(a.p99_response_s, b.p99_response_s);
  EXPECT_DOUBLE_EQ(a.energy.total_j(), b.energy.total_j());
  EXPECT_DOUBLE_EQ(a.safe_mode_time_s, b.safe_mode_time_s);
}

TEST(Recovery, WarmRestartIsBitIdenticalToPreserve) {
  // The headline invariant: rebuilding the facade from its own snapshot at
  // the recovery instant is a state transplant, not an approximation.
  expect_identical(run(ControllerRecoveryMode::kPreserve),
                   run(ControllerRecoveryMode::kWarmRestart));
}

TEST(Recovery, WarmRestartSurvivesRandomOutageProcesses) {
  // Random outages recover at arbitrary phases of the control cycle —
  // mid-backoff, with commands in flight, right after a long tick — which
  // is exactly where a lossy snapshot field would surface.
  expect_identical(run(ControllerRecoveryMode::kPreserve, /*random_outages=*/true),
                   run(ControllerRecoveryMode::kWarmRestart, /*random_outages=*/true));
}

TEST(Recovery, ColdRestartRunsToCompletionAndDiverges) {
  const SimResult preserve = run(ControllerRecoveryMode::kPreserve);
  const SimResult cold = run(ControllerRecoveryMode::kColdRestart);
  // Amnesia is not a crash: the run finishes, serves its jobs and the
  // outage accounting (a pre-recovery property) is untouched.
  EXPECT_GT(cold.completed_jobs, 10000u);
  EXPECT_EQ(cold.ticks_missed, preserve.ticks_missed);
  EXPECT_TRUE(std::isfinite(cold.energy.total_j()));
  // ... but the controller genuinely lost its memory: the trajectory
  // parts from preserve's after the first recovery.
  EXPECT_NE(cold.energy.total_j(), preserve.energy.total_j());
}

TEST(Recovery, ColdRestartDeterminism) {
  // Same seeds, same amnesia: the cold path must stay reproducible.
  expect_identical(run(ControllerRecoveryMode::kColdRestart),
                   run(ControllerRecoveryMode::kColdRestart));
}

}  // namespace
}  // namespace gc
