// Dynamic validation of the heterogeneous solver: pin its operating point
// on the grouped simulator and check that the measured per-class response
// times and powers match the closed-form predictions.
#include "exp/hetero_sim.h"

#include <gtest/gtest.h>

#include "queueing/mm1.h"

namespace gc {
namespace {

ServerClass make_class(const char* name, unsigned count, double mu, double p_idle,
                       double p_max) {
  ServerClass sc;
  sc.name = name;
  sc.count = count;
  sc.mu_max = mu;
  sc.power.p_idle_watts = p_idle;
  sc.power.p_max_watts = p_max;
  sc.power.utilization_gated = false;
  return sc;
}

HeteroConfig mixed_config() {
  HeteroConfig config;
  config.t_ref_s = 0.5;
  config.classes.push_back(make_class("new", 6, 12.0, 100.0, 200.0));
  config.classes.push_back(make_class("old", 6, 10.0, 180.0, 300.0));
  return config;
}

TEST(HeteroSim, PerClassResponseMatchesPrediction) {
  const HeteroConfig config = mixed_config();
  const HeteroProvisioner solver(config);
  const double lambda = 90.0;  // forces both classes active
  const HeteroOperatingPoint point = solver.solve(lambda);
  ASSERT_TRUE(point.feasible);
  ASSERT_GT(point.allocations[0].servers, 0u);
  ASSERT_GT(point.allocations[1].servers, 0u);

  const HeteroSimResult result =
      run_hetero_validation(config, point, lambda, 20000.0, 500.0, 7);
  EXPECT_EQ(result.dropped, 0u);
  EXPECT_GT(result.completed, 500000u);
  for (std::size_t c = 0; c < 2; ++c) {
    SCOPED_TRACE(c);
    ASSERT_GT(result.classes[c].completed, 1000u);
    // Random split of Poisson arrivals keeps each server an exact M/M/1,
    // so the measured mean must sit on the analytic prediction.
    EXPECT_NEAR(result.classes[c].mean_response_s,
                result.classes[c].predicted_response_s,
                result.classes[c].predicted_response_s * 0.05);
  }
}

TEST(HeteroSim, ClusterPowerMatchesPrediction) {
  const HeteroConfig config = mixed_config();
  const HeteroProvisioner solver(config);
  const double lambda = 60.0;
  const HeteroOperatingPoint point = solver.solve(lambda);
  ASSERT_TRUE(point.feasible);
  const HeteroSimResult result =
      run_hetero_validation(config, point, lambda, 5000.0, 200.0, 9);
  // Ungated power is utilization-independent: measured mean power should
  // match the solver's prediction almost exactly.
  EXPECT_NEAR(result.mean_power_w, point.power_watts, point.power_watts * 0.02);
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_NEAR(result.classes[c].mean_power_w, result.classes[c].predicted_power_w,
                std::max(result.classes[c].predicted_power_w * 0.03, 2.0))
        << c;
  }
}

TEST(HeteroSim, SingleActiveClassStillValidates) {
  const HeteroConfig config = mixed_config();
  const HeteroProvisioner solver(config);
  const double lambda = 20.0;  // efficient class only
  const HeteroOperatingPoint point = solver.solve(lambda);
  ASSERT_TRUE(point.feasible);
  ASSERT_EQ(point.allocations[1].servers, 0u);
  const HeteroSimResult result =
      run_hetero_validation(config, point, lambda, 5000.0, 200.0, 11);
  EXPECT_EQ(result.dropped, 0u);
  EXPECT_EQ(result.classes[1].completed, 0u);
  EXPECT_NEAR(result.classes[0].mean_response_s,
              result.classes[0].predicted_response_s,
              result.classes[0].predicted_response_s * 0.06);
}

TEST(HeteroSim, DeterministicInSeed) {
  const HeteroConfig config = mixed_config();
  const HeteroProvisioner solver(config);
  const HeteroOperatingPoint point = solver.solve(50.0);
  const HeteroSimResult a = run_hetero_validation(config, point, 50.0, 1000.0, 0.0, 3);
  const HeteroSimResult b = run_hetero_validation(config, point, 50.0, 1000.0, 0.0, 3);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.mean_response_s, b.mean_response_s);
}

TEST(HeteroSim, RejectsInfeasiblePoint) {
  const HeteroConfig config = mixed_config();
  const HeteroProvisioner solver(config);
  const HeteroOperatingPoint bad = solver.solve(1e6);  // best effort, infeasible
  EXPECT_DEATH(
      (void)run_hetero_validation(config, bad, 1e6, 100.0, 0.0, 1), "infeasible");
}

}  // namespace
}  // namespace gc
