#include "stats/batch_means.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "stats/distributions.h"
#include "stats/rng.h"

namespace gc {
namespace {

TEST(TQuantile, TableValues) {
  EXPECT_NEAR(t_quantile(0.95, 1), 12.706, 1e-3);
  EXPECT_NEAR(t_quantile(0.95, 10), 2.228, 1e-3);
  EXPECT_NEAR(t_quantile(0.99, 5), 4.032, 1e-3);
  EXPECT_NEAR(t_quantile(0.90, 30), 1.697, 1e-3);
}

TEST(TQuantile, InterpolatesBetweenRows) {
  const double t12 = t_quantile(0.95, 12);
  EXPECT_LT(t12, t_quantile(0.95, 10));
  EXPECT_GT(t12, t_quantile(0.95, 15));
}

TEST(TQuantile, LargeDfApproachesNormal) {
  EXPECT_NEAR(t_quantile(0.95, 10000), 1.96, 0.01);
  EXPECT_NEAR(t_quantile(0.99, 10000), 2.576, 0.01);
  EXPECT_NEAR(t_quantile(0.90, 10000), 1.645, 0.01);
}

TEST(BatchMeans, RejectsBadConstruction) {
  EXPECT_THROW(BatchMeans(0, 10), std::invalid_argument);
  EXPECT_THROW(BatchMeans(10, 1), std::invalid_argument);
}

TEST(BatchMeans, GrandMeanMatches) {
  BatchMeans bm(10, 8);
  double sum = 0.0;
  for (int i = 0; i < 1000; ++i) {
    bm.add(static_cast<double>(i % 7));
    sum += i % 7;
  }
  EXPECT_NEAR(bm.grand_mean(), sum / 1000.0, 1e-12);
}

TEST(BatchMeans, IntervalInfiniteWithFewBatches) {
  BatchMeans bm(100, 8);
  for (int i = 0; i < 50; ++i) bm.add(1.0);
  EXPECT_TRUE(std::isinf(bm.interval().half_width));
}

TEST(BatchMeans, CoversTrueMeanForIidData) {
  // 95% CI should contain the true mean in the vast majority of seeds.
  int covered = 0;
  constexpr int kTrials = 40;
  for (int trial = 0; trial < kTrials; ++trial) {
    BatchMeans bm(200, 32);
    const Exponential dist(1.0);
    Rng rng(1000 + static_cast<std::uint64_t>(trial));
    for (int i = 0; i < 20000; ++i) bm.add(dist.sample(rng));
    if (bm.interval(0.95).contains(1.0)) ++covered;
  }
  EXPECT_GE(covered, kTrials - 5);
}

TEST(BatchMeans, BatchCollapseKeepsGrandMean) {
  BatchMeans bm(10, 4);  // forces repeated collapses
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = (i * 37 % 11) * 0.5;
    bm.add(x);
    sum += x;
  }
  EXPECT_NEAR(bm.grand_mean(), sum / 10000.0, 1e-9);
  EXPECT_LT(bm.completed_batches(), 4u);
}

TEST(ConfidenceInterval, ContainsAndBounds) {
  const ConfidenceInterval ci{10.0, 2.0};
  EXPECT_DOUBLE_EQ(ci.lower(), 8.0);
  EXPECT_DOUBLE_EQ(ci.upper(), 12.0);
  EXPECT_TRUE(ci.contains(9.0));
  EXPECT_FALSE(ci.contains(12.5));
}

}  // namespace
}  // namespace gc
