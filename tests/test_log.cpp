#include "util/log.h"

#include <gtest/gtest.h>

namespace gc {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrip) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(Log, FilteredMessagesDoNotFormat) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  // Would throw on mismatched arguments if the formatter ran.
  EXPECT_NO_THROW(log_debug("{} {}", 1, 2));
  EXPECT_NO_THROW(log_info("value={}", 3));
  EXPECT_NO_THROW(log_warn("{}", "w"));
  EXPECT_NO_THROW(log_error("{}", 1.5));
}

TEST(Log, EmitsWhenEnabled) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  // Just exercise the path; output goes to stderr.
  EXPECT_NO_THROW(log_debug("debug {}", 1));
  EXPECT_NO_THROW(log_info("info {}", 2));
}

}  // namespace
}  // namespace gc
