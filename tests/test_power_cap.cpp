#include "core/power_cap.h"

#include <gtest/gtest.h>

#include <cmath>

namespace gc {
namespace {

ClusterConfig small_config() {
  ClusterConfig config;
  config.max_servers = 16;
  config.mu_max = 10.0;
  config.t_ref_s = 0.5;
  config.power.utilization_gated = false;  // the paper's power law
  return config;
}

class PowerCapTest : public ::testing::Test {
 protected:
  PowerCapTest() : solver_(small_config()), cap_solver_(&solver_) {}
  Provisioner solver_;
  PowerCapSolver cap_solver_;
};

TEST_F(PowerCapTest, MinPowerForRateMatchesSolve) {
  for (double lambda : {0.0, 20.0, 64.0, 120.0}) {
    const auto power = cap_solver_.min_power_for_rate(lambda);
    ASSERT_TRUE(power.has_value()) << lambda;
    EXPECT_DOUBLE_EQ(*power, solver_.solve(lambda).power_watts);
  }
  EXPECT_FALSE(cap_solver_.min_power_for_rate(1000.0).has_value());
}

TEST_F(PowerCapTest, MaxSupportableRateIsMonotoneInCap) {
  double prev = -1.0;
  for (double cap = 200.0; cap <= 4200.0; cap += 200.0) {
    const double rate = cap_solver_.max_supportable_rate(cap);
    EXPECT_GE(rate, prev) << cap;
    prev = rate;
  }
}

TEST_F(PowerCapTest, MaxSupportableRateSaturatesAtFeasibility) {
  // A cap covering all-on full-speed operation supports the whole feasible
  // range.
  const double full_power = solver_.evaluate(128.0, 16, 1.0).power_watts;
  EXPECT_DOUBLE_EQ(cap_solver_.max_supportable_rate(full_power + 1.0),
                   solver_.config().max_feasible_arrival_rate());
}

TEST_F(PowerCapTest, MaxSupportableRateZeroUnderTinyCap) {
  EXPECT_DOUBLE_EQ(cap_solver_.max_supportable_rate(0.0), 0.0);
  // Even an idle minimal cluster needs >= one server's idle power.
  EXPECT_DOUBLE_EQ(cap_solver_.max_supportable_rate(50.0), 0.0);
}

TEST_F(PowerCapTest, MaxSupportableRateIsTight) {
  const double cap = 2000.0;
  const double rate = cap_solver_.max_supportable_rate(cap);
  ASSERT_GT(rate, 0.0);
  EXPECT_LE(solver_.solve(rate * 0.999).power_watts, cap);
  // Just above the supported rate the optimal power exceeds the cap
  // (modulo the bisection tolerance).
  EXPECT_GT(solver_.solve(std::min(rate * 1.01, 128.0)).power_watts, cap);
}

TEST_F(PowerCapTest, BestPointUnderCapRespectsBothConstraints) {
  // The cheapest SLA-feasible power at 64 jobs/s is 2040 W (m=8, s=1);
  // every cap below that must be reported as "shed load" instead.
  const double lambda = 64.0;
  for (double cap : {4000.0, 3000.0, 2400.0, 2100.0}) {
    const auto pt = cap_solver_.best_point_under_cap(lambda, cap);
    ASSERT_TRUE(pt.has_value()) << cap;
    EXPECT_LE(pt->power_watts, cap + 1e-6);
    EXPECT_TRUE(pt->feasible);
    EXPECT_LE(pt->response_time_s, solver_.config().t_ref_s * (1.0 + 1e-9));
  }
}

TEST_F(PowerCapTest, ResponseDegradesMonotonicallyAsCapTightens) {
  const double lambda = 64.0;
  double prev_t = 0.0;
  for (double cap = 4000.0; cap >= 2100.0; cap -= 300.0) {
    const auto pt = cap_solver_.best_point_under_cap(lambda, cap);
    ASSERT_TRUE(pt.has_value()) << cap;
    EXPECT_GE(pt->response_time_s, prev_t - 1e-9) << cap;
    prev_t = pt->response_time_s;
  }
}

TEST_F(PowerCapTest, LooseCapRecoversUnconstrainedBestResponse) {
  // With an unlimited budget the best response point is everything-on at
  // full speed.
  const double lambda = 64.0;
  const auto pt = cap_solver_.best_point_under_cap(lambda, 1e9);
  ASSERT_TRUE(pt.has_value());
  EXPECT_EQ(pt->servers, 16u);
  EXPECT_DOUBLE_EQ(pt->speed, 1.0);
}

TEST_F(PowerCapTest, ImpossibleCapReturnsNullopt) {
  EXPECT_FALSE(cap_solver_.best_point_under_cap(64.0, 100.0).has_value());
}

TEST_F(PowerCapTest, ContinuousLadderAlsoWorks) {
  ClusterConfig config = small_config();
  config.ladder = FrequencyLadder::continuous(0.1);
  const Provisioner solver(config);
  const PowerCapSolver cap_solver(&solver);
  const auto pt = cap_solver.best_point_under_cap(64.0, 2500.0);
  ASSERT_TRUE(pt.has_value());
  EXPECT_LE(pt->power_watts, 2500.0 + 1e-6);
  EXPECT_TRUE(pt->feasible);
  // Tighter cap -> worse (but still feasible) response.
  const auto loose = cap_solver.best_point_under_cap(64.0, 4000.0);
  ASSERT_TRUE(loose.has_value());
  EXPECT_LE(loose->response_time_s, pt->response_time_s + 1e-9);
}

TEST_F(PowerCapTest, RejectsBadInputs) {
  EXPECT_DEATH((void)cap_solver_.max_supportable_rate(-1.0), "bad power cap");
  EXPECT_DEATH((void)cap_solver_.best_point_under_cap(-1.0, 100.0), "bad lambda");
}

}  // namespace
}  // namespace gc
