// obs/inspect.h — artifact loading, metric resolution, check parsing and
// evaluation, the summary/diff reports, plus the audit JSONL read path the
// inspector depends on.
#include "obs/inspect.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/audit.h"
#include "obs/counters.h"
#include "obs/timeseries.h"

namespace gc {
namespace {

class InspectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("gc_inspect_test_" + std::string(::testing::UnitTest::GetInstance()
                                                 ->current_test_info()
                                                 ->name()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string prefix(const std::string& name) const {
    return (dir_ / name).string();
  }

  // Writes PREFIX.counters.json with a couple of counters and a gauge.
  void write_counters(const std::string& pfx, std::uint64_t shed) const {
    CountersSnapshot snapshot;
    snapshot.add_counter("sim.jobs.admitted", 1000);
    snapshot.add_counter("sim.jobs.shed", shed);
    snapshot.add_gauge("solver.cache.hit_rate", 0.75);
    std::ofstream out(pfx + ".counters.json");
    out << snapshot.to_json() << '\n';
  }

  // Writes PREFIX.timeseries.csv with three periods of known values.
  void write_timeseries(const std::string& pfx) const {
    TimeSeriesRecorder recorder;
    const double rates[3] = {10.0, 20.0, 60.0};
    for (int i = 0; i < 3; ++i) {
      TimeSeriesSample s;
      s.time = 5.0 * i;
      s.observed_rate = rates[i];
      s.d_shed = static_cast<std::uint64_t>(i);
      recorder.append(s);
    }
    recorder.write_csv(pfx + ".timeseries.csv");
  }

  void write_audit(const std::string& pfx) const {
    DecisionAuditLog log;
    AuditRecord warm;
    warm.time_s = 5.0;
    warm.observed_rate = 12.5;
    warm.serving = 8;
    log.append(warm);
    AuditRecord long_tick;
    long_tick.time_s = 60.0;
    long_tick.long_tick = true;
    long_tick.target_set = true;
    long_tick.target_servers = 6;
    long_tick.delta_servers = -2;
    long_tick.safe_mode = true;
    log.append(long_tick);
    log.write_jsonl(pfx + ".audit.jsonl");
  }

  std::filesystem::path dir_;
};

TEST_F(InspectTest, LoadThrowsWhenNoArtifactExists) {
  EXPECT_THROW(RunArtifacts::load(prefix("missing")), std::runtime_error);
}

TEST_F(InspectTest, LoadPicksUpWhateverSubsetExists) {
  const std::string pfx = prefix("partial");
  write_counters(pfx, 25);
  const RunArtifacts run = RunArtifacts::load(pfx);
  EXPECT_FALSE(run.empty());
  ASSERT_TRUE(run.counters.has_value());
  EXPECT_FALSE(run.audit.has_value());
  EXPECT_FALSE(run.timeseries.has_value());
  EXPECT_EQ(run.counters->counter_or("sim.jobs.shed", 0), 25u);
}

TEST_F(InspectTest, LookupResolvesCountersGaugesAndColumns) {
  const std::string pfx = prefix("full");
  write_counters(pfx, 25);
  write_timeseries(pfx);
  write_audit(pfx);
  const RunArtifacts run = RunArtifacts::load(pfx);
  ASSERT_TRUE(run.counters && run.audit && run.timeseries);

  EXPECT_EQ(lookup_metric(run, "sim.jobs.shed"), 25.0);
  EXPECT_EQ(lookup_metric(run, "solver.cache.hit_rate"), 0.75);
  // Bare column name means :mean; explicit aggregates cover the rest.
  EXPECT_EQ(lookup_metric(run, "observed_rate"), 30.0);
  EXPECT_EQ(lookup_metric(run, "observed_rate:mean"), 30.0);
  EXPECT_EQ(lookup_metric(run, "observed_rate:min"), 10.0);
  EXPECT_EQ(lookup_metric(run, "observed_rate:max"), 60.0);
  EXPECT_EQ(lookup_metric(run, "observed_rate:last"), 60.0);
  EXPECT_EQ(lookup_metric(run, "d_shed:sum"), 3.0);
  EXPECT_EQ(lookup_metric(run, "no.such.metric"), std::nullopt);
  EXPECT_EQ(lookup_metric(run, "observed_rate:median"), std::nullopt);
}

TEST_F(InspectTest, LookupPrefersTheLiteralNameOverTheAggregateSplit) {
  // The lifecycle quantile gauges carry a colon in their literal name
  // (cp.lifecycle.ack_latency:p99): a full-name match must win before the
  // NAME:AGG timeseries fallback tries to split on it.
  const std::string pfx = prefix("colon");
  CountersSnapshot snapshot;
  snapshot.add_gauge("cp.lifecycle.ack_latency:p99", 23.5);
  snapshot.add_gauge("cp.lifecycle.retransmit_rate", 0.25);
  std::ofstream(pfx + ".counters.json") << snapshot.to_json() << '\n';
  const RunArtifacts run = RunArtifacts::load(pfx);
  EXPECT_EQ(lookup_metric(run, "cp.lifecycle.ack_latency:p99"), 23.5);
  EXPECT_EQ(lookup_metric(run, "cp.lifecycle.retransmit_rate"), 0.25);
}

TEST_F(InspectTest, ParsesLifecycleJsonlAndPrintsTheView) {
  const std::string pfx = prefix("lifecycle");
  std::ofstream(pfx + ".lifecycle.jsonl")
      << "{\"kind\":\"target\",\"gen\":1,\"id\":2,\"era\":0,\"value\":16,"
         "\"issued_s\":10,\"obs_age_s\":0.5,\"retransmits\":2,"
         "\"frame_drops\":1,\"last_sent_s\":20,\"acked_s\":21,"
         "\"applied_s\":20.5,\"state\":\"completed\"}\n"
         "{\"kind\":\"speed\",\"gen\":1,\"id\":3,\"era\":0,\"value\":0.75,"
         "\"issued_s\":10,\"obs_age_s\":0,\"retransmits\":0,"
         "\"frame_drops\":0,\"last_sent_s\":10,\"acked_s\":-1,"
         "\"applied_s\":-1,\"state\":\"in-flight\"}\n";
  const std::vector<LifecycleRow> rows =
      read_lifecycle_jsonl(pfx + ".lifecycle.jsonl");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].kind, "target");
  EXPECT_EQ(rows[0].id, 2u);
  EXPECT_EQ(rows[0].retransmits, 2u);
  EXPECT_DOUBLE_EQ(rows[0].acked_s, 21.0);
  EXPECT_EQ(rows[1].state, "in-flight");
  EXPECT_DOUBLE_EQ(rows[1].acked_s, -1.0);

  std::ostringstream os;
  print_lifecycle(os, pfx);
  const std::string text = os.str();
  EXPECT_NE(text.find("command lifecycles"), std::string::npos);
  EXPECT_NE(text.find("lifecycle summary"), std::string::npos);
  EXPECT_NE(text.find("completed"), std::string::npos);
  EXPECT_NE(text.find("in-flight"), std::string::npos);
}

TEST_F(InspectTest, MalformedLifecycleJsonlThrows) {
  EXPECT_THROW((void)parse_lifecycle_jsonl("{\"kind\":\"target\",}"),
               std::runtime_error);
  EXPECT_THROW((void)parse_lifecycle_jsonl("not json"), std::runtime_error);
}

TEST_F(InspectTest, ParseCheckCoversTheFourOperators) {
  const MetricCheck le = parse_check("win_p95_t_s:max<=2.5");
  EXPECT_EQ(le.metric, "win_p95_t_s:max");
  EXPECT_TRUE(le.upper);
  EXPECT_FALSE(le.strict);
  EXPECT_DOUBLE_EQ(le.bound, 2.5);

  const MetricCheck ge = parse_check("sim.jobs.admitted>=100");
  EXPECT_FALSE(ge.upper);
  EXPECT_FALSE(ge.strict);
  EXPECT_DOUBLE_EQ(ge.bound, 100.0);

  EXPECT_TRUE(parse_check("a<1").strict);
  EXPECT_TRUE(parse_check("a<1").upper);
  EXPECT_TRUE(parse_check("a>1e-3").strict);
  EXPECT_FALSE(parse_check("a>1e-3").upper);

  EXPECT_THROW(parse_check(""), std::invalid_argument);
  EXPECT_THROW(parse_check("metric"), std::invalid_argument);
  EXPECT_THROW(parse_check("<=5"), std::invalid_argument);
  EXPECT_THROW(parse_check("metric<="), std::invalid_argument);
  EXPECT_THROW(parse_check("metric<=not_a_number"), std::invalid_argument);
}

TEST_F(InspectTest, EvaluateCheckGatesAgainstTheArtifacts) {
  const std::string pfx = prefix("gate");
  write_counters(pfx, 25);
  write_timeseries(pfx);
  const RunArtifacts run = RunArtifacts::load(pfx);

  const CheckResult pass = evaluate_check(run, parse_check("sim.jobs.shed<=25"));
  EXPECT_TRUE(pass.passed);
  EXPECT_EQ(pass.value, 25.0);
  EXPECT_FALSE(evaluate_check(run, parse_check("sim.jobs.shed<25")).passed);
  EXPECT_TRUE(evaluate_check(run, parse_check("observed_rate:max<=60")).passed);
  EXPECT_FALSE(evaluate_check(run, parse_check("observed_rate:max<60")).passed);
  EXPECT_TRUE(evaluate_check(run, parse_check("observed_rate:min>=10")).passed);
  EXPECT_THROW((void)evaluate_check(run, parse_check("no.such.metric<=1")),
               std::runtime_error);
}

TEST_F(InspectTest, AuditJsonlRoundTripsBitExactly) {
  const std::string pfx = prefix("audit");
  write_audit(pfx);
  const DecisionAuditLog log = DecisionAuditLog::read_jsonl(pfx + ".audit.jsonl");
  ASSERT_EQ(log.size(), 2u);
  const AuditRecord& warm = log.records()[0];
  EXPECT_DOUBLE_EQ(warm.time_s, 5.0);
  EXPECT_FALSE(warm.long_tick);
  EXPECT_DOUBLE_EQ(warm.observed_rate, 12.5);
  EXPECT_EQ(warm.serving, 8u);
  const AuditRecord& decision = log.records()[1];
  EXPECT_TRUE(decision.long_tick);
  EXPECT_TRUE(decision.target_set);
  EXPECT_EQ(decision.target_servers, 6u);
  EXPECT_EQ(decision.delta_servers, -2);
  EXPECT_TRUE(decision.safe_mode);
  // The re-serialized log is byte-identical: parse(emit(x)) is exact.
  std::ifstream in(pfx + ".audit.jsonl");
  std::stringstream original;
  original << in.rdbuf();
  EXPECT_EQ(log.to_jsonl(), original.str());
  // Unknown keys are ignored (newer logs load into older tooling); malformed
  // lines are not.
  EXPECT_EQ(DecisionAuditLog::from_jsonl(
                "{\"t\": 1, \"tick\": \"short\", \"future_field\": 7}\n")
                .size(),
            1u);
  EXPECT_THROW(DecisionAuditLog::from_jsonl("{\"t\": oops}\n"),
               std::runtime_error);
}

TEST_F(InspectTest, SummaryReportCoversEveryPresentArtifact) {
  const std::string pfx = prefix("summary");
  write_counters(pfx, 25);
  write_timeseries(pfx);
  write_audit(pfx);
  std::ostringstream os;
  print_summary(os, RunArtifacts::load(pfx));
  const std::string report = os.str();
  EXPECT_NE(report.find("sim.jobs.shed"), std::string::npos);
  EXPECT_NE(report.find("solver.cache.hit_rate"), std::string::npos);
  EXPECT_NE(report.find("observed_rate"), std::string::npos);
  EXPECT_NE(report.find("audit"), std::string::npos);
}

TEST_F(InspectTest, DiffReportShowsBothRunsAndDeltas) {
  const std::string a = prefix("run_a");
  const std::string b = prefix("run_b");
  write_counters(a, 25);
  write_counters(b, 75);
  write_timeseries(a);
  write_timeseries(b);
  std::ostringstream os;
  print_diff(os, RunArtifacts::load(a), RunArtifacts::load(b));
  const std::string report = os.str();
  EXPECT_NE(report.find("sim.jobs.shed"), std::string::npos);
  EXPECT_NE(report.find("25"), std::string::npos);
  EXPECT_NE(report.find("75"), std::string::npos);
}

}  // namespace
}  // namespace gc
