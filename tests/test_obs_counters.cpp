// MetricRegistry / CountersSnapshot: handle semantics, snapshot freezing,
// and the JSON round trip the CI artifact pipeline depends on.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/counters.h"

namespace gc {
namespace {

TEST(MetricRegistry, CounterHandleIsStableAndCreateOnFirstUse) {
  MetricRegistry registry;
  Counter& a = registry.counter("sim.events.arrival");
  Counter& b = registry.counter("sim.events.arrival");
  EXPECT_EQ(&a, &b);
  a.inc();
  b.inc(41);
  EXPECT_EQ(a.value(), 42u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricRegistry, HandleAddressesSurviveGrowth) {
  MetricRegistry registry;
  Counter& first = registry.counter("c0");
  // Force enough registrations that vector-backed storage would reallocate.
  for (int i = 1; i < 200; ++i) {
    std::string name = "c";
    name += std::to_string(i);
    (void)registry.counter(name);
  }
  first.inc(7);
  EXPECT_EQ(registry.counter("c0").value(), 7u);
}

TEST(MetricRegistry, GaugeStoresLastValue) {
  MetricRegistry registry;
  Gauge& g = registry.gauge("solver.cache.hit_rate");
  g.set(0.25);
  g.set(0.75);
  EXPECT_DOUBLE_EQ(registry.gauge("solver.cache.hit_rate").value(), 0.75);
}

TEST(MetricRegistry, NameCollisionAcrossKindsThrows) {
  MetricRegistry registry;
  (void)registry.counter("x");
  EXPECT_THROW((void)registry.gauge("x"), std::invalid_argument);
  (void)registry.gauge("y");
  EXPECT_THROW((void)registry.counter("y"), std::invalid_argument);
}

TEST(MetricRegistry, SnapshotFreezesValuesInRegistrationOrder) {
  MetricRegistry registry;
  registry.counter("b").inc(2);
  registry.counter("a").inc(1);
  registry.gauge("g").set(3.5);
  const CountersSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "b");  // registration order, not sorted
  EXPECT_EQ(snap.counters[1].first, "a");
  EXPECT_EQ(snap.counter_or("a", 0), 1u);
  EXPECT_EQ(snap.counter_or("missing", 99), 99u);
  EXPECT_DOUBLE_EQ(snap.gauge_or("g", 0.0), 3.5);
  // The snapshot is a copy: later increments do not leak into it.
  registry.counter("b").inc();
  EXPECT_EQ(snap.counter_or("b", 0), 2u);
}

TEST(CountersSnapshot, JsonRoundTripIsExact) {
  CountersSnapshot snap;
  snap.add_counter("sim.events.arrival", 123456789012345ULL);
  snap.add_counter("zero", 0);
  snap.add_counter("max", std::numeric_limits<std::uint64_t>::max());
  snap.add_gauge("hit_rate", 0.6);
  snap.add_gauge("tiny", 1e-300);
  snap.add_gauge("third", 1.0 / 3.0);  // not exactly representable in decimal
  snap.add_gauge("negative", -2.5);
  const CountersSnapshot back = CountersSnapshot::from_json(snap.to_json());
  EXPECT_EQ(back, snap);
}

TEST(CountersSnapshot, JsonEscapesAwkwardNames) {
  CountersSnapshot snap;
  snap.add_counter("weird \"name\"\\with\nescapes", 1);
  const CountersSnapshot back = CountersSnapshot::from_json(snap.to_json());
  EXPECT_EQ(back, snap);
}

TEST(CountersSnapshot, FromJsonRejectsMalformedInput) {
  EXPECT_THROW((void)CountersSnapshot::from_json(""), std::runtime_error);
  EXPECT_THROW((void)CountersSnapshot::from_json("[]"), std::runtime_error);
  EXPECT_THROW((void)CountersSnapshot::from_json("{\"counters\": {\"a\": }}"),
               std::runtime_error);
}

TEST(CountersSnapshot, EmptySnapshotRoundTrips) {
  const CountersSnapshot empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(CountersSnapshot::from_json(empty.to_json()), empty);
}

}  // namespace
}  // namespace gc
