// Validates the discrete-event simulator against closed-form queueing
// results — the foundation the whole evaluation rests on (DESIGN.md §2).
#include <gtest/gtest.h>

#include "queueing/mg1.h"
#include "queueing/mm1.h"
#include "queueing/mmc.h"
#include "sim/simulation.h"
#include "workload/workload.h"

namespace gc {
namespace {

// Pins the cluster at a fixed operating point (no power management).
class StaticController final : public Controller {
 public:
  StaticController(unsigned servers, double speed) : servers_(servers), speed_(speed) {}
  [[nodiscard]] double short_period_s() const override { return 1e7; }
  [[nodiscard]] double long_period_s() const override { return 1e7; }
  [[nodiscard]] ControlAction on_short_tick(const ControlContext&) override { return {}; }
  [[nodiscard]] ControlAction on_long_tick(const ControlContext&) override {
    ControlAction action;
    action.active_target = servers_;
    action.speed = speed_;
    return action;
  }
  [[nodiscard]] const char* name() const override { return "static"; }

 private:
  unsigned servers_;
  double speed_;
};

ClusterOptions single_server_options() {
  ClusterOptions options;
  options.num_servers = 1;
  options.initial_active = 1;
  return options;
}

SimulationOptions long_run(double warmup = 500.0) {
  SimulationOptions options;
  options.t_ref_s = 1.0;
  options.warmup_s = warmup;
  return options;
}

TEST(SimValidation, Mm1MeanResponseTime) {
  // lambda=7, mu=10 -> T = 1/3.
  Workload workload = Workload::poisson_exponential(7.0, 10.0, 20000.0, 101);
  StaticController controller(1, 1.0);
  const SimResult result =
      run_simulation(workload, single_server_options(), controller, long_run());
  EXPECT_GT(result.completed_jobs, 100000u);
  EXPECT_NEAR(result.mean_response_s, mm1::mean_response_time(7.0, 10.0), 0.02);
}

TEST(SimValidation, Mm1ResponseQuantiles) {
  Workload workload = Workload::poisson_exponential(5.0, 10.0, 20000.0, 102);
  StaticController controller(1, 1.0);
  const SimResult result =
      run_simulation(workload, single_server_options(), controller, long_run());
  EXPECT_NEAR(result.p95_response_s, mm1::response_time_quantile(5.0, 10.0, 0.95), 0.06);
  EXPECT_NEAR(result.p99_response_s, mm1::response_time_quantile(5.0, 10.0, 0.99), 0.15);
}

TEST(SimValidation, Mm1AtReducedSpeed) {
  // s=0.5 halves the service rate: lambda=3, mu_eff=5 -> T = 0.5.
  Workload workload = Workload::poisson_exponential(3.0, 10.0, 20000.0, 103);
  StaticController controller(1, 0.5);
  const SimResult result =
      run_simulation(workload, single_server_options(), controller, long_run());
  EXPECT_NEAR(result.mean_response_s, mm1::mean_response_time(3.0, 5.0), 0.03);
}

TEST(SimValidation, Md1MatchesPollaczekKhinchine) {
  // Deterministic sizes: scv=0 halves the M/M/1 waiting time.
  const double lambda = 7.0;
  const double es = 0.1;
  Workload workload(
      std::make_unique<PoissonProcess>(lambda, 20000.0, Rng(104, 1)),
      Distribution::deterministic(es), Rng(104, 2));
  StaticController controller(1, 1.0);
  const SimResult result =
      run_simulation(workload, single_server_options(), controller, long_run());
  EXPECT_NEAR(result.mean_response_s, mg1::mean_response_time(lambda, es, 0.0), 0.015);
}

TEST(SimValidation, MG1BoundedParetoHeavierThanExp) {
  const double lambda = 5.0;
  // Bounded Pareto with mean ~0.1 and high variance.
  const Distribution sizes = Distribution::bounded_pareto(1.5, 0.02, 10.0);
  Workload workload(std::make_unique<PoissonProcess>(lambda, 30000.0, Rng(105, 1)),
                    sizes, Rng(105, 2));
  StaticController controller(1, 1.0);
  SimulationOptions options = long_run();
  const SimResult heavy = run_simulation(workload, single_server_options(), controller,
                                         options);
  Workload exp_workload = Workload::poisson_exponential(lambda, 1.0 / sizes.mean(),
                                                        30000.0, 106);
  StaticController controller2(1, 1.0);
  const SimResult light = run_simulation(exp_workload, single_server_options(),
                                         controller2, options);
  EXPECT_GT(heavy.mean_response_s, light.mean_response_s);
}

TEST(SimValidation, JsqClusterBoundedByTheory) {
  // 4 servers, lambda=24, mu=10: rho=0.6.
  // JSQ sits between M/M/4 (perfect sharing) and 4 independent M/M/1s
  // fed lambda/4 each (random split).
  const double lambda = 24.0, mu = 10.0;
  ClusterOptions options;
  options.num_servers = 4;
  options.initial_active = 4;
  options.dispatch = DispatchPolicy::kJoinShortestQueue;
  Workload workload = Workload::poisson_exponential(lambda, mu, 8000.0, 107);
  StaticController controller(4, 1.0);
  const SimResult result = run_simulation(workload, options, controller, long_run());
  const double lower = mmc::mean_response_time(lambda, mu, 4);
  const double upper = mm1::mean_response_time(lambda / 4.0, mu);
  EXPECT_GT(result.mean_response_s, lower * 0.95);
  EXPECT_LT(result.mean_response_s, upper * 1.05);
}

TEST(SimValidation, RandomDispatchMatchesSplitMm1) {
  // Random split of a Poisson stream is Poisson: each server is exactly
  // M/M/1 with lambda/m.
  const double lambda = 24.0, mu = 10.0;
  ClusterOptions options;
  options.num_servers = 4;
  options.initial_active = 4;
  options.dispatch = DispatchPolicy::kRandom;
  Workload workload = Workload::poisson_exponential(lambda, mu, 20000.0, 108);
  StaticController controller(4, 1.0);
  const SimResult result = run_simulation(workload, options, controller, long_run());
  EXPECT_NEAR(result.mean_response_s, mm1::mean_response_time(6.0, 10.0), 0.02);
}

TEST(SimValidation, BusyEnergyMatchesUtilization) {
  // Busy fraction of an M/M/1 server is rho; busy energy = rho * T * P_busy.
  const double lambda = 6.0, mu = 10.0;
  Workload workload = Workload::poisson_exponential(lambda, mu, 20000.0, 109);
  StaticController controller(1, 1.0);
  SimulationOptions options = long_run();
  const SimResult result =
      run_simulation(workload, single_server_options(), controller, options);
  const double rho = lambda / mu;
  const double expected_busy = rho * result.sim_time_s * 250.0;
  EXPECT_NEAR(result.energy.busy_j, expected_busy, expected_busy * 0.03);
  const double expected_idle = (1.0 - rho) * result.sim_time_s * 150.0;
  EXPECT_NEAR(result.energy.idle_j, expected_idle, expected_idle * 0.05);
}

TEST(SimValidation, MeanPowerEqualsEnergyOverTime) {
  Workload workload = Workload::poisson_exponential(5.0, 10.0, 5000.0, 110);
  StaticController controller(1, 1.0);
  const SimResult result =
      run_simulation(workload, single_server_options(), controller, long_run());
  EXPECT_NEAR(result.mean_power_w, result.energy.total_j() / result.sim_time_s, 1e-9);
}

TEST(SimValidation, DeterministicSeedsReproduce) {
  auto run = [] {
    Workload workload = Workload::poisson_exponential(5.0, 10.0, 2000.0, 111);
    StaticController controller(1, 1.0);
    return run_simulation(workload, single_server_options(), controller, long_run(100.0));
  };
  const SimResult a = run();
  const SimResult b = run();
  EXPECT_EQ(a.completed_jobs, b.completed_jobs);
  EXPECT_DOUBLE_EQ(a.mean_response_s, b.mean_response_s);
  EXPECT_DOUBLE_EQ(a.energy.total_j(), b.energy.total_j());
}

TEST(SimValidation, WarmupExcludesTransient) {
  // Start all 8 servers ON but route to a cluster sized for the load; with
  // a warmup, reported energy excludes the initial all-on segment.
  Workload w1 = Workload::poisson_exponential(5.0, 10.0, 4000.0, 112);
  Workload w2 = Workload::poisson_exponential(5.0, 10.0, 4000.0, 112);
  StaticController c1(1, 1.0);
  StaticController c2(1, 1.0);
  ClusterOptions options;
  options.num_servers = 8;
  options.initial_active = 8;
  SimulationOptions no_warmup = long_run(0.0);
  SimulationOptions with_warmup = long_run(1000.0);
  const SimResult full = run_simulation(w1, options, c1, no_warmup);
  const SimResult trimmed = run_simulation(w2, options, c2, with_warmup);
  EXPECT_LT(trimmed.sim_time_s, full.sim_time_s);
  EXPECT_LT(trimmed.energy.total_j(), full.energy.total_j());
}

TEST(SimValidation, TimelineRecordsWhenEnabled) {
  Workload workload = Workload::poisson_exponential(5.0, 10.0, 1000.0, 113);
  StaticController controller(1, 1.0);
  SimulationOptions options = long_run(0.0);
  options.record_interval_s = 50.0;
  const SimResult result =
      run_simulation(workload, single_server_options(), controller, options);
  ASSERT_GE(result.timeline.size(), 15u);
  for (const TimelinePoint& p : result.timeline) {
    EXPECT_GE(p.arrival_rate, 0.0);
    EXPECT_EQ(p.serving, 1u);
    EXPECT_GT(p.power_watts, 0.0);
  }
  // Average measured arrival rate tracks lambda.
  double sum = 0.0;
  for (const TimelinePoint& p : result.timeline) sum += p.arrival_rate;
  EXPECT_NEAR(sum / static_cast<double>(result.timeline.size()), 5.0, 0.5);
}

TEST(SimValidation, LittlesLawOnTimeline) {
  Workload workload = Workload::poisson_exponential(7.0, 10.0, 20000.0, 114);
  StaticController controller(1, 1.0);
  SimulationOptions options = long_run(500.0);
  options.record_interval_s = 10.0;
  const SimResult result =
      run_simulation(workload, single_server_options(), controller, options);
  double n_sum = 0.0;
  std::size_t count = 0;
  for (const TimelinePoint& p : result.timeline) {
    if (p.time < 500.0) continue;
    n_sum += p.jobs_in_system;
    ++count;
  }
  const double mean_n = n_sum / static_cast<double>(count);
  // L = lambda * T.
  EXPECT_NEAR(mean_n, 7.0 * result.mean_response_s, 0.25);
}

TEST(SimValidation, LittlesLawOnTimeWeightedMetric) {
  // L = lambda * T on the built-in time-weighted jobs-in-system metric.
  const double lambda = 7.0, mu = 10.0;
  Workload workload = Workload::poisson_exponential(lambda, mu, 20000.0, 211);
  StaticController controller(1, 1.0);
  const SimResult result =
      run_simulation(workload, single_server_options(), controller, long_run());
  EXPECT_NEAR(result.mean_jobs_in_system, lambda * result.mean_response_s, 0.12);
  EXPECT_NEAR(result.mean_jobs_in_system, mm1::mean_number_in_system(lambda, mu), 0.25);
}

TEST(SimValidation, MmppWorkloadRunsAndIsBurstier) {
  // MMPP arrivals with the same mean rate as Poisson produce longer
  // queues (burstiness penalty) — a sanity check on the MMPP plumbing.
  MmppProcess::Params params;
  params.rate0 = 2.0;
  params.rate1 = 12.0;
  params.switch_rate0 = 1.0 / 50.0;
  params.switch_rate1 = 1.0 / 50.0;  // mean rate 7.0
  Workload bursty(std::make_unique<MmppProcess>(params, 20000.0, Rng(212, 1)),
                  Distribution::exponential(10.0), Rng(212, 2));
  StaticController c1(1, 1.0);
  const SimResult mmpp_result =
      run_simulation(bursty, single_server_options(), c1, long_run());
  Workload smooth = Workload::poisson_exponential(7.0, 10.0, 20000.0, 213);
  StaticController c2(1, 1.0);
  const SimResult poisson_result =
      run_simulation(smooth, single_server_options(), c2, long_run());
  EXPECT_GT(mmpp_result.mean_response_s, poisson_result.mean_response_s * 1.2);
}

TEST(SimValidation, HardStopTerminatesOverloadedRun) {
  // lambda > mu: unstable; hard stop must end the run.
  Workload workload = Workload::poisson_exponential(20.0, 10.0, 100000.0, 115);
  StaticController controller(1, 1.0);
  SimulationOptions options;
  options.t_ref_s = 1.0;
  options.hard_stop_s = 500.0;
  const SimResult result =
      run_simulation(workload, single_server_options(), controller, options);
  EXPECT_LE(result.sim_time_s, 501.0);
  EXPECT_GT(result.completed_jobs, 0u);
}

}  // namespace
}  // namespace gc
