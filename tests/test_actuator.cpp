// Unit tests for the ack/retry command actuator (control/actuator):
// generation stamping, timeout-driven retransmission with bounded
// exponential backoff and jitter, budget exhaustion reconciling to acked
// state, stale-ack accounting, and lane supersession.
#include <gtest/gtest.h>

#include <limits>
#include <optional>
#include <stdexcept>
#include <vector>

#include "control/actuator.h"
#include "stats/rng.h"

namespace gc {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

ActuatorOptions on_options() {
  ActuatorOptions opts;
  opts.enabled = true;
  opts.ack_timeout_s = 1.0;
  opts.backoff_cap_s = 8.0;
  opts.jitter_frac = 0.0;  // deterministic retry times unless a test opts in
  opts.retry_budget = 3;
  return opts;
}

CommandActuator make_actuator(const ActuatorOptions& opts) {
  return CommandActuator(opts, Rng(123, 14));
}

TEST(ActuatorOptions, ValidatesRanges) {
  ActuatorOptions opts;
  EXPECT_NO_THROW(opts.validate());
  opts.ack_timeout_s = 0.0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts.ack_timeout_s = kInf;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts = ActuatorOptions{};
  opts.backoff_base_s = -1.0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts = ActuatorOptions{};
  opts.backoff_cap_s = 0.0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts = ActuatorOptions{};
  opts.jitter_frac = 1.5;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts.jitter_frac = -0.1;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
  opts = ActuatorOptions{};
  opts.retry_budget = 0;
  EXPECT_THROW(opts.validate(), std::invalid_argument);
}

TEST(ActuatorOptions, ConstructorValidates) {
  ActuatorOptions opts;
  opts.retry_budget = 0;
  EXPECT_THROW(make_actuator(opts), std::invalid_argument);
}

TEST(Actuator, GenerationsAreMonotonicPerLane) {
  CommandActuator act = make_actuator(on_options());
  const Command t1 = act.issue(0.0, CommandKind::kTarget, 8.0, /*era=*/0);
  const Command s1 = act.issue(0.0, CommandKind::kSpeed, 0.9, /*era=*/0);
  const Command t2 = act.issue(1.0, CommandKind::kTarget, 9.0, /*era=*/0);
  EXPECT_EQ(t1.gen, 1u);
  EXPECT_EQ(s1.gen, 1u);  // lanes are independent
  EXPECT_EQ(t2.gen, 2u);
  EXPECT_EQ(t1.kind, CommandKind::kTarget);
  EXPECT_EQ(s1.kind, CommandKind::kSpeed);
}

TEST(Actuator, DisabledStillStampsButNeverRetries) {
  ActuatorOptions opts = on_options();
  opts.enabled = false;
  CommandActuator act = make_actuator(opts);
  const Command c1 = act.issue(0.0, CommandKind::kTarget, 8.0, 0);
  const Command c2 = act.issue(0.0, CommandKind::kTarget, 9.0, 0);
  EXPECT_EQ(c1.gen, 1u);
  EXPECT_EQ(c2.gen, 2u);  // reorder protection stays on
  EXPECT_FALSE(act.outstanding(CommandKind::kTarget));
  std::vector<Command> due;
  act.poll(100.0, due);
  EXPECT_TRUE(due.empty());
  EXPECT_EQ(act.retries(), 0u);
  // Acks for fire-and-forget commands read as stale, not as progress.
  act.on_ack(1.0, CommandKind::kTarget, c1.gen);
  EXPECT_EQ(act.acked(), 0u);
  EXPECT_EQ(act.stale_acks(), 1u);
}

TEST(Actuator, AckClearsOutstandingAndRecordsValue) {
  CommandActuator act = make_actuator(on_options());
  const Command cmd = act.issue(0.0, CommandKind::kTarget, 12.0, 0);
  EXPECT_TRUE(act.outstanding(CommandKind::kTarget));
  EXPECT_EQ(act.acked_value(CommandKind::kTarget), std::nullopt);
  act.on_ack(0.5, CommandKind::kTarget, cmd.gen);
  EXPECT_FALSE(act.outstanding(CommandKind::kTarget));
  EXPECT_EQ(act.acked_value(CommandKind::kTarget), std::optional<double>(12.0));
  EXPECT_EQ(act.acked(), 1u);
  // A duplicate ack (retransmitted ack for the same gen) is stale.
  act.on_ack(0.6, CommandKind::kTarget, cmd.gen);
  EXPECT_EQ(act.acked(), 1u);
  EXPECT_EQ(act.stale_acks(), 1u);
}

TEST(Actuator, RetransmitsAfterTimeoutWithSameGeneration) {
  CommandActuator act = make_actuator(on_options());
  const Command cmd = act.issue(0.0, CommandKind::kSpeed, 0.8, /*era=*/2);
  std::vector<Command> due;
  act.poll(0.5, due);  // before the ack timeout: nothing due
  EXPECT_TRUE(due.empty());
  act.poll(1.0, due);  // timeout reached
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].gen, cmd.gen);  // re-asserts, does not invent a new command
  EXPECT_EQ(due[0].value, 0.8);
  EXPECT_EQ(due[0].era, 2u);
  EXPECT_EQ(act.retries(), 1u);
}

TEST(Actuator, BackoffDoublesAndIsCapped) {
  ActuatorOptions opts = on_options();
  opts.ack_timeout_s = 1.0;
  opts.backoff_base_s = 2.0;
  opts.backoff_cap_s = 5.0;
  opts.retry_budget = 10;
  CommandActuator act = make_actuator(opts);
  (void)act.issue(0.0, CommandKind::kTarget, 4.0, 0);
  // With jitter off the retry times are exact: first at the ack timeout,
  // then base, 2*base, capped: 1, +2, +4, +5, +5, ...
  const double expected[] = {1.0, 3.0, 7.0, 12.0, 17.0};
  double probe = 0.0;
  for (double t : expected) {
    std::vector<Command> due;
    // Just before the deadline nothing fires...
    probe = t - 0.01;
    act.poll(probe, due);
    EXPECT_TRUE(due.empty()) << "premature retry before t=" << t;
    // ...and at the deadline exactly one retransmission fires.
    act.poll(t, due);
    ASSERT_EQ(due.size(), 1u) << "missing retry at t=" << t;
  }
  EXPECT_EQ(act.retries(), 5u);
}

TEST(Actuator, JitterStretchesBackoffWithinBound) {
  ActuatorOptions opts = on_options();
  opts.ack_timeout_s = 1.0;
  opts.backoff_base_s = 2.0;
  opts.backoff_cap_s = 100.0;
  opts.jitter_frac = 0.5;
  opts.retry_budget = 100;
  CommandActuator act = make_actuator(opts);
  (void)act.issue(0.0, CommandKind::kTarget, 4.0, 0);
  // First retransmission fires at exactly t=1 (the un-jittered timeout);
  // the *next* deadline is 2.0 * (1 + 0.5*U[0,1)) after it.
  std::vector<Command> due;
  act.poll(1.0, due);
  ASSERT_EQ(due.size(), 1u);
  // Nothing can fire before the minimum jittered wait...
  due.clear();
  act.poll(1.0 + 2.0 - 0.01, due);
  EXPECT_TRUE(due.empty());
  // ...and the maximum wait bounds the deadline from above.
  act.poll(1.0 + 2.0 * 1.5, due);
  EXPECT_EQ(due.size(), 1u);
}

TEST(Actuator, BudgetExhaustionReconcilesToAckedState) {
  ActuatorOptions opts = on_options();
  opts.retry_budget = 2;
  CommandActuator act = make_actuator(opts);
  // First command acked: establishes fleet truth.
  const Command c1 = act.issue(0.0, CommandKind::kTarget, 10.0, 0);
  act.on_ack(0.1, CommandKind::kTarget, c1.gen);
  // Second command never acked: retries then exhausts.
  (void)act.issue(1.0, CommandKind::kTarget, 16.0, 0);
  std::vector<Command> due;
  for (double t = 2.0; t < 40.0; t += 1.0) act.poll(t, due);
  EXPECT_EQ(act.retries(), 2u);
  EXPECT_EQ(act.exhausted(), 1u);
  EXPECT_FALSE(act.outstanding(CommandKind::kTarget));
  // Reconciliation: the reported state is what the fleet confirmed.
  EXPECT_EQ(act.acked_value(CommandKind::kTarget), std::optional<double>(10.0));
}

TEST(Actuator, SupersededCommandStopsRetryingAndItsAckIsStale) {
  CommandActuator act = make_actuator(on_options());
  const Command c1 = act.issue(0.0, CommandKind::kTarget, 10.0, 0);
  const Command c2 = act.issue(0.5, CommandKind::kTarget, 12.0, 0);
  EXPECT_GT(c2.gen, c1.gen);
  // The late ack for the superseded command is stale and changes nothing.
  act.on_ack(0.7, CommandKind::kTarget, c1.gen);
  EXPECT_EQ(act.stale_acks(), 1u);
  EXPECT_TRUE(act.outstanding(CommandKind::kTarget));
  EXPECT_EQ(act.acked_value(CommandKind::kTarget), std::nullopt);
  // Only the new command retransmits.
  std::vector<Command> due;
  act.poll(2.0, due);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].gen, c2.gen);
  act.on_ack(2.1, CommandKind::kTarget, c2.gen);
  EXPECT_EQ(act.acked_value(CommandKind::kTarget), std::optional<double>(12.0));
}

TEST(Actuator, AckForWrongLaneIsStale) {
  CommandActuator act = make_actuator(on_options());
  const Command cmd = act.issue(0.0, CommandKind::kTarget, 10.0, 0);
  act.on_ack(0.1, CommandKind::kSpeed, cmd.gen);
  EXPECT_EQ(act.stale_acks(), 1u);
  EXPECT_TRUE(act.outstanding(CommandKind::kTarget));
}

TEST(Actuator, BothLanesRetryIndependently) {
  CommandActuator act = make_actuator(on_options());
  (void)act.issue(0.0, CommandKind::kTarget, 10.0, 0);
  (void)act.issue(0.0, CommandKind::kSpeed, 0.75, 0);
  std::vector<Command> due;
  act.poll(1.0, due);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_NE(static_cast<int>(due[0].kind), static_cast<int>(due[1].kind));
}

TEST(Actuator, NoJitterConfigurationNeverDrawsRandomness) {
  // Two actuators sharing options but seeded differently must behave
  // identically when jitter_frac == 0 — the determinism contract.
  ActuatorOptions opts = on_options();
  opts.retry_budget = 4;
  CommandActuator a(opts, Rng(1, 14));
  CommandActuator b(opts, Rng(2, 14));
  (void)a.issue(0.0, CommandKind::kTarget, 10.0, 0);
  (void)b.issue(0.0, CommandKind::kTarget, 10.0, 0);
  for (double t = 0.5; t < 30.0; t += 0.5) {
    std::vector<Command> da;
    std::vector<Command> db;
    a.poll(t, da);
    b.poll(t, db);
    EXPECT_EQ(da.size(), db.size()) << "diverged at t=" << t;
  }
  EXPECT_EQ(a.retries(), b.retries());
}

TEST(Actuator, ToStringNamesKinds) {
  EXPECT_STREQ(to_string(CommandKind::kTarget), "target");
  EXPECT_STREQ(to_string(CommandKind::kSpeed), "speed");
}

}  // namespace
}  // namespace gc
