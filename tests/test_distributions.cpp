#include "stats/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "stats/accumulators.h"

namespace gc {
namespace {

constexpr int kSamples = 200000;

template <typename D>
MeanVarAccumulator sample_stats(const D& dist, std::uint64_t seed = 7) {
  Rng rng(seed);
  MeanVarAccumulator acc;
  for (int i = 0; i < kSamples; ++i) acc.add(dist.sample(rng));
  return acc;
}

TEST(Exponential, MeanAndVariance) {
  const Exponential dist(2.0);
  const auto acc = sample_stats(dist);
  EXPECT_NEAR(acc.mean(), 0.5, 0.01);
  EXPECT_NEAR(acc.variance(), 0.25, 0.02);
  EXPECT_DOUBLE_EQ(dist.mean(), 0.5);
}

TEST(Exponential, AlwaysPositive) {
  const Exponential dist(5.0);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(dist.sample(rng), 0.0);
}

TEST(Exponential, RejectsBadRate) {
  EXPECT_THROW(Exponential(0.0), std::invalid_argument);
  EXPECT_THROW(Exponential(-1.0), std::invalid_argument);
}

TEST(Uniform, MeanAndBounds) {
  const Uniform dist(2.0, 6.0);
  Rng rng(11);
  MeanVarAccumulator acc;
  for (int i = 0; i < kSamples; ++i) {
    const double x = dist.sample(rng);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 6.0);
    acc.add(x);
  }
  EXPECT_NEAR(acc.mean(), 4.0, 0.02);
  EXPECT_NEAR(acc.variance(), 16.0 / 12.0, 0.05);
}

TEST(Uniform, RejectsEmptyRange) {
  EXPECT_THROW(Uniform(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Normal, MeanAndStd) {
  const Normal dist(10.0, 3.0);
  const auto acc = sample_stats(dist);
  EXPECT_NEAR(acc.mean(), 10.0, 0.05);
  EXPECT_NEAR(acc.stddev(), 3.0, 0.05);
}

TEST(Normal, ZeroSigmaIsDegenerate) {
  const Normal dist(5.0, 0.0);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(dist.sample(rng), 5.0);
}

TEST(Normal, RejectsNegativeSigma) {
  EXPECT_THROW(Normal(0.0, -1.0), std::invalid_argument);
}

TEST(LogNormal, MeanMatchesClosedForm) {
  const LogNormal dist(0.0, 0.5);
  const auto acc = sample_stats(dist);
  EXPECT_NEAR(acc.mean(), dist.mean(), dist.mean() * 0.02);
  EXPECT_NEAR(dist.mean(), std::exp(0.125), 1e-12);
}

TEST(BoundedPareto, SamplesWithinBounds) {
  const BoundedPareto dist(1.5, 1.0, 100.0);
  Rng rng(13);
  for (int i = 0; i < 50000; ++i) {
    const double x = dist.sample(rng);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 100.0);
  }
}

TEST(BoundedPareto, EmpiricalMeanMatchesFormula) {
  const BoundedPareto dist(1.5, 1.0, 100.0);
  const auto acc = sample_stats(dist, 99);
  EXPECT_NEAR(acc.mean(), dist.mean(), dist.mean() * 0.03);
}

TEST(BoundedPareto, Alpha1MeanFormula) {
  const BoundedPareto dist(1.0, 1.0, 10.0);
  const auto acc = sample_stats(dist, 55);
  EXPECT_NEAR(acc.mean(), dist.mean(), dist.mean() * 0.03);
}

TEST(BoundedPareto, RejectsBadParameters) {
  EXPECT_THROW(BoundedPareto(0.0, 1.0, 2.0), std::invalid_argument);
  EXPECT_THROW(BoundedPareto(1.0, 0.0, 2.0), std::invalid_argument);
  EXPECT_THROW(BoundedPareto(1.0, 2.0, 2.0), std::invalid_argument);
}

TEST(Deterministic, AlwaysSameValue) {
  const Deterministic dist(3.5);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(dist.sample(rng), 3.5);
  EXPECT_DOUBLE_EQ(dist.mean(), 3.5);
}

TEST(Deterministic, RejectsNegative) {
  EXPECT_THROW(Deterministic(-1.0), std::invalid_argument);
}

// Type-erased Distribution: factories carry the right name and moments.
struct FactoryCase {
  const char* label;
  Distribution dist;
  double expected_mean;
};

class DistributionFactoryTest : public ::testing::TestWithParam<int> {};

TEST(DistributionTypeErased, FactoriesSampleWithCorrectMean) {
  const Distribution cases[] = {
      Distribution::exponential(4.0),
      Distribution::deterministic(0.25),
      Distribution::uniform(0.0, 0.5),
      Distribution::lognormal(-1.5, 0.4),
      Distribution::bounded_pareto(1.8, 0.05, 5.0),
  };
  for (const auto& dist : cases) {
    Rng rng(17);
    MeanVarAccumulator acc;
    for (int i = 0; i < kSamples; ++i) acc.add(dist.sample(rng));
    EXPECT_NEAR(acc.mean(), dist.mean(), std::max(dist.mean() * 0.05, 1e-3))
        << dist.name();
    EXPECT_FALSE(dist.name().empty());
  }
}

TEST(DistributionTypeErased, NamesAreDescriptive) {
  EXPECT_NE(Distribution::exponential(2.0).name().find("exp"), std::string::npos);
  EXPECT_NE(Distribution::bounded_pareto(1.5, 1, 10).name().find("bpareto"),
            std::string::npos);
}

TEST(DistributionTypeErased, ScaledMultipliesSamplesAndMean) {
  const Distribution base = Distribution::exponential(2.0);  // mean 0.5
  const Distribution scaled = base.scaled(4.0);
  EXPECT_DOUBLE_EQ(scaled.mean(), 2.0);
  Rng ra(9), rb(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(scaled.sample(ra), 4.0 * base.sample(rb));
  }
  EXPECT_NE(scaled.name().find("4x"), std::string::npos);
}

TEST(DistributionTypeErased, WithMeanHitsTarget) {
  const Distribution dist = Distribution::bounded_pareto(1.6, 0.01, 5.0).with_mean(0.1);
  EXPECT_NEAR(dist.mean(), 0.1, 1e-12);
  Rng rng(3);
  MeanVarAccumulator acc;
  for (int i = 0; i < kSamples; ++i) acc.add(dist.sample(rng));
  EXPECT_NEAR(acc.mean(), 0.1, 0.01);
}

TEST(DistributionTypeErased, ScaledRejectsBadFactor) {
  const Distribution base = Distribution::deterministic(1.0);
  EXPECT_THROW((void)base.scaled(0.0), std::invalid_argument);
  EXPECT_THROW((void)base.scaled(-2.0), std::invalid_argument);
  EXPECT_THROW((void)base.with_mean(0.0), std::invalid_argument);
}

TEST(DistributionTypeErased, CopyableAndShared) {
  const Distribution a = Distribution::deterministic(1.0);
  const Distribution b = a;  // shares the immutable impl
  Rng rng(1);
  EXPECT_DOUBLE_EQ(b.sample(rng), 1.0);
}

}  // namespace
}  // namespace gc
