// Replay oracle tests (cp/replay.h): a recorded run replayed through a
// fresh ControlPlane must regenerate the recorded command stream exactly;
// a perturbed recording must be detected.  This is the in-process version
// of what ci/check.sh soak does with tools/gcreplay against a real fig8
// recording.
#include "cp/replay.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "control/policies.h"
#include "sim/simulation.h"
#include "workload/workload.h"

namespace gc {
namespace {

ClusterConfig config8() {
  ClusterConfig config;
  config.max_servers = 8;
  config.mu_max = 10.0;
  config.t_ref_s = 0.5;
  return config;
}

// Runs a short Combined/DCP simulation with the audit sink attached — the
// "recording" half of the round trip.
DecisionAuditLog record_run(double rate = 20.0, double horizon = 2000.0) {
  const ClusterConfig config = config8();
  const Provisioner provisioner(config);
  const auto controller = make_policy(PolicyKind::kCombinedDcp, &provisioner);
  Workload workload =
      Workload::poisson_exponential(rate, config.mu_max, horizon, /*seed=*/3);
  ClusterOptions cluster;
  cluster.num_servers = config.max_servers;
  cluster.initial_active = config.max_servers;
  cluster.dispatch_seed = 11;
  SimulationOptions sim;
  sim.t_ref_s = config.t_ref_s;
  DecisionAuditLog audit;
  sim.audit = &audit;
  (void)run_simulation(workload, cluster, *controller, sim);
  return audit;
}

// A fresh controller stack configured exactly like the recording's — what
// gcreplay rebuilds from the bench defaults.
struct ReplayStack {
  Provisioner provisioner{config8()};
  std::unique_ptr<Controller> controller =
      make_policy(PolicyKind::kCombinedDcp, &provisioner);
  ControlPlane cp{*controller, ControlPlaneOptions{}, Rng(/*seed=*/1, 14)};
};

TEST(Replay, RoundTripReplaysCleanly) {
  const DecisionAuditLog log = record_run();
  ASSERT_GT(log.size(), 50u);
  ReplayStack stack;
  ReplayEngine engine(stack.cp, ReplayOptions{});
  const ReplayStats stats = engine.run(log);
  EXPECT_EQ(stats.mismatches, 0u);
  EXPECT_TRUE(stats.clean());
  EXPECT_EQ(stats.ticks, log.size());
  EXPECT_GT(stats.long_ticks, 0u);
  EXPECT_DOUBLE_EQ(stats.first_mismatch_s, -1.0);
  EXPECT_GT(stats.replayed_span_s, 0.0);
}

TEST(Replay, JsonlRoundTripReplaysIdentically) {
  // The disk path gcreplay takes: serialize, parse back, replay.  The
  // jsonl round trip is bit-exact, so this must be just as clean.
  const DecisionAuditLog log = record_run();
  const DecisionAuditLog reloaded = DecisionAuditLog::from_jsonl(log.to_jsonl());
  ASSERT_EQ(reloaded.size(), log.size());
  ReplayStack stack;
  ReplayEngine engine(stack.cp, ReplayOptions{});
  EXPECT_TRUE(engine.run(reloaded).clean());
}

DecisionAuditLog perturb(const DecisionAuditLog& log, std::size_t index) {
  DecisionAuditLog out;
  for (std::size_t i = 0; i < log.records().size(); ++i) {
    AuditRecord rec = log.records()[i];
    if (i == index) {
      // Forge the commanded speed: the replayed policy will disagree.
      rec.speed_set = true;
      rec.speed = rec.speed * 0.5 + 0.01;
    }
    out.append(rec);
  }
  return out;
}

TEST(Replay, PerturbedRecordingIsDetected) {
  const DecisionAuditLog log = record_run();
  const std::size_t victim = log.size() / 2;
  const DecisionAuditLog forged = perturb(log, victim);
  ReplayStack stack;
  ReplayEngine engine(stack.cp, ReplayOptions{});
  const ReplayStats stats = engine.run(forged);
  EXPECT_FALSE(stats.clean());
  ASSERT_GE(stats.mismatches, 1u);
  ASSERT_FALSE(stats.samples.empty());
  EXPECT_EQ(stats.samples[0].tick, victim);
  EXPECT_DOUBLE_EQ(stats.first_mismatch_s, log.records()[victim].time_s);
  // The forged tick is the only divergence; replay stays locked after it.
  EXPECT_LE(stats.mismatches, 2u);
}

TEST(Replay, FailFastStopsAtTheFirstDivergence) {
  const DecisionAuditLog log = record_run();
  const std::size_t victim = 10;
  const DecisionAuditLog forged = perturb(log, victim);
  ReplayStack stack;
  ReplayOptions options;
  options.fail_fast = true;
  ReplayEngine engine(stack.cp, options);
  const ReplayStats stats = engine.run(forged);
  EXPECT_EQ(stats.ticks, victim + 1);
  EXPECT_EQ(stats.mismatches, 1u);
}

TEST(Replay, VirtualClockPacesSleepsByTheSpeedup) {
  const DecisionAuditLog log = record_run();
  ReplayStack stack;
  ReplayOptions options;
  options.speedup = 100.0;
  std::vector<double> sleeps;
  ReplayEngine engine(stack.cp, options,
                      [&](double wall_s) { sleeps.push_back(wall_s); });
  const ReplayStats stats = engine.run(log);
  ASSERT_TRUE(stats.clean());
  double total = 0.0;
  for (const double s : sleeps) {
    EXPECT_GT(s, 0.0);
    total += s;
  }
  // Slept wall time == recorded span / speedup (records at equal times,
  // e.g. the t=0 long+short pair, contribute no sleep).
  EXPECT_NEAR(total, stats.replayed_span_s / options.speedup, 1e-9);
}

TEST(Replay, FreeRunNeverSleeps) {
  const DecisionAuditLog log = record_run();
  ReplayStack stack;
  std::vector<double> sleeps;
  ReplayEngine engine(stack.cp, ReplayOptions{},
                      [&](double wall_s) { sleeps.push_back(wall_s); });
  (void)engine.run(log);
  EXPECT_TRUE(sleeps.empty());
}

TEST(Replay, CountersSnapshotCarriesTheDriftVerdict) {
  const DecisionAuditLog log = record_run();
  ReplayStack stack;
  ReplayEngine engine(stack.cp, ReplayOptions{});
  (void)engine.run(log);
  const CountersSnapshot snap = engine.counters_snapshot();
  EXPECT_EQ(snap.counter_or("cp.drift.mismatches", 99), 0u);
  EXPECT_EQ(snap.counter_or("cp.drift.ticks", 0), log.size());
  EXPECT_DOUBLE_EQ(snap.gauge_or("cp.drift.first_mismatch_s", 0.0), -1.0);
  // The facade's own namespace rides along for gcinspect.
  EXPECT_EQ(snap.counter_or("cp.ticks", 0), log.size());
}

TEST(Replay, OptionsValidateRejectsBadSettings) {
  ReplayStack stack;
  ReplayOptions nan_speedup;
  nan_speedup.speedup = std::nan("");
  EXPECT_THROW(ReplayEngine(stack.cp, nan_speedup), std::invalid_argument);
  ReplayOptions no_reports;
  no_reports.max_reported = 0;
  EXPECT_THROW(ReplayEngine(stack.cp, no_reports), std::invalid_argument);
}

// -- validate_timeseries ------------------------------------------------------

CsvTable good_table() {
  CsvTable t;
  t.header = {"t", "power_w"};
  t.rows = {{10.0, 100.0}, {20.0, 90.0}, {30.0, 95.0}};
  return t;
}

TEST(ValidateTimeseries, AcceptsAWellFormedTable) {
  EXPECT_NO_THROW(validate_timeseries(good_table()));
}

TEST(ValidateTimeseries, RejectsMissingTimeColumn) {
  CsvTable t = good_table();
  t.header[0] = "time";
  EXPECT_THROW(validate_timeseries(t), std::runtime_error);
}

TEST(ValidateTimeseries, RejectsEmptyTable) {
  CsvTable t = good_table();
  t.rows.clear();
  EXPECT_THROW(validate_timeseries(t), std::runtime_error);
}

TEST(ValidateTimeseries, RejectsNonFiniteCells) {
  CsvTable t = good_table();
  t.rows[1][1] = std::nan("");
  EXPECT_THROW(validate_timeseries(t), std::runtime_error);
}

TEST(ValidateTimeseries, RejectsTimeWarps) {
  CsvTable t = good_table();
  t.rows[2][0] = 15.0;  // goes backwards
  EXPECT_THROW(validate_timeseries(t), std::runtime_error);
}

TEST(ValidateTimeseries, RejectsRangeOutsideTheAuditSpan) {
  DecisionAuditLog audit;
  AuditRecord a;
  a.time_s = 12.0;
  AuditRecord b;
  b.time_s = 25.0;
  audit.append(a);
  audit.append(b);
  CsvTable t = good_table();  // spans [10, 30] — wider than [12, 25]
  EXPECT_THROW(validate_timeseries(t, &audit), std::runtime_error);
  CsvTable inside;
  inside.header = {"t"};
  inside.rows = {{13.0}, {24.0}};
  EXPECT_NO_THROW(validate_timeseries(inside, &audit));
}

}  // namespace
}  // namespace gc
