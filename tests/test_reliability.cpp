// Reliability model tests (core/reliability.h + Provisioner::solve_reliable):
//
//   * property tests for the closed-form fleet-availability estimator
//     (edges, monotonicity, agreement with the direct binomial sum),
//   * the availability estimator validated against long fault-injected
//     simulation runs across three MTBF/MTTR regimes and 0-2 spares,
//   * wear-model arithmetic incl. per-class budgets,
//   * solve_reliable: degeneration to solve_capped when disabled, spare
//     solving under an availability target, the wear-cost deadband, and the
//     memo cache's exact-hit / knob-generation contract,
//   * end-to-end instrumentation: fleet.boot_count / fleet.shutdown_count
//     observable with reliability off, per-server cycle counters, and the
//     dcp-reliability policy's SimResult readout.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <optional>

#include "control/policies.h"
#include "core/provisioner.h"
#include "core/reliability.h"
#include "sim/simulation.h"
#include "workload/rate_profile.h"
#include "workload/workload.h"

namespace gc {
namespace {

// -- closed-form availability: properties ------------------------------------

double n_choose_k(unsigned n, unsigned k) {
  double c = 1.0;
  for (unsigned i = 0; i < k; ++i) {
    c *= static_cast<double>(n - i) / static_cast<double>(i + 1);
  }
  return c;
}

// Direct binomial tail sum — the textbook form the recurrence must match.
double direct_availability(unsigned required, unsigned spares, double a) {
  const unsigned n = required + spares;
  double sum = 0.0;
  for (unsigned j = required; j <= n; ++j) {
    sum += n_choose_k(n, j) * std::pow(a, static_cast<double>(j)) *
           std::pow(1.0 - a, static_cast<double>(n - j));
  }
  return sum;
}

TEST(FleetAvailability, BoundaryCases) {
  // Nothing required: always up, whatever the server availability.
  EXPECT_DOUBLE_EQ(fleet_availability(0, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(fleet_availability(0, 5, 0.3), 1.0);
  // Perfect servers: always up.
  EXPECT_DOUBLE_EQ(fleet_availability(8, 0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(fleet_availability(8, 3, 1.5), 1.0);
  // Dead servers: never up (unless nothing is required).
  EXPECT_DOUBLE_EQ(fleet_availability(1, 4, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(fleet_availability(3, 0, -0.2), 0.0);
}

TEST(FleetAvailability, NoSparesIsAToTheM) {
  for (const double a : {0.5, 0.9, 0.99, 0.999}) {
    for (unsigned m = 1; m <= 12; ++m) {
      EXPECT_NEAR(fleet_availability(m, 0, a),
                  std::pow(a, static_cast<double>(m)), 1e-12)
          << "a=" << a << " m=" << m;
    }
  }
}

TEST(FleetAvailability, RecurrenceMatchesDirectBinomialSum) {
  for (const double a : {0.3, 0.5, 0.8, 0.95, 0.999}) {
    for (unsigned required = 1; required <= 10; ++required) {
      for (unsigned spares = 0; spares <= 6; ++spares) {
        EXPECT_NEAR(fleet_availability(required, spares, a),
                    direct_availability(required, spares, a), 1e-10)
            << "a=" << a << " m=" << required << " k=" << spares;
      }
    }
  }
}

TEST(FleetAvailability, MonotoneInSparesAndServerAvailability) {
  for (unsigned required : {1u, 4u, 16u, 64u}) {
    double prev = 0.0;
    for (unsigned k = 0; k <= 10; ++k) {
      const double avail = fleet_availability(required, k, 0.9);
      EXPECT_GE(avail, prev) << "m=" << required << " k=" << k;
      EXPECT_LE(avail, 1.0);
      prev = avail;
    }
  }
  double prev = 0.0;
  for (double a = 0.05; a < 1.0; a += 0.05) {
    const double avail = fleet_availability(6, 2, a);
    EXPECT_GE(avail, prev) << "a=" << a;
    prev = avail;
  }
}

TEST(FleetAvailability, LargeFleetsStayFiniteAndOrdered) {
  // The downward recurrence never touches factorials: a 10k-server pool is
  // exact arithmetic, not overflow.  With a = 0.999 the fleet expects ~10
  // failures, so 5 spares are thin and 10 are ~even odds — both strictly
  // inside (0, 1) and strictly ordered.
  const double thin = fleet_availability(10000, 5, 0.999);
  const double even = fleet_availability(10000, 10, 0.999);
  EXPECT_TRUE(std::isfinite(thin));
  EXPECT_GT(thin, 0.0);
  EXPECT_LT(thin, 0.2);
  EXPECT_GT(even, thin);
  EXPECT_LT(even, 1.0);
  EXPECT_NEAR(fleet_availability(10000, 200, 0.999), 1.0, 1e-12);
}

TEST(MinSparesFor, FindsTheMinimalPool) {
  const double a = 0.9;
  for (unsigned required : {1u, 4u, 8u}) {
    for (const double target : {0.9, 0.99, 0.999}) {
      const auto k = min_spares_for(required, a, target, 32);
      ASSERT_TRUE(k.has_value()) << "m=" << required << " target=" << target;
      EXPECT_GE(fleet_availability(required, *k, a), target);
      if (*k > 0) {
        EXPECT_LT(fleet_availability(required, *k - 1, a), target)
            << "k=" << *k << " is not minimal";
      }
    }
  }
}

TEST(MinSparesFor, UnreachableTargetIsNullopt) {
  // a = 0.5 over 8 required servers: even 2 spares give A ~= 0.05.
  EXPECT_FALSE(min_spares_for(8, 0.5, 0.999, 2).has_value());
  // Zero spares allowed and a^m below the target.
  EXPECT_FALSE(min_spares_for(8, 0.9, 0.9, 0).has_value());
  // A perfect server always reaches any target with zero spares.
  const auto k = min_spares_for(8, 1.0, 0.999999, 0);
  ASSERT_TRUE(k.has_value());
  EXPECT_EQ(*k, 0u);
}

TEST(MinSparesFor, MonotoneInTarget) {
  unsigned prev = 0;
  for (const double target : {0.5, 0.9, 0.99, 0.999, 0.9999}) {
    const auto k = min_spares_for(6, 0.95, target, 64);
    ASSERT_TRUE(k.has_value());
    EXPECT_GE(*k, prev) << "target=" << target;
    prev = *k;
  }
}

// -- wear model ---------------------------------------------------------------

TEST(WearModel, DisabledModelChargesNothing) {
  const WearModel wear{ReliabilityOptions{}};
  EXPECT_FALSE(wear.enabled());
  EXPECT_DOUBLE_EQ(wear.wear_fraction(1000, 1000), 0.0);
  EXPECT_DOUBLE_EQ(wear.transition_cost_j(5), 0.0);
}

TEST(WearModel, HalfACyclePerTransition) {
  ReliabilityOptions options;
  options.cycles_to_failure = 1000.0;
  options.cycle_cost_j = 200.0;
  const WearModel wear(options);
  EXPECT_TRUE(wear.enabled());
  // 300 boots + 300 shutdowns = 300 full cycles of a 1000-cycle budget.
  EXPECT_DOUBLE_EQ(wear.wear_fraction(300, 300), 0.3);
  // Uncapped past exhaustion — the readout reports the overdraft.
  EXPECT_DOUBLE_EQ(wear.wear_fraction(1500, 1500), 1.5);
  // Asymmetric counts still average to half a cycle per transition.
  EXPECT_DOUBLE_EQ(wear.wear_fraction(10, 0), 0.005);
  EXPECT_DOUBLE_EQ(wear.transition_cost_j(3), 300.0);
}

TEST(WearModel, PerClassBudgetsOverrideTheScalar) {
  ReliabilityOptions options;
  options.cycles_to_failure = 1000.0;
  options.class_cycles_to_failure = {0.0, 100.0};
  const WearModel wear(options);
  // Class 0 entry is 0 -> falls back to the fleet-wide budget.
  EXPECT_DOUBLE_EQ(wear.wear_fraction(100, 100, 0), 0.1);
  // Class 1 wears 10x faster.
  EXPECT_DOUBLE_EQ(wear.wear_fraction(100, 100, 1), 1.0);
  // Out-of-range class index -> fleet-wide budget.
  EXPECT_DOUBLE_EQ(wear.wear_fraction(100, 100, 7), 0.1);
}

TEST(ReliabilityOptionsValidate, RejectsBadKnobs) {
  const auto expect_throws = [](auto&& mutate) {
    ReliabilityOptions options;
    mutate(options);
    EXPECT_THROW(options.validate(), std::invalid_argument);
  };
  expect_throws([](ReliabilityOptions& o) { o.mtbf_s = -1.0; });
  expect_throws([](ReliabilityOptions& o) { o.mtbf_s = std::nan(""); });
  expect_throws([](ReliabilityOptions& o) { o.mttr_s = -1.0; });
  expect_throws([](ReliabilityOptions& o) {
    o.mtbf_s = 100.0;
    o.mttr_s = 0.0;  // failure model with instant repairs is a contradiction
  });
  expect_throws([](ReliabilityOptions& o) { o.availability_target = 1.5; });
  expect_throws([](ReliabilityOptions& o) { o.availability_target = std::nan(""); });
  expect_throws([](ReliabilityOptions& o) { o.cycles_to_failure = -5.0; });
  expect_throws([](ReliabilityOptions& o) { o.cycle_cost_j = -5.0; });
  expect_throws([](ReliabilityOptions& o) { o.class_cycles_to_failure = {10.0, -1.0}; });
  ReliabilityOptions ok;
  ok.mtbf_s = 1000.0;
  ok.mttr_s = 100.0;
  ok.availability_target = 0.999;
  EXPECT_NO_THROW(ok.validate());
  EXPECT_NEAR(ok.server_availability(), 1000.0 / 1100.0, 1e-15);
}

// -- estimator vs fault-injected simulation (3 regimes x 0-2 spares) ---------

struct FaultRegime {
  const char* name;
  double mtbf_s;
  double mttr_s;
  std::uint64_t seed;
};

// Fraction of timeline samples with >= `required` servers healthy.  NPM
// keeps the whole 8-server fleet powered (re-booting repaired servers each
// long tick), so "available >= 8 - k" is exactly the event the closed form
// A(8 - k, k) prices: at most k of the 8 are down.
SimResult run_fault_regime(const FaultRegime& regime, double horizon_s) {
  ClusterConfig config;
  config.max_servers = 8;
  config.mu_max = 10.0;
  config.t_ref_s = 0.5;
  config.transition.boot_delay_s = 2.0;
  const Provisioner provisioner(config);
  // Short long period: NPM re-boots repaired (OFF) servers on long ticks,
  // and a server sitting OFF has its failure clock stopped — the faster the
  // re-boot, the closer the simulated process is to the always-powered
  // Markov model the closed form prices.
  PolicyOptions popts;
  popts.dcp.long_period_s = 30.0;
  popts.dcp.short_period_s = 10.0;
  const auto controller = make_policy(PolicyKind::kNpm, &provisioner, popts);
  Workload workload =
      Workload::poisson_exponential(1.0, config.mu_max, horizon_s, regime.seed);
  ClusterOptions cluster;
  cluster.num_servers = config.max_servers;
  cluster.initial_active = config.max_servers;
  cluster.dispatch_seed = 11;
  SimulationOptions sim;
  sim.t_ref_s = config.t_ref_s;
  sim.faults.mtbf_s = regime.mtbf_s;
  sim.faults.mttr_s = regime.mttr_s;
  sim.faults.seed = regime.seed;
  sim.record_interval_s = 20.0;
  return run_simulation(workload, cluster, *controller, sim);
}

TEST(AvailabilityEstimator, MatchesFaultInjectedSimulation) {
  // Seed-pinned long runs; the tolerance bands absorb the two known gaps
  // between model and simulator: finite-sample noise (a few hundred
  // fail/repair cycles per run) and the injector's powered-only failure
  // clock (a repaired server sits OFF for up to one long tick before NPM
  // re-boots it, slightly inflating its effective MTBF).
  const FaultRegime regimes[] = {
      {"a=0.80", 2000.0, 500.0, 101},
      {"a=0.90", 4500.0, 500.0, 202},
      {"a=0.60", 1200.0, 800.0, 303},
  };
  const double horizon_s = 120000.0;
  for (const FaultRegime& regime : regimes) {
    const SimResult result = run_fault_regime(regime, horizon_s);
    const double a = regime.mtbf_s / (regime.mtbf_s + regime.mttr_s);
    // Per-server availability first: unavailability is the time-weighted
    // fleet-mean FAILED fraction, whose expectation is exactly 1 - a.
    EXPECT_NEAR(1.0 - result.unavailability, a, 0.05) << regime.name;
    ASSERT_FALSE(result.timeline.empty());
    for (unsigned spares = 0; spares <= 2; ++spares) {
      const unsigned required = 8 - spares;
      std::size_t up = 0;
      for (const TimelinePoint& point : result.timeline) {
        if (point.available >= required) ++up;
      }
      const double observed =
          static_cast<double>(up) / static_cast<double>(result.timeline.size());
      const double predicted = fleet_availability(required, spares, a);
      EXPECT_NEAR(observed, predicted, 0.08)
          << regime.name << " required=" << required << " spares=" << spares;
    }
  }
}

// -- solve_reliable -----------------------------------------------------------

ClusterConfig solver_config() {
  ClusterConfig config;
  config.max_servers = 16;
  config.mu_max = 10.0;
  config.t_ref_s = 0.5;
  return config;
}

TEST(SolveReliable, DefaultOptionsDegenerateToSolveCapped) {
  const Provisioner provisioner(solver_config());
  for (const double lambda : {3.0, 17.0, 42.0, 90.0}) {
    const OperatingPoint capped = provisioner.solve_capped(lambda, 16);
    const ReliablePlan plan =
        provisioner.solve_reliable(lambda, 16, 16, 25.0, ReliabilityOptions{});
    EXPECT_EQ(plan.base.servers, capped.servers) << "lambda=" << lambda;
    EXPECT_DOUBLE_EQ(plan.base.speed, capped.speed);
    EXPECT_DOUBLE_EQ(plan.base.power_watts, capped.power_watts);
    EXPECT_EQ(plan.base.feasible, capped.feasible);
    EXPECT_EQ(plan.spares, 0u);
    EXPECT_DOUBLE_EQ(plan.availability, 1.0);
    EXPECT_EQ(plan.binding, BindingConstraint::kLatency);
    EXPECT_DOUBLE_EQ(plan.objective_w, capped.power_watts);
  }
}

TEST(SolveReliable, AvailabilityTargetForcesSpares) {
  const Provisioner provisioner(solver_config());
  ReliabilityOptions reliability;
  reliability.mtbf_s = 900.0;  // a = 0.9: harsh enough to need real spares
  reliability.mttr_s = 100.0;
  reliability.availability_target = 0.999;
  const double lambda = 30.0;  // m_min ~ 4 servers
  const ReliablePlan plan =
      provisioner.solve_reliable(lambda, 16, 16, 25.0, reliability);
  EXPECT_TRUE(plan.base.feasible);
  EXPECT_GT(plan.spares, 0u);
  EXPECT_GE(plan.availability, reliability.availability_target);
  EXPECT_EQ(plan.binding, BindingConstraint::kAvailability);
  // The solved pool is minimal: one fewer spare would miss the target.
  EXPECT_LT(fleet_availability(plan.base.servers, plan.spares - 1,
                               reliability.server_availability()),
            reliability.availability_target);
  // Raising the target never shrinks the pool.
  ReliabilityOptions stricter = reliability;
  stricter.availability_target = 0.99999;
  const ReliablePlan strict_plan =
      provisioner.solve_reliable(lambda, 16, 16, 25.0, stricter);
  EXPECT_GE(strict_plan.spares, plan.spares);
}

TEST(SolveReliable, UnreachableTargetBindsAtCapacity) {
  const Provisioner provisioner(solver_config());
  ReliabilityOptions reliability;
  reliability.mtbf_s = 100.0;  // a = 0.5: 0.9999 is hopeless within the cap
  reliability.mttr_s = 100.0;
  reliability.availability_target = 0.9999;
  reliability.max_spares = 2;
  const ReliablePlan plan =
      provisioner.solve_reliable(60.0, 16, 16, 25.0, reliability);
  EXPECT_TRUE(plan.base.feasible);  // latency is still met
  EXPECT_EQ(plan.binding, BindingConstraint::kCapacity);
  EXPECT_LT(plan.availability, reliability.availability_target);
}

TEST(SolveReliable, LatencyInfeasibleLoadFallsBackToTheCap) {
  const Provisioner provisioner(solver_config());
  ReliabilityOptions reliability;
  reliability.mtbf_s = 10000.0;
  reliability.mttr_s = 100.0;
  reliability.availability_target = 0.999;
  // 16 servers serve at most 16 * (10 - 2) = 128/s; 200/s cannot be met.
  const ReliablePlan plan =
      provisioner.solve_reliable(200.0, 16, 16, 25.0, reliability);
  EXPECT_FALSE(plan.base.feasible);
  EXPECT_EQ(plan.base.servers, 16u);
  EXPECT_EQ(plan.spares, 0u);
  EXPECT_EQ(plan.binding, BindingConstraint::kCapacity);
}

TEST(SolveReliable, WearCostHoldsTheCommittedPool) {
  const Provisioner provisioner(solver_config());
  const double lambda = 10.0;  // energy-optimal base well below 8 servers
  const unsigned committed = 8;
  // Without wear cost the solver shrinks the pool to the energy optimum...
  ReliabilityOptions no_wear;
  const ReliablePlan cheap =
      provisioner.solve_reliable(lambda, 16, committed, 25.0, no_wear);
  EXPECT_LT(cheap.base.servers + cheap.spares, committed);
  // ...with a dominant cycle cost it keeps the committed 8 instead: the
  // wear deadband trades a little idle power for zero transitions.
  ReliabilityOptions heavy_wear;
  heavy_wear.cycles_to_failure = 1000.0;
  heavy_wear.cycle_cost_j = 1e9;
  const ReliablePlan sticky =
      provisioner.solve_reliable(lambda, 16, committed, 25.0, heavy_wear);
  EXPECT_TRUE(sticky.base.feasible);
  EXPECT_EQ(sticky.base.servers + sticky.spares, committed);
  // The wear term can only hold *feasible* pools: it never buys servers
  // below the latency floor.
  const ReliablePlan floor_plan =
      provisioner.solve_reliable(70.0, 16, 1, 25.0, heavy_wear);
  EXPECT_TRUE(floor_plan.base.feasible);
  EXPECT_GE(floor_plan.base.servers, 8u);  // 70/s needs >= 8.75 - 1/t_ref...
}

TEST(SolveReliable, CacheHitsAreExactAndKnobChangesPurge) {
  Provisioner provisioner(solver_config());  // reset_cache_stats is non-const
  ReliabilityOptions reliability;
  reliability.mtbf_s = 2000.0;
  reliability.mttr_s = 200.0;
  reliability.availability_target = 0.999;
  provisioner.reset_cache_stats();
  const ReliablePlan first =
      provisioner.solve_reliable(30.0, 16, 12, 25.0, reliability);
  EXPECT_EQ(provisioner.cache_stats().misses, 1u);
  EXPECT_EQ(provisioner.cache_stats().hits, 0u);
  // Same inputs: exact hit, identical plan.
  const ReliablePlan again =
      provisioner.solve_reliable(30.0, 16, 12, 25.0, reliability);
  EXPECT_EQ(provisioner.cache_stats().hits, 1u);
  EXPECT_EQ(again.base.servers, first.base.servers);
  EXPECT_EQ(again.spares, first.spares);
  EXPECT_DOUBLE_EQ(again.objective_w, first.objective_w);
  // A different committed anchor is a different key, not a stale hit.
  (void)provisioner.solve_reliable(30.0, 16, 13, 25.0, reliability);
  EXPECT_EQ(provisioner.cache_stats().misses, 2u);
  // Changing a knob starts a new generation: the old entry must not serve.
  ReliabilityOptions stricter = reliability;
  stricter.availability_target = 0.99999;
  const ReliablePlan strict_plan =
      provisioner.solve_reliable(30.0, 16, 12, 25.0, stricter);
  EXPECT_EQ(provisioner.cache_stats().misses, 3u);
  EXPECT_GE(strict_plan.spares, first.spares);
  // And the plain OperatingPoint cache is untouched by reliable purges:
  // a solve() done before the knob change still hits after it.
  provisioner.reset_cache_stats();
  (void)provisioner.solve(30.0);
  (void)provisioner.solve_reliable(30.0, 16, 12, 25.0, reliability);  // purge
  (void)provisioner.solve(30.0);
  EXPECT_EQ(provisioner.cache_stats().hits, 1u);
}

// -- end-to-end instrumentation ----------------------------------------------

SimResult run_policy(PolicyKind kind, PolicyOptions popts, SimulationOptions sim,
                     double horizon_s) {
  ClusterConfig config;
  config.max_servers = 12;
  config.mu_max = 10.0;
  config.t_ref_s = 0.5;
  const Provisioner provisioner(config);
  // Ten long ticks per 1200 s diurnal period so provisioning actually
  // tracks the load curve within the test horizon.
  popts.dcp.long_period_s = 120.0;
  popts.dcp.short_period_s = 20.0;
  const auto controller = make_policy(kind, &provisioner, popts);
  const auto profile =
      std::make_shared<SinusoidalRate>(40.0, 25.0, 1200.0, 0.0, 5.0);
  Workload workload =
      Workload::profile_exponential(profile, config.mu_max, horizon_s, 97);
  ClusterOptions cluster;
  cluster.num_servers = config.max_servers;
  cluster.initial_active = config.max_servers;
  cluster.dispatch_seed = 4242;
  sim.t_ref_s = config.t_ref_s;
  return run_simulation(workload, cluster, *controller, sim);
}

TEST(ReliabilityInstrumentation, TransitionCountersExistWithReliabilityOff) {
  // Satellite contract: fleet.boot_count / fleet.shutdown_count are plain
  // observability — registered on every run, no reliability policy needed.
  const SimResult result =
      run_policy(PolicyKind::kCombinedDcp, {}, SimulationOptions{}, 4800.0);
  const std::uint64_t boots = result.counters.counter_or("fleet.boot_count", 0);
  const std::uint64_t shutdowns =
      result.counters.counter_or("fleet.shutdown_count", 0);
  EXPECT_GT(boots + shutdowns, 0u);  // diurnal load cycles the fleet
  // Per-server cycle counters tile the fleet totals exactly.
  ASSERT_EQ(result.server_cycles.size(), 12u);
  std::uint64_t cycle_sum = 0;
  for (const std::uint32_t cycles : result.server_cycles) cycle_sum += cycles;
  EXPECT_EQ(cycle_sum, boots + shutdowns);
  // Wear scalars stay zero without a cycles-to-failure budget...
  EXPECT_DOUBLE_EQ(result.wear_fraction_mean, 0.0);
  EXPECT_DOUBLE_EQ(result.wear_fraction_max, 0.0);
  // ...and no policy reported an availability plan.
  EXPECT_DOUBLE_EQ(result.availability_estimate, 0.0);
  EXPECT_DOUBLE_EQ(result.mean_solved_spares, 0.0);
}

TEST(ReliabilityInstrumentation, DcpReliabilityReportsPlanAndWear) {
  PolicyOptions popts;
  // a = 0.98: the 0.995 target is reachable with the spare room a 12-cap
  // fleet leaves even at the diurnal peak (m ~ 10, k = 2).
  popts.reliability.mtbf_s = 4900.0;
  popts.reliability.mttr_s = 100.0;
  popts.reliability.availability_target = 0.995;
  popts.reliability.cycles_to_failure = 5000.0;
  popts.reliability.cycle_cost_j = 100.0;
  SimulationOptions sim;
  sim.faults.mtbf_s = 4900.0;
  sim.faults.mttr_s = 100.0;
  sim.faults.seed = 7;
  sim.reliability = popts.reliability;  // readout uses the same wear budget
  const SimResult result =
      run_policy(PolicyKind::kDcpReliability, popts, sim, 4800.0);
  EXPECT_GT(result.completed_jobs, 10000u);
  // The controller reported its solved plan on every long tick.  The mean sits
  // just below the 0.995 target because a few peak-load ticks bind at the
  // 12-server cap and plan with fewer spares than the target wants.
  EXPECT_GT(result.availability_estimate, 0.97);
  EXPECT_LE(result.availability_estimate, 1.0);
  EXPECT_GT(result.mean_solved_spares, 0.0);
  // Wear accounting is live: the diurnal fleet cycled at least once.
  EXPECT_GT(result.wear_fraction_max, 0.0);
  EXPECT_GE(result.wear_fraction_max, result.wear_fraction_mean);
  // And the run exposes the reliability gauges for gcinspect / Prometheus.
  EXPECT_GT(result.counters.gauge_or("reliability.availability_estimate", 0.0), 0.97);
  EXPECT_GT(result.counters.gauge_or("fleet.wear_fraction_max", 0.0), 0.0);
  EXPECT_GT(result.counters.gauge_or("fleet.availability_observed", 0.0), 0.5);
}

TEST(ReliabilityInstrumentation, WearCostCutsTransitionsAtEqualSla) {
  // The tentpole claim in miniature (fig16 runs the full sweep): same
  // availability target, same faults — pricing transitions into the
  // objective must cut on/off cycling sharply without giving up the SLA.
  PolicyOptions naive;
  naive.reliability.mtbf_s = 4000.0;
  naive.reliability.mttr_s = 400.0;
  naive.reliability.availability_target = 0.99;
  naive.reliability.cycles_to_failure = 10000.0;
  naive.reliability.cycle_cost_j = 0.0;  // transitions are free
  PolicyOptions wear_aware = naive;
  // Amortized over the 120 s long period this charges ~800 W per server
  // moved — decisively above the idle power a held server costs, so the
  // solver freezes the pool instead of chasing the diurnal trough.
  wear_aware.reliability.cycle_cost_j = 200000.0;
  SimulationOptions sim;
  sim.faults.mtbf_s = 4000.0;
  sim.faults.mttr_s = 400.0;
  sim.faults.seed = 13;
  const SimResult cycling =
      run_policy(PolicyKind::kDcpReliability, naive, sim, 7200.0);
  const SimResult sticky =
      run_policy(PolicyKind::kDcpReliability, wear_aware, sim, 7200.0);
  const std::uint64_t cycling_transitions = cycling.boots + cycling.shutdowns;
  const std::uint64_t sticky_transitions = sticky.boots + sticky.shutdowns;
  EXPECT_LT(sticky_transitions * 2, cycling_transitions)
      << "wear-aware " << sticky_transitions << " vs naive "
      << cycling_transitions;
  // Equal-or-better SLA: both meet the mean-response guarantee.
  EXPECT_LE(cycling.mean_response_s, 0.5);
  EXPECT_LE(sticky.mean_response_s, 0.5);
}

}  // namespace
}  // namespace gc
