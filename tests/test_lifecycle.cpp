// Causal lifecycle tracking tests (cp/lifecycle.h, DESIGN.md §14): the
// deterministic id derivation, the per-command state machine (issued →
// retransmitted×N → acked/applied → completed; superseded/reconciled
// terminal), the drop-attribution sum invariant, the exported counter and
// gauge names the CI gates rely on, Prometheus histogram exposition and
// the jsonl round trip into the `gcinspect --lifecycle` parser.
#include "cp/lifecycle.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "cp/control_plane.h"
#include "obs/inspect.h"
#include "obs/prometheus.h"

namespace gc {
namespace {

CommandFrame frame(CommandKind kind, std::uint64_t gen, double value = 1.0,
                   std::uint32_t era = 0) {
  return CommandFrame{kind, value, gen, era};
}

double counter_of(const CountersSnapshot& snap, const std::string& name) {
  for (const auto& [key, value] : snap.counters) {
    if (key == name) return static_cast<double>(value);
  }
  ADD_FAILURE() << "missing counter " << name;
  return -1.0;
}

double gauge_of(const CountersSnapshot& snap, const std::string& name) {
  for (const auto& [key, value] : snap.gauges) {
    if (key == name) return value;
  }
  ADD_FAILURE() << "missing gauge " << name;
  return -1.0;
}

// -- Identity -----------------------------------------------------------------

TEST(LifecycleId, DerivesFromLaneGenerationWithoutCollisions) {
  // (gen << 1) | kind: both lanes at the same generation stay distinct,
  // and the id is a pure function of wire-visible fields — no new state.
  EXPECT_EQ(command_lifecycle_id(CommandKind::kTarget, 5), 10u);
  EXPECT_EQ(command_lifecycle_id(CommandKind::kSpeed, 5), 11u);
  EXPECT_NE(command_lifecycle_id(CommandKind::kTarget, 7),
            command_lifecycle_id(CommandKind::kSpeed, 7));
  CommandLifecycle rec;
  rec.kind = CommandKind::kSpeed;
  rec.gen = 9;
  EXPECT_EQ(rec.id(), command_lifecycle_id(CommandKind::kSpeed, 9));
}

TEST(LifecycleId, FrameSequencesAreMonotonePerClass) {
  LifecycleTracker tracker;
  EXPECT_EQ(tracker.next_frame_id(FrameClass::kTelemetry), 1u);
  EXPECT_EQ(tracker.next_frame_id(FrameClass::kTelemetry), 2u);
  // Classes count independently.
  EXPECT_EQ(tracker.next_frame_id(FrameClass::kAck), 1u);
  EXPECT_EQ(tracker.next_frame_id(FrameClass::kTelemetry), 3u);
}

// -- Drop attribution ---------------------------------------------------------

TEST(DropAttribution, TotalEqualsTheSumOfEveryCell) {
  DropAttribution attr;
  attr.charge(FrameClass::kTelemetry, DropCause::kChannel, 3);
  attr.charge(FrameClass::kCommand, DropCause::kChannel, 2);
  attr.charge(FrameClass::kCommand, DropCause::kChaosCorrupt);
  attr.charge(FrameClass::kAck, DropCause::kWireCrc);
  EXPECT_EQ(attr.count(FrameClass::kTelemetry, DropCause::kChannel), 3u);
  EXPECT_EQ(attr.count(FrameClass::kCommand, DropCause::kChannel), 2u);
  EXPECT_EQ(attr.total(), 7u);

  CountersSnapshot snap;
  attr.counters_into(snap);
  EXPECT_EQ(counter_of(snap, "cp.drop.telemetry.channel"), 3.0);
  EXPECT_EQ(counter_of(snap, "cp.drop.command.channel"), 2.0);
  EXPECT_EQ(counter_of(snap, "cp.drop.command.chaos_corrupt"), 1.0);
  EXPECT_EQ(counter_of(snap, "cp.drop.ack.wire_crc"), 1.0);
  // The invariant the whole feature gates on: per-cause counters sum
  // exactly to the total — every consumed frame charged exactly once.
  double sum = 0.0;
  for (const auto& [key, value] : snap.counters) {
    if (key.rfind("cp.drop.", 0) == 0 && key != "cp.drop.total") {
      sum += static_cast<double>(value);
    }
  }
  EXPECT_EQ(sum, counter_of(snap, "cp.drop.total"));
}

TEST(DropAttribution, ZeroCellsStayOutOfTheSnapshot) {
  DropAttribution attr;
  CountersSnapshot snap;
  attr.counters_into(snap);
  ASSERT_EQ(snap.counters.size(), 1u);  // just the always-present total
  EXPECT_EQ(counter_of(snap, "cp.drop.total"), 0.0);
}

// -- The state machine --------------------------------------------------------

TEST(LifecycleTracker, HappyPathCompletesWithPerStageLatencies) {
  LifecycleTracker tracker;
  tracker.set_expect_acks(true);
  tracker.set_expect_applies(true);
  tracker.on_issued(10.0, frame(CommandKind::kTarget, 1, 16.0), 0.5);
  tracker.on_applied(13.0, CommandKind::kTarget, 1);
  tracker.on_acked(14.0, CommandKind::kTarget, 1);
  tracker.finalize_all(20.0);

  EXPECT_EQ(tracker.issued(), 1u);
  EXPECT_EQ(tracker.acked(), 1u);
  EXPECT_EQ(tracker.applied(), 1u);
  EXPECT_EQ(tracker.completed(), 1u);
  ASSERT_EQ(tracker.ack_latency().count(), 1u);
  // LogHistogram quantiles are bucket midpoints: exact to ~3%.
  EXPECT_NEAR(tracker.ack_latency().quantile(0.5), 4.0, 4.0 * 0.05);
  EXPECT_NEAR(tracker.apply_latency().quantile(0.5), 3.0, 3.0 * 0.05);
  EXPECT_NEAR(tracker.e2e_latency().quantile(0.5), 4.0, 4.0 * 0.05);
  EXPECT_NEAR(tracker.obs_age().quantile(0.5), 0.5, 0.5 * 0.05);

  const auto records = tracker.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].state, CommandLifecycle::State::kCompleted);
  EXPECT_EQ(records[0].gen, 1u);
  EXPECT_DOUBLE_EQ(records[0].issued_s, 10.0);
  EXPECT_DOUBLE_EQ(records[0].acked_s, 14.0);
  EXPECT_DOUBLE_EQ(records[0].applied_s, 13.0);
}

TEST(LifecycleTracker, RetransmitsTallyOnTheRecord) {
  LifecycleTracker tracker;
  tracker.set_expect_acks(true);
  tracker.on_issued(0.0, frame(CommandKind::kSpeed, 1), 0.0);
  tracker.on_retransmit(5.0, frame(CommandKind::kSpeed, 1));
  tracker.on_retransmit(10.0, frame(CommandKind::kSpeed, 1));
  tracker.on_acked(12.0, CommandKind::kSpeed, 1);
  tracker.finalize_all(20.0);
  const auto records = tracker.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].retransmits, 2u);
  EXPECT_DOUBLE_EQ(records[0].last_sent_s, 10.0);
  EXPECT_EQ(tracker.retransmits(), 2u);
}

TEST(LifecycleTracker, NewerCommandSupersedesTheUnackedPredecessor) {
  LifecycleTracker tracker;
  tracker.set_expect_acks(true);
  tracker.on_issued(0.0, frame(CommandKind::kTarget, 1), 0.0);
  tracker.on_issued(5.0, frame(CommandKind::kTarget, 2), 0.0);
  EXPECT_EQ(tracker.superseded(), 1u);
  // The late ack still lands on the superseded record's timeline but
  // counts as a late event, not a completion.
  tracker.on_acked(6.0, CommandKind::kTarget, 1);
  EXPECT_EQ(tracker.late_events(), 1u);
  tracker.on_acked(7.0, CommandKind::kTarget, 2);
  tracker.finalize_all(10.0);
  const auto records = tracker.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].state, CommandLifecycle::State::kSuperseded);
  EXPECT_DOUBLE_EQ(records[0].acked_s, 6.0);
  EXPECT_EQ(records[1].state, CommandLifecycle::State::kCompleted);
  EXPECT_EQ(tracker.completed(), 1u);
  EXPECT_EQ(tracker.ack_latency().count(), 1u);
}

TEST(LifecycleTracker, ReconciledLaneIsTerminalNotCompleted) {
  LifecycleTracker tracker;
  tracker.set_expect_acks(true);
  tracker.on_issued(0.0, frame(CommandKind::kTarget, 1), 0.0);
  tracker.on_lane_reconciled(30.0, CommandKind::kTarget);
  EXPECT_EQ(tracker.reconciled(), 1u);
  // Idempotent: a second reconcile of the same (already terminal) lane
  // changes nothing.
  tracker.on_lane_reconciled(31.0, CommandKind::kTarget);
  EXPECT_EQ(tracker.reconciled(), 1u);
  tracker.finalize_all(40.0);
  const auto records = tracker.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].state, CommandLifecycle::State::kReconciled);
  EXPECT_EQ(tracker.completed(), 0u);
}

TEST(LifecycleTracker, UnconfirmedCommandStaysInFlightThroughFinalize) {
  LifecycleTracker tracker;
  tracker.set_expect_acks(true);
  tracker.on_issued(0.0, frame(CommandKind::kSpeed, 1), 0.0);
  tracker.finalize_all(100.0);
  const auto records = tracker.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].state, CommandLifecycle::State::kInFlight);
  EXPECT_DOUBLE_EQ(records[0].acked_s, -1.0);
}

TEST(LifecycleTracker, CommandFrameDropsChargeAndTallyPerRecord) {
  LifecycleTracker tracker;
  tracker.set_expect_acks(true);
  tracker.on_issued(0.0, frame(CommandKind::kTarget, 1), 0.0);
  tracker.on_command_frame_dropped(0.0, frame(CommandKind::kTarget, 1),
                                   DropCause::kChannel);
  tracker.on_retransmit(5.0, frame(CommandKind::kTarget, 1));
  tracker.on_command_frame_dropped(5.0, frame(CommandKind::kTarget, 1),
                                   DropCause::kChaosDrop);
  tracker.finalize_all(10.0);
  EXPECT_EQ(tracker.attribution().total(), 2u);
  EXPECT_EQ(tracker.attribution().count(FrameClass::kCommand,
                                        DropCause::kChannel), 1u);
  EXPECT_EQ(tracker.attribution().count(FrameClass::kCommand,
                                        DropCause::kChaosDrop), 1u);
  const auto records = tracker.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].frame_drops, 2u);
}

TEST(LifecycleTracker, DuplicateAcksAndAppliesAreLateEvents) {
  LifecycleTracker tracker;
  tracker.set_expect_acks(true);
  tracker.set_expect_applies(true);
  tracker.on_issued(0.0, frame(CommandKind::kTarget, 1), 0.0);
  tracker.on_applied(1.0, CommandKind::kTarget, 1);
  tracker.on_applied(1.5, CommandKind::kTarget, 1);  // dup while open
  tracker.on_acked(2.0, CommandKind::kTarget, 1);    // completes + closes
  tracker.on_acked(3.0, CommandKind::kTarget, 1);    // dup after close
  EXPECT_EQ(tracker.completed(), 1u);
  EXPECT_EQ(tracker.late_events(), 2u);
}

// -- Exported names -----------------------------------------------------------

TEST(LifecycleTracker, CountersCarryTheGatedNames) {
  LifecycleTracker tracker;
  tracker.set_expect_acks(true);
  tracker.on_issued(0.0, frame(CommandKind::kTarget, 1), 0.0);
  tracker.on_retransmit(5.0, frame(CommandKind::kTarget, 1));
  tracker.on_acked(6.0, CommandKind::kTarget, 1);
  CountersSnapshot snap;
  tracker.counters_into(snap);
  EXPECT_EQ(counter_of(snap, "cp.lifecycle.issued"), 1.0);
  EXPECT_EQ(counter_of(snap, "cp.lifecycle.retransmits"), 1.0);
  EXPECT_EQ(counter_of(snap, "cp.lifecycle.acked"), 1.0);
  EXPECT_EQ(counter_of(snap, "cp.lifecycle.completed"), 1.0);
  // The literal-colon gauge names ci/check.sh gates through gcinspect.
  EXPECT_GT(gauge_of(snap, "cp.lifecycle.ack_latency:p99"), 0.0);
  EXPECT_DOUBLE_EQ(gauge_of(snap, "cp.lifecycle.retransmit_rate"), 1.0);
  EXPECT_DOUBLE_EQ(gauge_of(snap, "cp.lifecycle.open"), 0.0);
}

TEST(LifecycleTracker, PrometheusHistogramsRenderAsBuckets) {
  LifecycleTracker tracker;
  tracker.set_expect_acks(true);
  tracker.on_issued(0.0, frame(CommandKind::kTarget, 1), 0.25);
  tracker.on_acked(2.0, CommandKind::kTarget, 1);
  CountersSnapshot snap;
  tracker.counters_into(snap);
  const std::string text =
      to_prometheus_text(snap, tracker.prometheus_histograms());
  EXPECT_NE(text.find("gc_cp_lifecycle_ack_latency_seconds_bucket{le="),
            std::string::npos);
  EXPECT_NE(text.find("gc_cp_lifecycle_ack_latency_seconds_sum"),
            std::string::npos);
  EXPECT_NE(text.find("gc_cp_lifecycle_ack_latency_seconds_count 1"),
            std::string::npos);
  EXPECT_NE(text.find("gc_cp_lifecycle_obs_age_seconds_count 1"),
            std::string::npos);
}

// -- jsonl round trip ---------------------------------------------------------

TEST(LifecycleJsonl, RoundTripsIntoTheInspectParser) {
  LifecycleTracker tracker;
  tracker.set_expect_acks(true);
  tracker.on_issued(10.0, frame(CommandKind::kTarget, 1, 16.0), 0.5);
  tracker.on_retransmit(15.0, frame(CommandKind::kTarget, 1));
  tracker.on_acked(17.0, CommandKind::kTarget, 1);
  tracker.on_issued(20.0, frame(CommandKind::kSpeed, 1, 0.75), 0.0);
  tracker.finalize_all(30.0);

  std::ostringstream os;
  tracker.export_jsonl(os);
  const std::vector<LifecycleRow> rows = parse_lifecycle_jsonl(os.str());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].kind, "target");
  EXPECT_EQ(rows[0].gen, 1u);
  EXPECT_EQ(rows[0].id, command_lifecycle_id(CommandKind::kTarget, 1));
  EXPECT_DOUBLE_EQ(rows[0].value, 16.0);
  EXPECT_DOUBLE_EQ(rows[0].issued_s, 10.0);
  EXPECT_DOUBLE_EQ(rows[0].obs_age_s, 0.5);
  EXPECT_EQ(rows[0].retransmits, 1u);
  EXPECT_DOUBLE_EQ(rows[0].last_sent_s, 15.0);
  EXPECT_DOUBLE_EQ(rows[0].acked_s, 17.0);
  EXPECT_EQ(rows[0].state, "completed");
  EXPECT_EQ(rows[1].kind, "speed");
  EXPECT_DOUBLE_EQ(rows[1].acked_s, -1.0);
  EXPECT_EQ(rows[1].state, "in-flight");
}

// -- ControlPlane integration -------------------------------------------------

class ScriptedController final : public Controller {
 public:
  ControlAction next;
  [[nodiscard]] double short_period_s() const override { return 10.0; }
  [[nodiscard]] double long_period_s() const override { return 60.0; }
  [[nodiscard]] ControlAction on_short_tick(const ControlContext&) override {
    return next;
  }
  [[nodiscard]] ControlAction on_long_tick(const ControlContext&) override {
    return next;
  }
  [[nodiscard]] const char* name() const override { return "scripted"; }
};

TEST(LifecycleControlPlane, TracksTheFacadeEndToEnd) {
  ScriptedController controller;
  controller.next.active_target = 3;
  controller.next.speed = 0.5;
  ControlPlaneOptions options;
  options.actuator.enabled = true;
  options.actuator.ack_timeout_s = 5.0;
  ControlPlane cp(controller, options, Rng(7, 14));

  const auto decision = cp.on_tick(0.0, /*long_tick=*/true, /*safe_mode=*/false);
  ASSERT_EQ(decision.commands.size(), 2u);
  EXPECT_EQ(cp.lifecycle().issued(), 2u);
  cp.on_command_applied(1.0, CommandKind::kTarget, 1);
  cp.on_ack(2.0, CommandKind::kTarget, 1);
  EXPECT_EQ(cp.lifecycle().acked(), 1u);

  // The unacked speed lane retransmits past the 5 s timeout.  The second
  // tick's action is empty so the decision carries only retry traffic.
  controller.next = ControlAction{};
  const auto retry = cp.on_tick(10.0, false, false);
  bool saw_retransmit = false;
  for (const auto& out : retry.commands) {
    saw_retransmit |= out.retransmit;
  }
  EXPECT_TRUE(saw_retransmit);
  EXPECT_EQ(cp.lifecycle().retransmits(), 1u);

  const CountersSnapshot snap = cp.counters_snapshot();
  EXPECT_EQ(counter_of(snap, "cp.lifecycle.issued"), 2.0);
  EXPECT_EQ(counter_of(snap, "cp.lifecycle.retransmits"), 1.0);
  EXPECT_NE(cp.prometheus_text().find(
                "gc_cp_lifecycle_ack_latency_seconds_bucket{le="),
            std::string::npos);
}

}  // namespace
}  // namespace gc
