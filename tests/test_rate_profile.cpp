#include "workload/rate_profile.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>

namespace gc {
namespace {

TEST(ConstantRateProfile, Basics) {
  const ConstantRate profile(12.5);
  EXPECT_DOUBLE_EQ(profile.rate(0.0), 12.5);
  EXPECT_DOUBLE_EQ(profile.rate(1e6), 12.5);
  EXPECT_DOUBLE_EQ(profile.max_rate(0.0, 100.0), 12.5);
  EXPECT_DOUBLE_EQ(profile.average_rate(0.0, 100.0), 12.5);
  EXPECT_THROW(ConstantRate(-1.0), std::invalid_argument);
}

TEST(SinusoidalRateProfile, OscillatesAroundBase) {
  const SinusoidalRate profile(100.0, 50.0, 86400.0);
  EXPECT_NEAR(profile.rate(0.0), 100.0, 1e-9);
  EXPECT_NEAR(profile.rate(86400.0 / 4.0), 150.0, 1e-9);
  EXPECT_NEAR(profile.rate(3.0 * 86400.0 / 4.0), 50.0, 1e-9);
  EXPECT_NEAR(profile.average_rate(0.0, 86400.0), 100.0, 0.5);
}

TEST(SinusoidalRateProfile, FloorClipsNegative) {
  const SinusoidalRate profile(10.0, 50.0, 1000.0);
  // Trough would be -40; clipped at the default floor of 0.
  EXPECT_DOUBLE_EQ(profile.rate(750.0), 0.0);
}

TEST(SinusoidalRateProfile, RejectsBadParams) {
  EXPECT_THROW(SinusoidalRate(-1.0, 1.0, 10.0), std::invalid_argument);
  EXPECT_THROW(SinusoidalRate(1.0, -1.0, 10.0), std::invalid_argument);
  EXPECT_THROW(SinusoidalRate(1.0, 1.0, 0.0), std::invalid_argument);
}

TEST(PiecewiseLinearRateProfile, InterpolatesAndExtrapolatesFlat) {
  const PiecewiseLinearRate profile({{0.0, 10.0}, {10.0, 20.0}, {20.0, 0.0}});
  EXPECT_DOUBLE_EQ(profile.rate(-5.0), 10.0);
  EXPECT_DOUBLE_EQ(profile.rate(0.0), 10.0);
  EXPECT_DOUBLE_EQ(profile.rate(5.0), 15.0);
  EXPECT_DOUBLE_EQ(profile.rate(15.0), 10.0);
  EXPECT_DOUBLE_EQ(profile.rate(25.0), 0.0);
}

TEST(PiecewiseLinearRateProfile, RejectsBadKnots) {
  EXPECT_THROW(PiecewiseLinearRate({}), std::invalid_argument);
  EXPECT_THROW(PiecewiseLinearRate({{0.0, 1.0}, {0.0, 2.0}}), std::invalid_argument);
  EXPECT_THROW(PiecewiseLinearRate({{0.0, -1.0}}), std::invalid_argument);
}

TEST(FlashCrowdRateProfile, MultipliesDuringSpike) {
  auto base = std::make_shared<ConstantRate>(10.0);
  const FlashCrowdRate profile(base, {{100.0, 50.0, 3.0}});
  EXPECT_DOUBLE_EQ(profile.rate(99.0), 10.0);
  EXPECT_DOUBLE_EQ(profile.rate(100.0), 30.0);
  EXPECT_DOUBLE_EQ(profile.rate(149.0), 30.0);
  EXPECT_DOUBLE_EQ(profile.rate(150.0), 10.0);
}

TEST(FlashCrowdRateProfile, OverlappingSpikesTakeMax) {
  auto base = std::make_shared<ConstantRate>(10.0);
  const FlashCrowdRate profile(base, {{0.0, 100.0, 2.0}, {50.0, 100.0, 4.0}});
  EXPECT_DOUBLE_EQ(profile.rate(75.0), 40.0);
}

TEST(FlashCrowdRateProfile, RejectsBadSpikes) {
  auto base = std::make_shared<ConstantRate>(1.0);
  EXPECT_THROW(FlashCrowdRate(base, {{0.0, 0.0, 2.0}}), std::invalid_argument);
  EXPECT_THROW(FlashCrowdRate(base, {{0.0, 1.0, 0.5}}), std::invalid_argument);
}

TEST(ScaledRateProfile, ScalesEverything) {
  auto base = std::make_shared<ConstantRate>(10.0);
  const ScaledRate profile(base, 2.5);
  EXPECT_DOUBLE_EQ(profile.rate(0.0), 25.0);
  EXPECT_DOUBLE_EQ(profile.max_rate(0.0, 10.0), 25.0);
}

// Majorant property: max_rate(t0,t1) must bound rate(t) for all t in
// [t0,t1] — the NHPP thinning sampler is only correct if this holds.
struct MajorantCase {
  std::shared_ptr<const RateProfile> profile;
  const char* label;
};

class MajorantProperty : public ::testing::TestWithParam<int> {
 public:
  static std::vector<MajorantCase> cases() {
    std::vector<MajorantCase> all;
    all.push_back({std::make_shared<ConstantRate>(5.0), "constant"});
    all.push_back({std::make_shared<SinusoidalRate>(50.0, 30.0, 7200.0, 1234.0), "sine"});
    all.push_back({std::make_shared<PiecewiseLinearRate>(std::vector<PiecewiseLinearRate::Knot>{
                       {0.0, 5.0}, {100.0, 50.0}, {200.0, 10.0}, {400.0, 80.0}}),
                   "piecewise"});
    all.push_back({std::make_shared<FlashCrowdRate>(
                       std::make_shared<SinusoidalRate>(40.0, 20.0, 3600.0),
                       std::vector<FlashCrowdRate::Spike>{{500.0, 600.0, 2.0},
                                                          {2000.0, 300.0, 3.0}}),
                   "flash"});
    all.push_back({make_wc98_like_profile(100.0, 1.0, 7, 7200.0), "wc98"});
    return all;
  }
};

TEST_P(MajorantProperty, MaxRateBoundsPointwiseRate) {
  const auto all = cases();
  const MajorantCase& c = all[static_cast<std::size_t>(GetParam())];
  // Sweep windows of several sizes across [0, 7200].
  for (const double window : {10.0, 137.0, 900.0, 3600.0}) {
    for (double t0 = 0.0; t0 + window <= 7200.0; t0 += window / 2.0) {
      const double bound = c.profile->max_rate(t0, t0 + window);
      for (int k = 0; k <= 20; ++k) {
        const double t = t0 + window * k / 20.0;
        EXPECT_LE(c.profile->rate(t), bound * (1.0 + 1e-9))
            << c.label << " t=" << t << " window=[" << t0 << "," << t0 + window << "]";
      }
    }
  }
}

TEST_P(MajorantProperty, RatesAreNonNegativeAndFinite) {
  const auto all = cases();
  const MajorantCase& c = all[static_cast<std::size_t>(GetParam())];
  for (double t = 0.0; t <= 10000.0; t += 97.0) {
    const double r = c.profile->rate(t);
    EXPECT_GE(r, 0.0) << c.label;
    EXPECT_TRUE(std::isfinite(r)) << c.label;
  }
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, MajorantProperty, ::testing::Range(0, 5));

TEST(Wc98Profile, DeterministicForSeed) {
  const auto a = make_wc98_like_profile(100.0, 2.0, 42);
  const auto b = make_wc98_like_profile(100.0, 2.0, 42);
  for (double t = 0.0; t < 2.0 * 86400.0; t += 3600.0) {
    EXPECT_DOUBLE_EQ(a->rate(t), b->rate(t));
  }
}

TEST(Wc98Profile, DifferentSeedsDiffer) {
  const auto a = make_wc98_like_profile(100.0, 1.0, 1);
  const auto b = make_wc98_like_profile(100.0, 1.0, 2);
  bool differs = false;
  for (double t = 0.0; t < 86400.0; t += 3600.0) {
    if (a->rate(t) != b->rate(t)) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Wc98Profile, RampGrowsAcrossDays) {
  const auto profile = make_wc98_like_profile(100.0, 3.0, 9);
  // Compare the same time-of-day on day 0 vs day 2: the ramp should raise it.
  const double d0 = profile->average_rate(0.0, 86400.0);
  const double d2 = profile->average_rate(2.0 * 86400.0, 3.0 * 86400.0);
  EXPECT_GT(d2, d0);
}

TEST(RateProfileNames, AreDescriptive) {
  EXPECT_NE(ConstantRate(1.0).name().find("const"), std::string::npos);
  EXPECT_NE(SinusoidalRate(1, 0.5, 10).name().find("sine"), std::string::npos);
}

}  // namespace
}  // namespace gc
