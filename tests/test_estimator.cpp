#include "control/estimator.h"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

namespace gc {
namespace {

TEST(Ewma, RejectsBadAlpha) {
  EXPECT_THROW(EwmaEstimator(0.0), std::invalid_argument);
  EXPECT_THROW(EwmaEstimator(1.5), std::invalid_argument);
}

TEST(Ewma, FirstObservationPrimes) {
  EwmaEstimator est(0.2);
  EXPECT_FALSE(est.primed());
  est.observe(10.0);
  EXPECT_TRUE(est.primed());
  EXPECT_DOUBLE_EQ(est.value(), 10.0);
}

TEST(Ewma, SmoothsTowardsNewValues) {
  EwmaEstimator est(0.5);
  est.observe(0.0);
  est.observe(10.0);
  EXPECT_DOUBLE_EQ(est.value(), 5.0);
  est.observe(10.0);
  EXPECT_DOUBLE_EQ(est.value(), 7.5);
}

TEST(Ewma, AlphaOneTracksExactly) {
  EwmaEstimator est(1.0);
  est.observe(3.0);
  est.observe(9.0);
  EXPECT_DOUBLE_EQ(est.value(), 9.0);
}

TEST(Ewma, ConvergesToConstant) {
  EwmaEstimator est(0.3);
  est.observe(0.0);
  for (int i = 0; i < 100; ++i) est.observe(42.0);
  EXPECT_NEAR(est.value(), 42.0, 1e-9);
}

TEST(Ewma, ResetClears) {
  EwmaEstimator est(0.5);
  est.observe(5.0);
  est.reset();
  EXPECT_FALSE(est.primed());
  EXPECT_DOUBLE_EQ(est.value(), 0.0);
}

TEST(SlidingWindow, RejectsZeroCapacity) {
  EXPECT_THROW(SlidingWindowEstimator(0), std::invalid_argument);
}

TEST(SlidingWindow, EmptyReturnsZero) {
  SlidingWindowEstimator est(4);
  EXPECT_DOUBLE_EQ(est.mean(), 0.0);
  EXPECT_DOUBLE_EQ(est.max(), 0.0);
  EXPECT_DOUBLE_EQ(est.last(), 0.0);
}

TEST(SlidingWindow, MeanMaxLast) {
  SlidingWindowEstimator est(4);
  est.observe(1.0);
  est.observe(5.0);
  est.observe(3.0);
  EXPECT_DOUBLE_EQ(est.mean(), 3.0);
  EXPECT_DOUBLE_EQ(est.max(), 5.0);
  EXPECT_DOUBLE_EQ(est.last(), 3.0);
}

TEST(SlidingWindow, EvictsOldest) {
  SlidingWindowEstimator est(2);
  est.observe(100.0);
  est.observe(1.0);
  est.observe(2.0);  // evicts 100
  EXPECT_DOUBLE_EQ(est.max(), 2.0);
  EXPECT_DOUBLE_EQ(est.mean(), 1.5);
  EXPECT_EQ(est.size(), 2u);
}

TEST(SlidingWindow, ResetClears) {
  SlidingWindowEstimator est(3);
  est.observe(1.0);
  est.reset();
  EXPECT_EQ(est.size(), 0u);
}

TEST(StalenessGuard, RejectsBadParameters) {
  EXPECT_THROW(StalenessGuard(-1.0, 1.25), std::invalid_argument);
  EXPECT_THROW(StalenessGuard(std::numeric_limits<double>::quiet_NaN(), 1.25),
               std::invalid_argument);
  EXPECT_THROW(StalenessGuard(60.0, 0.9), std::invalid_argument);
  EXPECT_THROW(StalenessGuard(60.0, std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_NO_THROW(StalenessGuard(0.0, 1.25));
  EXPECT_NO_THROW(StalenessGuard(60.0, 1.0));  // widen = 1 is a valid no-op
}

TEST(StalenessGuard, DisabledGuardIsTheIdentity) {
  StalenessGuard guard(0.0, 2.0);
  EXPECT_DOUBLE_EQ(guard.filter(1e9, 42.0), 42.0);
  EXPECT_FALSE(guard.stale());
  EXPECT_DOUBLE_EQ(guard.margin_multiplier(), 1.0);
  EXPECT_EQ(guard.stale_ticks(), 0u);
}

TEST(StalenessGuard, FreshObservationsPassThroughAndRecord) {
  StalenessGuard guard(60.0, 1.5);
  EXPECT_DOUBLE_EQ(guard.filter(0.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(guard.filter(59.9, 20.0), 20.0);
  EXPECT_DOUBLE_EQ(guard.filter(60.0, 30.0), 30.0);  // boundary: age == horizon
  EXPECT_FALSE(guard.stale());
  EXPECT_DOUBLE_EQ(guard.margin_multiplier(), 1.0);
}

TEST(StalenessGuard, StaleObservationHoldsLastGoodAndWidens) {
  StalenessGuard guard(60.0, 1.5);
  EXPECT_DOUBLE_EQ(guard.filter(10.0, 25.0), 25.0);
  // Past the horizon: the delivered rate is ignored, last-good holds.
  EXPECT_DOUBLE_EQ(guard.filter(61.0, 999.0), 25.0);
  EXPECT_TRUE(guard.stale());
  EXPECT_DOUBLE_EQ(guard.margin_multiplier(), 1.5);
  EXPECT_EQ(guard.stale_ticks(), 1u);
  EXPECT_DOUBLE_EQ(guard.filter(120.0, 999.0), 25.0);
  EXPECT_EQ(guard.stale_ticks(), 2u);
}

TEST(StalenessGuard, RecoversWhenTelemetryFreshens) {
  StalenessGuard guard(30.0, 2.0);
  EXPECT_DOUBLE_EQ(guard.filter(0.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(guard.filter(100.0, 50.0), 10.0);
  EXPECT_TRUE(guard.stale());
  // A fresh delivery clears the stale state and replaces last-good.
  EXPECT_DOUBLE_EQ(guard.filter(5.0, 50.0), 50.0);
  EXPECT_FALSE(guard.stale());
  EXPECT_DOUBLE_EQ(guard.margin_multiplier(), 1.0);
  EXPECT_DOUBLE_EQ(guard.filter(200.0, 77.0), 50.0);
  EXPECT_EQ(guard.stale_ticks(), 2u);  // cumulative over the guard's life
}

TEST(StalenessGuard, StaleBeforeAnyFreshObservationHoldsZero) {
  // If the very first delivery is already stale there is no last-good yet;
  // holding 0 (rather than trusting the dead sample) is the conservative
  // documented behavior — the margin widening carries the hedge.
  StalenessGuard guard(30.0, 1.5);
  EXPECT_DOUBLE_EQ(guard.filter(100.0, 40.0), 0.0);
  EXPECT_TRUE(guard.stale());
}

}  // namespace
}  // namespace gc
