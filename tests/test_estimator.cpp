#include "control/estimator.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace gc {
namespace {

TEST(Ewma, RejectsBadAlpha) {
  EXPECT_THROW(EwmaEstimator(0.0), std::invalid_argument);
  EXPECT_THROW(EwmaEstimator(1.5), std::invalid_argument);
}

TEST(Ewma, FirstObservationPrimes) {
  EwmaEstimator est(0.2);
  EXPECT_FALSE(est.primed());
  est.observe(10.0);
  EXPECT_TRUE(est.primed());
  EXPECT_DOUBLE_EQ(est.value(), 10.0);
}

TEST(Ewma, SmoothsTowardsNewValues) {
  EwmaEstimator est(0.5);
  est.observe(0.0);
  est.observe(10.0);
  EXPECT_DOUBLE_EQ(est.value(), 5.0);
  est.observe(10.0);
  EXPECT_DOUBLE_EQ(est.value(), 7.5);
}

TEST(Ewma, AlphaOneTracksExactly) {
  EwmaEstimator est(1.0);
  est.observe(3.0);
  est.observe(9.0);
  EXPECT_DOUBLE_EQ(est.value(), 9.0);
}

TEST(Ewma, ConvergesToConstant) {
  EwmaEstimator est(0.3);
  est.observe(0.0);
  for (int i = 0; i < 100; ++i) est.observe(42.0);
  EXPECT_NEAR(est.value(), 42.0, 1e-9);
}

TEST(Ewma, ResetClears) {
  EwmaEstimator est(0.5);
  est.observe(5.0);
  est.reset();
  EXPECT_FALSE(est.primed());
  EXPECT_DOUBLE_EQ(est.value(), 0.0);
}

TEST(SlidingWindow, RejectsZeroCapacity) {
  EXPECT_THROW(SlidingWindowEstimator(0), std::invalid_argument);
}

TEST(SlidingWindow, EmptyReturnsZero) {
  SlidingWindowEstimator est(4);
  EXPECT_DOUBLE_EQ(est.mean(), 0.0);
  EXPECT_DOUBLE_EQ(est.max(), 0.0);
  EXPECT_DOUBLE_EQ(est.last(), 0.0);
}

TEST(SlidingWindow, MeanMaxLast) {
  SlidingWindowEstimator est(4);
  est.observe(1.0);
  est.observe(5.0);
  est.observe(3.0);
  EXPECT_DOUBLE_EQ(est.mean(), 3.0);
  EXPECT_DOUBLE_EQ(est.max(), 5.0);
  EXPECT_DOUBLE_EQ(est.last(), 3.0);
}

TEST(SlidingWindow, EvictsOldest) {
  SlidingWindowEstimator est(2);
  est.observe(100.0);
  est.observe(1.0);
  est.observe(2.0);  // evicts 100
  EXPECT_DOUBLE_EQ(est.max(), 2.0);
  EXPECT_DOUBLE_EQ(est.mean(), 1.5);
  EXPECT_EQ(est.size(), 2u);
}

TEST(SlidingWindow, ResetClears) {
  SlidingWindowEstimator est(3);
  est.observe(1.0);
  est.reset();
  EXPECT_EQ(est.size(), 0u);
}

}  // namespace
}  // namespace gc
