// Unit tests for the failure-aware control pieces: the heartbeat failure
// detector, the boot-retry gate and the FailureAwareDcpController's
// capped/spared provisioning.
#include "control/failure_aware.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "control/policies.h"

namespace gc {
namespace {

ClusterConfig small_config() {
  ClusterConfig config;
  config.max_servers = 16;
  config.mu_max = 10.0;
  config.t_ref_s = 0.5;
  return config;
}

ControlContext context(double now, double rate, unsigned serving,
                       unsigned available) {
  ControlContext ctx;
  ctx.now = now;
  ctx.measured_rate = rate;
  ctx.serving = serving;
  ctx.committed = serving;
  ctx.powered = serving;
  ctx.available = available;
  return ctx;
}

TEST(FailureAwareOptions, ValidateRejectsBadParameters) {
  FailureAwareOptions ok;
  EXPECT_NO_THROW(ok.validate());

  FailureAwareOptions bad = ok;
  bad.heartbeat_interval_s = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.heartbeat_misses = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.spare_capacity_fraction = 1.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.boot_retry_budget = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.boot_retry_backoff_s = -1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(FailureAwareOptions, DetectionDelayIsIntervalTimesMisses) {
  FailureAwareOptions options;
  options.heartbeat_interval_s = 5.0;
  options.heartbeat_misses = 3;
  EXPECT_DOUBLE_EQ(options.detection_delay_s(), 15.0);
}

TEST(FailureDetector, FailuresSurfaceOnlyAfterTheWindow) {
  FailureDetector detector(10.0, 8);
  EXPECT_EQ(detector.detected(), 8u);
  // A crash at t=1 stays hidden while the pre-crash sample is in-window.
  EXPECT_EQ(detector.observe(1.0, 6), 8u);
  EXPECT_EQ(detector.observe(5.0, 6), 8u);
  // Once every >=8 sample aged past the 10 s window, the loss is seen.
  EXPECT_EQ(detector.observe(11.5, 6), 6u);
}

TEST(FailureDetector, RepairsAreSeenInstantly) {
  FailureDetector detector(10.0, 8);
  (void)detector.observe(1.0, 6);
  (void)detector.observe(11.5, 6);
  ASSERT_EQ(detector.detected(), 6u);
  // The repaired server announces itself: no detection lag upward.
  EXPECT_EQ(detector.observe(12.0, 8), 8u);
}

TEST(BootRetryGate, AssertsImmediatelyThenBacksOff) {
  BootRetryGate gate(2, 10.0);
  EXPECT_EQ(gate.propose(0.0, 4, 6), 6u);  // new deficit: assert now
  EXPECT_EQ(gate.attempts(), 1u);
  EXPECT_EQ(gate.propose(5.0, 4, 6), 4u);   // before the retry deadline
  EXPECT_EQ(gate.propose(10.0, 4, 6), 6u);  // first retry at t = backoff
  EXPECT_EQ(gate.attempts(), 2u);
  EXPECT_EQ(gate.propose(15.0, 4, 6), 4u);
  EXPECT_EQ(gate.propose(30.0, 4, 6), 4u);  // budget of 2 spent: degrade
  EXPECT_TRUE(gate.exhausted());
}

TEST(BootRetryGate, ReachingTheTargetResetsTheEpisode) {
  BootRetryGate gate(2, 10.0);
  (void)gate.propose(0.0, 4, 6);
  (void)gate.propose(10.0, 4, 6);
  (void)gate.propose(30.0, 4, 6);
  ASSERT_TRUE(gate.exhausted());
  EXPECT_EQ(gate.propose(40.0, 6, 6), 6u);  // deficit closed
  EXPECT_FALSE(gate.exhausted());
  EXPECT_EQ(gate.attempts(), 0u);
  EXPECT_EQ(gate.propose(50.0, 4, 6), 6u);  // a fresh episode asserts again
}

TEST(BootRetryGate, LoweredTargetAlsoResets) {
  BootRetryGate gate(4, 10.0);
  (void)gate.propose(0.0, 4, 6);
  EXPECT_EQ(gate.propose(1.0, 4, 3), 3u);  // plan shrank below committed
  EXPECT_EQ(gate.attempts(), 0u);
}

TEST(BootRetryGate, BackoffDoublesPerRetry) {
  BootRetryGate gate(4, 10.0);
  EXPECT_EQ(gate.propose(0.0, 2, 5), 5u);   // attempt 1, next at 10
  EXPECT_EQ(gate.propose(10.0, 2, 5), 5u);  // attempt 2, next at 10+20
  EXPECT_EQ(gate.propose(29.0, 2, 5), 2u);
  EXPECT_EQ(gate.propose(30.0, 2, 5), 5u);  // attempt 3, next at 30+40
  EXPECT_EQ(gate.propose(69.0, 2, 5), 2u);
  EXPECT_EQ(gate.propose(70.0, 2, 5), 5u);  // attempt 4 (budget)
  EXPECT_EQ(gate.propose(150.0, 2, 5), 2u);
  EXPECT_TRUE(gate.exhausted());
}

TEST(FailureAwareController, FactoryBuildsIt) {
  const Provisioner provisioner(small_config());
  PolicyOptions options;
  const auto controller =
      make_policy(PolicyKind::kDcpFailureAware, &provisioner, options);
  ASSERT_NE(controller, nullptr);
  EXPECT_STREQ(controller->name(), "dcp-failure-aware");
  EXPECT_STREQ(to_string(PolicyKind::kDcpFailureAware), "dcp-failure-aware");
  EXPECT_GT(controller->short_period_s(), 0.0);
  EXPECT_GE(controller->long_period_s(), controller->short_period_s());
}

TEST(FailureAwareController, CapsTargetAtDetectedFleet) {
  const Provisioner provisioner(small_config());
  DcpParams dcp;
  dcp.scale_down_patience = 1;
  FailureAwareOptions options;  // detection delay 10 s
  FailureAwareDcpController controller(&provisioner, dcp,
                                       PredictorKind::kLastValue, options);
  // 10 of 16 servers are gone and the observation is past the detection
  // window: the plan must fit inside the surviving 6 even though the load
  // wants far more.
  const ControlAction action =
      controller.on_long_tick(context(100.0, 120.0, 6, 6));
  ASSERT_TRUE(action.active_target.has_value());
  EXPECT_EQ(*action.active_target, 6u);
  EXPECT_TRUE(action.infeasible);
}

TEST(FailureAwareController, AddsSpareCapacityOnTopOfThePlan) {
  const Provisioner provisioner(small_config());
  DcpParams dcp;
  dcp.scale_down_patience = 1;
  FailureAwareOptions none;
  none.spare_capacity_fraction = 0.0;
  FailureAwareOptions spared;
  spared.spare_capacity_fraction = 0.25;
  FailureAwareDcpController plain(&provisioner, dcp, PredictorKind::kLastValue,
                                  none);
  FailureAwareDcpController with_spares(&provisioner, dcp,
                                        PredictorKind::kLastValue, spared);
  // committed = 1 so both proposals are pure growth (no hysteresis hold).
  const ControlAction base = plain.on_long_tick(context(100.0, 46.0, 1, 16));
  const ControlAction padded =
      with_spares.on_long_tick(context(100.0, 46.0, 1, 16));
  ASSERT_TRUE(base.active_target.has_value());
  ASSERT_TRUE(padded.active_target.has_value());
  // The spared controller plans its base at the *relieved* margin
  // (margin / (1 + fraction), clamped at 1), then adds ceil(fraction * m).
  const double relieved = std::max(1.0, dcp.safety_margin / 1.25);
  const unsigned spared_base = provisioner.solve(46.0 * relieved).servers;
  const unsigned expected = std::min(
      spared_base +
          static_cast<unsigned>(std::ceil(0.25 * static_cast<double>(spared_base))),
      16u);
  EXPECT_EQ(*padded.active_target, expected);
  EXPECT_GT(*padded.active_target, *base.active_target);
}

// Degenerate options must be rejected at construction with a catchable
// std::invalid_argument — not by tripping GC_CHECK aborts deeper in the
// FailureDetector / BootRetryGate constructors.  A config file with
// heartbeat_interval_s = 0 is an input error, not a programming error.
TEST(FailureAwareController, ConstructionValidatesOptions) {
  const Provisioner provisioner(small_config());
  DcpParams dcp;
  const auto construct = [&](const FailureAwareOptions& options) {
    FailureAwareDcpController controller(&provisioner, dcp,
                                         PredictorKind::kLastValue, options);
  };
  FailureAwareOptions bad;
  bad.heartbeat_interval_s = 0.0;
  EXPECT_THROW(construct(bad), std::invalid_argument);
  bad.heartbeat_interval_s = -5.0;
  EXPECT_THROW(construct(bad), std::invalid_argument);
  bad.heartbeat_interval_s = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(construct(bad), std::invalid_argument);
  bad.heartbeat_interval_s = std::numeric_limits<double>::infinity();
  EXPECT_THROW(construct(bad), std::invalid_argument);
  bad = FailureAwareOptions{};
  bad.heartbeat_misses = 0;
  EXPECT_THROW(construct(bad), std::invalid_argument);
  bad = FailureAwareOptions{};
  bad.boot_retry_budget = 0;
  EXPECT_THROW(construct(bad), std::invalid_argument);
  bad = FailureAwareOptions{};
  bad.boot_retry_backoff_s = -1.0;
  EXPECT_THROW(construct(bad), std::invalid_argument);
  // Boundary: the smallest valid settings construct fine.
  FailureAwareOptions minimal;
  minimal.heartbeat_interval_s = 1e-9;
  minimal.heartbeat_misses = 1;
  minimal.boot_retry_budget = 1;
  EXPECT_NO_THROW(construct(minimal));
}

// Same contract through the factory, where config-file settings arrive.
TEST(FailureAwareController, MakePolicyValidatesOptions) {
  const Provisioner provisioner(small_config());
  PolicyOptions popts;
  popts.failure.heartbeat_interval_s = 0.0;
  EXPECT_THROW(make_policy(PolicyKind::kDcpFailureAware, &provisioner, popts),
               std::invalid_argument);
  popts.failure = FailureAwareOptions{};
  popts.failure.heartbeat_misses = 0;
  EXPECT_THROW(make_policy(PolicyKind::kDcpFailureAware, &provisioner, popts),
               std::invalid_argument);
  popts.failure = FailureAwareOptions{};
  EXPECT_NO_THROW(make_policy(PolicyKind::kDcpFailureAware, &provisioner, popts));
}

TEST(FailureAwareController, ShortTickFlagsInfeasibleLoad) {
  const Provisioner provisioner(small_config());
  DcpParams dcp;
  FailureAwareOptions options;
  FailureAwareDcpController controller(&provisioner, dcp,
                                       PredictorKind::kLastValue, options);
  const ControlAction calm = controller.on_short_tick(context(1.0, 10.0, 16, 16));
  ASSERT_TRUE(calm.speed.has_value());
  EXPECT_FALSE(calm.infeasible);
  const ControlAction slammed =
      controller.on_short_tick(context(2.0, 1000.0, 16, 16));
  ASSERT_TRUE(slammed.speed.has_value());
  EXPECT_TRUE(slammed.infeasible);
}

}  // namespace
}  // namespace gc
