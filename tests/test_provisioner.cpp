#include "core/provisioner.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "queueing/mm1.h"
#include "stats/rng.h"

namespace gc {
namespace {

ClusterConfig small_config() {
  ClusterConfig config;
  config.max_servers = 16;
  config.mu_max = 10.0;
  config.t_ref_s = 0.5;
  return config;
}

// Reference solver: brute force over every (m, ladder level) pair.  Slow
// but unarguably correct; everything else is tested against it.
OperatingPoint brute_force(const Provisioner& solver, double lambda) {
  const ClusterConfig& config = solver.config();
  OperatingPoint best;
  bool found = false;
  std::vector<double> speeds;
  if (config.ladder.is_continuous()) {
    // For the continuous ladder the optimum is s_min(m); enumerate those.
    for (unsigned m = config.min_servers; m <= config.max_servers; ++m) {
      const auto s = solver.min_speed(lambda, m);
      if (s) speeds.push_back(std::max(*s, config.ladder.min_speed()));
    }
  } else {
    for (std::size_t i = 0; i < config.ladder.num_levels(); ++i) {
      speeds.push_back(config.ladder.speed_of_level(i));
    }
  }
  for (unsigned m = config.min_servers; m <= config.max_servers; ++m) {
    for (const double s : speeds) {
      const OperatingPoint pt = solver.evaluate(lambda, m, s);
      if (!pt.feasible) continue;
      if (!found || pt.better_than(best)) {
        best = pt;
        found = true;
      }
    }
  }
  if (!found) {
    best = solver.evaluate(lambda, config.max_servers, 1.0);
    best.feasible = false;
  }
  return best;
}

TEST(Provisioner, MinSpeedClosedForm) {
  const Provisioner solver(small_config());
  // s_min = (lambda/m + 1/t_ref) / mu = (8/4 + 2)/10 = 0.4.
  const auto s = solver.min_speed(8.0, 4);
  ASSERT_TRUE(s.has_value());
  EXPECT_NEAR(*s, 0.4, 1e-12);
}

TEST(Provisioner, MinSpeedInfeasibleWhenTooFast) {
  const Provisioner solver(small_config());
  // One server at s=1 serves at most mu - 1/t_ref = 8/s.
  EXPECT_FALSE(solver.min_speed(9.0, 1).has_value());
  EXPECT_TRUE(solver.min_speed(7.9, 1).has_value());
}

TEST(Provisioner, MinSpeedMeetsSlaExactly) {
  const Provisioner solver(small_config());
  for (double lambda : {0.0, 5.0, 20.0, 60.0, 100.0}) {
    for (unsigned m = 1; m <= 16; ++m) {
      const auto s = solver.min_speed(lambda, m);
      if (!s) continue;
      const double mu = *s * solver.config().mu_max;
      const double per_server = lambda / m;
      ASSERT_TRUE(mm1::stable(per_server, mu));
      EXPECT_NEAR(mm1::mean_response_time(per_server, mu), solver.config().t_ref_s, 1e-9);
    }
  }
}

TEST(Provisioner, MinFeasibleServers) {
  const Provisioner solver(small_config());
  // Per-server feasible capacity is 8/s.
  EXPECT_EQ(solver.min_feasible_servers(0.0).value(), 1u);
  EXPECT_EQ(solver.min_feasible_servers(8.0).value(), 1u);
  EXPECT_EQ(solver.min_feasible_servers(8.1).value(), 2u);
  EXPECT_EQ(solver.min_feasible_servers(64.0).value(), 8u);
  EXPECT_EQ(solver.min_feasible_servers(128.0).value(), 16u);
  EXPECT_FALSE(solver.min_feasible_servers(128.1).has_value());
}

TEST(Provisioner, EvaluateReportsConsistentPoint) {
  const Provisioner solver(small_config());
  const OperatingPoint pt = solver.evaluate(16.0, 4, 0.6);
  EXPECT_EQ(pt.servers, 4u);
  EXPECT_DOUBLE_EQ(pt.speed, 0.6);
  // rho = 16 / (4 * 0.6 * 10) = 0.6667
  EXPECT_NEAR(pt.utilization, 16.0 / 24.0, 1e-12);
  // T = 1/(6 - 4) = 0.5 -> exactly on the SLA
  EXPECT_NEAR(pt.response_time_s, 0.5, 1e-12);
  EXPECT_TRUE(pt.feasible);
}

TEST(Provisioner, EvaluateIncludesOffPower) {
  ClusterConfig config = small_config();
  config.power.p_off_watts = 5.0;
  const Provisioner solver(config);
  const OperatingPoint pt = solver.evaluate(0.0, 1, 1.0);
  // 15 off servers at 5 W each contribute 75 W.
  EXPECT_GE(pt.power_watts, 75.0);
}

TEST(Provisioner, SolveOnSmallClusterMatchesBruteForce) {
  const Provisioner solver(small_config());
  for (double lambda = 0.0; lambda <= 130.0; lambda += 2.5) {
    const OperatingPoint got = solver.solve(lambda);
    const OperatingPoint want = brute_force(solver, lambda);
    EXPECT_EQ(got.feasible, want.feasible) << "lambda=" << lambda;
    if (want.feasible) {
      EXPECT_NEAR(got.power_watts, want.power_watts, 1e-9) << "lambda=" << lambda;
      EXPECT_EQ(got.servers, want.servers) << "lambda=" << lambda;
    }
  }
}

TEST(Provisioner, SolveInfeasibleFallsBackToBestEffort) {
  const Provisioner solver(small_config());
  const OperatingPoint pt = solver.solve(1000.0);
  EXPECT_FALSE(pt.feasible);
  EXPECT_EQ(pt.servers, 16u);
  EXPECT_DOUBLE_EQ(pt.speed, 1.0);
}

TEST(Provisioner, SolutionIsFeasibleAndOnLadder) {
  const Provisioner solver(small_config());
  for (double lambda = 0.0; lambda <= 128.0; lambda += 1.0) {
    const OperatingPoint pt = solver.solve(lambda);
    ASSERT_TRUE(pt.feasible) << lambda;
    EXPECT_TRUE(solver.config().ladder.contains(pt.speed)) << lambda;
    EXPECT_LE(pt.response_time_s, solver.config().t_ref_s * (1.0 + 1e-9)) << lambda;
  }
}

TEST(Provisioner, PowerIsMonotoneInLoad) {
  const Provisioner solver(small_config());
  double prev = -1.0;
  for (double lambda = 0.0; lambda <= 128.0; lambda += 4.0) {
    const OperatingPoint pt = solver.solve(lambda);
    EXPECT_GE(pt.power_watts, prev - 1e-9) << "lambda=" << lambda;
    prev = pt.power_watts;
  }
}

TEST(Provisioner, CombinedBeatsBothSingleKnobBaselines) {
  const Provisioner solver(small_config());
  const ClusterConfig& config = solver.config();
  for (double lambda : {10.0, 30.0, 60.0, 90.0, 110.0}) {
    const OperatingPoint combined = solver.solve(lambda);
    // DVFS-only: all servers on, cheapest feasible speed.
    const OperatingPoint dvfs = solver.best_speed_for(lambda, config.max_servers);
    // VOVF-only: fewest servers at full speed.
    OperatingPoint vovf;
    for (unsigned m = 1; m <= config.max_servers; ++m) {
      vovf = solver.evaluate(lambda, m, 1.0);
      if (vovf.feasible) break;
    }
    EXPECT_LE(combined.power_watts, dvfs.power_watts + 1e-9) << lambda;
    EXPECT_LE(combined.power_watts, vovf.power_watts + 1e-9) << lambda;
  }
}

TEST(Provisioner, BestSpeedForSaturatedReturnsInfeasibleFullSpeed) {
  const Provisioner solver(small_config());
  const OperatingPoint pt = solver.best_speed_for(200.0, 2);
  EXPECT_FALSE(pt.feasible);
  EXPECT_DOUBLE_EQ(pt.speed, 1.0);
}

TEST(Provisioner, ContinuousRelaxationBracketsDiscrete) {
  ClusterConfig config = small_config();
  config.ladder = FrequencyLadder::continuous(0.05);
  const Provisioner solver(config);
  for (double lambda : {5.0, 25.0, 70.0, 110.0}) {
    const ContinuousSolution relaxed = solver.solve_continuous(lambda);
    const OperatingPoint discrete = solver.solve(lambda);
    ASSERT_TRUE(relaxed.feasible);
    // Relaxation is a lower bound on the discrete optimum.
    EXPECT_LE(relaxed.power_watts, discrete.power_watts + 1e-6) << lambda;
    // And the discrete optimum is within the power of ceil/floor neighbors.
    EXPECT_NEAR(static_cast<double>(discrete.servers), relaxed.servers, 2.0) << lambda;
  }
}

TEST(Provisioner, RelaxedPowerMatchesEvaluateOnIntegerPoints) {
  ClusterConfig config = small_config();
  config.ladder = FrequencyLadder::continuous(0.01);
  const Provisioner solver(config);
  const double lambda = 40.0;
  for (unsigned m = 6; m <= 16; ++m) {
    const auto s = solver.min_speed(lambda, m);
    ASSERT_TRUE(s.has_value());
    const OperatingPoint pt = solver.evaluate(lambda, m, std::max(*s, 0.01));
    EXPECT_NEAR(solver.relaxed_power(lambda, m), pt.power_watts, 1e-6) << m;
  }
}

// Randomized property: solve_fast agrees with the exact scan across many
// configurations and loads.
struct FastCase {
  std::uint64_t seed;
};

class ProvisionerPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ProvisionerPropertyTest, FastMatchesScan) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  for (int trial = 0; trial < 30; ++trial) {
    ClusterConfig config;
    config.max_servers = 2 + static_cast<unsigned>(rng.uniform_below(510));
    config.mu_max = 5.0 + 45.0 * rng.uniform01();
    config.t_ref_s = 1.5 / config.mu_max + 0.5 * rng.uniform01();
    config.power.alpha = 1.0 + 3.0 * rng.uniform01();
    config.power.utilization_gated = rng.uniform01() < 0.5;
    if (rng.uniform01() < 0.3) {
      config.ladder = FrequencyLadder::continuous(0.05 + 0.2 * rng.uniform01());
    }
    const Provisioner solver(config);
    const double max_rate = config.max_feasible_arrival_rate();
    for (int i = 0; i < 12; ++i) {
      const double lambda = max_rate * 1.05 * rng.uniform01();
      const OperatingPoint scan = solver.solve(lambda);
      const OperatingPoint fast = solver.solve_fast(lambda);
      EXPECT_EQ(scan.feasible, fast.feasible) << "M=" << config.max_servers
                                              << " lambda=" << lambda;
      EXPECT_NEAR(scan.power_watts, fast.power_watts, 1e-6 * (1.0 + scan.power_watts))
          << "M=" << config.max_servers << " lambda=" << lambda
          << " scan m=" << scan.servers << " fast m=" << fast.servers;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProvisionerPropertyTest, ::testing::Range(0, 6));

TEST(Provisioner, MmcModelSolves) {
  ClusterConfig config = small_config();
  config.perf_model = PerfModel::kMmcCluster;
  const Provisioner solver(config);
  const OperatingPoint pt = solver.solve(40.0);
  ASSERT_TRUE(pt.feasible);
  EXPECT_LE(pt.response_time_s, config.t_ref_s * (1.0 + 1e-6));
}

TEST(Provisioner, MmcNeedsNoMoreServersThanMm1) {
  // The shared-queue bound is less conservative: for the same load it never
  // requires more power than the per-server model.
  ClusterConfig mm1_config = small_config();
  ClusterConfig mmc_config = small_config();
  mmc_config.perf_model = PerfModel::kMmcCluster;
  const Provisioner mm1_solver(mm1_config);
  const Provisioner mmc_solver(mmc_config);
  for (double lambda : {10.0, 40.0, 80.0, 120.0}) {
    EXPECT_LE(mmc_solver.solve(lambda).power_watts,
              mm1_solver.solve(lambda).power_watts + 1e-9)
        << lambda;
  }
}

TEST(Provisioner, ZeroLoadUsesMinServersAtLowSpeed) {
  const Provisioner solver(small_config());
  const OperatingPoint pt = solver.solve(0.0);
  EXPECT_EQ(pt.servers, 1u);
  // s_min(1) at lambda 0 is (1/t_ref)/mu = 0.2 -> rounds up to 0.25.
  EXPECT_NEAR(pt.speed, 0.25, 1e-12);
}

TEST(Provisioner, SolveCappedMatchesSolveWhenTheCapIsLoose) {
  const Provisioner solver(small_config());
  for (double lambda : {0.0, 5.0, 20.0, 60.0, 100.0}) {
    const OperatingPoint uncapped = solver.solve(lambda);
    const OperatingPoint capped = solver.solve_capped(lambda, 16);
    EXPECT_EQ(capped.servers, uncapped.servers) << lambda;
    EXPECT_DOUBLE_EQ(capped.speed, uncapped.speed) << lambda;
    EXPECT_EQ(capped.feasible, uncapped.feasible) << lambda;
    // A cap beyond the fleet clamps to max_servers.
    const OperatingPoint over = solver.solve_capped(lambda, 100);
    EXPECT_EQ(over.servers, uncapped.servers) << lambda;
  }
}

TEST(Provisioner, SolveCappedBindsAtTheCap) {
  const Provisioner solver(small_config());
  // 60/s needs at least ceil(60 / (mu - 1/t_ref)) = 8 servers.
  const OperatingPoint at_min = solver.solve_capped(60.0, 8);
  EXPECT_TRUE(at_min.feasible);
  EXPECT_EQ(at_min.servers, 8u);
  for (unsigned cap = 8; cap <= 16; ++cap) {
    const OperatingPoint pt = solver.solve_capped(60.0, cap);
    EXPECT_TRUE(pt.feasible) << cap;
    EXPECT_LE(pt.servers, cap) << cap;
  }
}

TEST(Provisioner, SolveCappedInfeasibleBelowMinServers) {
  const Provisioner solver(small_config());
  // 5 servers cannot carry 60/s within the SLA even at full speed.
  const OperatingPoint pt = solver.solve_capped(60.0, 5);
  EXPECT_FALSE(pt.feasible);
  // Best effort: report the whole capped fleet at full tilt.
  EXPECT_EQ(pt.servers, 5u);
}

TEST(Provisioner, SolveInfeasibleBeyondMaxRate) {
  const Provisioner solver(small_config());
  // The fleet tops out at 16 * (10 - 2) = 128/s.
  EXPECT_TRUE(solver.solve(120.0).feasible);
  const OperatingPoint pt = solver.solve(200.0);
  EXPECT_FALSE(pt.feasible);
  const OperatingPoint capped = solver.solve_capped(200.0, 16);
  EXPECT_FALSE(capped.feasible);
  EXPECT_EQ(capped.servers, 16u);
}

// -- memo cache -------------------------------------------------------------

TEST(ProvisionerCache, RepeatQueriesHitAndMatchFirstAnswerExactly) {
  const Provisioner solver(small_config());
  Rng rng(321);
  std::vector<double> lambdas;
  for (int i = 0; i < 32; ++i) lambdas.push_back(rng.uniform01() * 120.0);

  std::vector<OperatingPoint> first;
  for (const double lambda : lambdas) first.push_back(solver.solve(lambda));
  const std::uint64_t misses_after_first = solver.cache_stats().misses;

  for (std::size_t i = 0; i < lambdas.size(); ++i) {
    const OperatingPoint again = solver.solve(lambdas[i]);
    // Bit-identical, not approximately equal: a hit replays the stored point.
    EXPECT_EQ(again.servers, first[i].servers);
    EXPECT_EQ(again.speed, first[i].speed);
    EXPECT_EQ(again.power_watts, first[i].power_watts);
    EXPECT_EQ(again.response_time_s, first[i].response_time_s);
    EXPECT_EQ(again.feasible, first[i].feasible);
  }
  EXPECT_EQ(solver.cache_stats().misses, misses_after_first);
  EXPECT_GE(solver.cache_stats().hits, lambdas.size());
  EXPECT_GT(solver.cache_stats().hit_rate(), 0.45);
}

TEST(ProvisionerCache, OperationsAndCapsDoNotAliasEachOther) {
  const Provisioner solver(small_config());
  const double lambda = 40.0;
  // λ = 40 needs m >= 5 (s_min(m) = (40/m + 2)/10 <= 1), so a cap of 3 is
  // infeasible and pins capped.servers = 3 while solve() picks m >= 5.
  const OperatingPoint full = solver.solve(lambda);
  const OperatingPoint capped = solver.solve_capped(lambda, 3);
  const OperatingPoint fixed = solver.best_speed_for(lambda, 3);
  // Same λ, three different questions: the cache must keep them distinct.
  EXPECT_NE(capped.servers, full.servers);
  EXPECT_FALSE(capped.feasible);
  EXPECT_EQ(fixed.servers, 3u);
  EXPECT_EQ(solver.solve_capped(lambda, 3).servers, capped.servers);
  EXPECT_EQ(solver.best_speed_for(lambda, 3).speed, fixed.speed);
  // A cap at or beyond the fleet shares the clamped entry.
  const OperatingPoint wide = solver.solve_capped(lambda, 16);
  EXPECT_EQ(solver.solve_capped(lambda, 99).servers, wide.servers);
}

TEST(ProvisionerCache, SetConfigInvalidatesStaleEntries) {
  Provisioner solver(small_config());
  const OperatingPoint before = solver.solve(40.0);
  ClusterConfig tighter = small_config();
  tighter.t_ref_s = 0.2;  // tighter SLA: same λ needs more capacity
  solver.set_config(tighter);
  const OperatingPoint after = solver.solve(40.0);
  const Provisioner fresh(tighter);
  const OperatingPoint expected = fresh.solve(40.0);
  EXPECT_EQ(after.servers, expected.servers);
  EXPECT_EQ(after.speed, expected.speed);
  EXPECT_EQ(after.power_watts, expected.power_watts);
  // The stale answer must not have survived the config change.
  EXPECT_TRUE(after.servers != before.servers || after.speed != before.speed);
}

TEST(ProvisionerCache, InvalidateKeepsStatsButDropsEntries) {
  Provisioner solver(small_config());
  (void)solver.solve(10.0);
  (void)solver.solve(10.0);
  EXPECT_EQ(solver.cache_stats().hits, 1u);
  solver.invalidate_cache();
  EXPECT_EQ(solver.cache_stats().hits, 1u);  // stats survive
  (void)solver.solve(10.0);                  // but the entry is gone
  EXPECT_EQ(solver.cache_stats().misses, 2u);
  solver.reset_cache_stats();
  EXPECT_EQ(solver.cache_stats().hits, 0u);
  EXPECT_EQ(solver.cache_stats().misses, 0u);
}

TEST(Provisioner, RejectsInvalidQueries) {
  const Provisioner solver(small_config());
  EXPECT_DEATH((void)solver.min_speed(1.0, 0), "out of range");
  EXPECT_DEATH((void)solver.min_speed(1.0, 17), "out of range");
  EXPECT_DEATH((void)solver.min_speed(-1.0, 1), "negative");
  EXPECT_DEATH((void)solver.evaluate(1.0, 1, 0.0), "speed");
  EXPECT_DEATH((void)solver.solve(std::nan("")), "bad lambda");
}

}  // namespace
}  // namespace gc
