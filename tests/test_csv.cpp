#include "util/csv.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>

namespace gc {
namespace {

TEST(CsvParse, HeaderAndRows) {
  const CsvTable table = parse_csv("a,b\n1,2\n3.5,4\n");
  ASSERT_EQ(table.header.size(), 2u);
  EXPECT_EQ(table.header[0], "a");
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(table.rows[1][0], 3.5);
}

TEST(CsvParse, SkipsCommentsAndBlankLines) {
  const CsvTable table = parse_csv("# comment\n\na\n# another\n1\n\n2\n");
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(table.rows[0][0], 1.0);
}

TEST(CsvParse, TrimsHeaderWhitespace) {
  const CsvTable table = parse_csv(" a , b \n1,2\n");
  EXPECT_EQ(table.header[0], "a");
  EXPECT_EQ(table.header[1], "b");
}

TEST(CsvParse, RaggedRowThrows) {
  EXPECT_THROW(parse_csv("a,b\n1\n"), std::runtime_error);
}

TEST(CsvParse, NonNumericCellThrows) {
  EXPECT_THROW(parse_csv("a\nxyz\n"), std::runtime_error);
}

TEST(CsvParse, EmptyInputThrows) {
  EXPECT_THROW(parse_csv(""), std::runtime_error);
  EXPECT_THROW(parse_csv("# only comments\n"), std::runtime_error);
}

TEST(CsvTableApi, ColumnIndex) {
  const CsvTable table = parse_csv("x,y,z\n1,2,3\n");
  EXPECT_EQ(table.column_index("y"), 1);
  EXPECT_EQ(table.column_index("missing"), -1);
}

TEST(CsvRoundTrip, FileIo) {
  CsvTable table;
  table.header = {"t", "v"};
  table.rows = {{0.5, 1.25}, {1.0, -3.0}};
  const auto path = std::filesystem::temp_directory_path() / "gc_test_roundtrip.csv";
  write_csv_file(path, table);
  const CsvTable loaded = read_csv_file(path);
  ASSERT_EQ(loaded.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded.rows[0][1], 1.25);
  EXPECT_DOUBLE_EQ(loaded.rows[1][1], -3.0);
  std::filesystem::remove(path);
}

TEST(CsvRoundTrip, PreservesPrecision) {
  CsvTable table;
  table.header = {"v"};
  table.rows = {{123456.789012}};
  const CsvTable again = parse_csv(to_csv_text(table));
  EXPECT_NEAR(again.rows[0][0], 123456.789012, 1e-6);
}

TEST(CsvFileErrors, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/path/file.csv"), std::runtime_error);
}

TEST(CsvFileErrors, UnwritablePathThrows) {
  CsvTable table;
  table.header = {"a"};
  EXPECT_THROW(write_csv_file("/nonexistent/dir/file.csv", table), std::runtime_error);
}

}  // namespace
}  // namespace gc
