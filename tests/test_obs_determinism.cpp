// Observability must be free of side effects: attaching the trace collector
// and the audit log to a run must leave every simulated quantity bit-equal
// to the untraced run — same RNG draws, same event order, same SimResult.
// The traced run is pinned against the same golden checksum as
// tests/test_determinism_golden.cpp, so a regression here fails loudly even
// if both runs drift together.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <string_view>

#include "control/policies.h"
#include "exp/scenario.h"
#include "obs/audit.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "sim/simulation.h"

namespace gc {
namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0x100000001b3ULL;
  return h;
}

std::uint64_t mix(std::uint64_t h, double v) {
  return mix(h, std::bit_cast<std::uint64_t>(v));
}

// Identical to the golden checksum: every scalar plus the timeline, and
// deliberately NOT the counters snapshot (the "obs.*" counters describe the
// instrumentation itself, which legitimately differs with tracing on/off).
std::uint64_t checksum(const SimResult& r) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = mix(h, r.completed_jobs);
  h = mix(h, r.dropped_jobs);
  h = mix(h, r.shed_jobs);
  h = mix(h, r.failures);
  h = mix(h, r.repairs);
  h = mix(h, r.boot_timeouts);
  h = mix(h, r.jobs_redispatched);
  h = mix(h, r.jobs_lost);
  h = mix(h, r.sim_time_s);
  h = mix(h, r.mean_response_s);
  h = mix(h, r.p95_response_s);
  h = mix(h, r.p99_response_s);
  h = mix(h, r.max_response_s);
  h = mix(h, r.job_violation_ratio);
  h = mix(h, r.window_violation_ratio);
  h = mix(h, r.energy.busy_j);
  h = mix(h, r.energy.idle_j);
  h = mix(h, r.energy.transition_j);
  h = mix(h, r.energy.off_j);
  h = mix(h, r.mean_power_w);
  h = mix(h, r.boots);
  h = mix(h, r.shutdowns);
  h = mix(h, r.mean_serving);
  h = mix(h, r.mean_speed);
  h = mix(h, r.mean_jobs_in_system);
  h = mix(h, r.mean_available);
  h = mix(h, r.unavailability);
  h = mix(h, r.shed_ratio);
  h = mix(h, r.infeasible_ticks);
  h = mix(h, r.infeasible_ratio);
  for (const TimelinePoint& p : r.timeline) {
    h = mix(h, p.time);
    h = mix(h, p.arrival_rate);
    h = mix(h, static_cast<std::uint64_t>(p.serving));
    h = mix(h, static_cast<std::uint64_t>(p.powered));
    h = mix(h, static_cast<std::uint64_t>(p.available));
    h = mix(h, p.speed);
    h = mix(h, p.power_watts);
    h = mix(h, p.jobs_in_system);
    h = mix(h, p.window_mean_response_s);
    h = mix(h, p.admit_probability);
  }
  return h;
}

// Same fixed-seed setup as tests/test_determinism_golden.cpp.  `extra`
// lets individual tests layer faults / admission / control-plane options
// onto the golden configuration (defaults keep the historical behavior).
struct GoldenRun {
  ClusterConfig config = bench_cluster_config();
  PolicyOptions popts;
  Scenario scenario;
  SimulationOptions extra;

  GoldenRun() {
    popts.dcp = bench_dcp_params();
    scenario = make_scenario(ScenarioKind::kDiurnal, config, /*level=*/0.7,
                             /*seed=*/1234, /*day_s=*/2400.0);
  }

  [[nodiscard]] SimResult run(TraceCollector* trace, DecisionAuditLog* audit,
                              TimeSeriesRecorder* timeseries = nullptr) {
    Workload workload = scenario.make_workload(config, /*seed=*/97);
    const Provisioner solver(config);
    const auto controller = make_policy(PolicyKind::kCombinedDcp, &solver, popts);
    ClusterOptions cluster;
    cluster.num_servers = config.max_servers;
    cluster.power = config.power;
    cluster.transition = config.transition;
    cluster.initial_active = config.max_servers;
    cluster.dispatch_seed = 4242;
    SimulationOptions sim = extra;
    sim.t_ref_s = config.t_ref_s;
    sim.warmup_s = popts.dcp.long_period_s;
    sim.record_interval_s = 120.0;
    sim.trace = trace;
    sim.audit = audit;
    sim.timeseries = timeseries;
    return run_simulation(workload, cluster, *controller, sim);
  }
};

// The counters snapshot is compared separately: everything outside the
// "obs." namespace must match exactly.
bool counters_match_outside_obs(const CountersSnapshot& a, const CountersSnapshot& b) {
  const auto is_obs = [](std::string_view name) { return name.starts_with("obs."); };
  for (const auto& [name, value] : a.counters) {
    if (!is_obs(name) && b.counter_or(name, value + 1) != value) return false;
  }
  for (const auto& [name, value] : b.counters) {
    if (!is_obs(name) && a.counter_or(name, value + 1) != value) return false;
  }
  return true;
}

TEST(ObsDeterminism, TracingOnAndOffProduceIdenticalResults) {
  GoldenRun golden;
  TraceCollector trace;
  DecisionAuditLog audit;
  const SimResult traced = golden.run(&trace, &audit);
  const SimResult untraced = golden.run(nullptr, nullptr);
  EXPECT_EQ(checksum(traced), checksum(untraced));
  EXPECT_TRUE(counters_match_outside_obs(traced.counters, untraced.counters));
  if constexpr (kTracingCompiledIn) {
    EXPECT_GT(trace.emitted(), 0u);
    EXPECT_FALSE(audit.empty());
  }
}

// Pinned to the PR 2 golden: a traced run reproduces the pre-observability
// simulator bit-for-bit.  If this fails together with DeterminismGolden,
// the simulator changed; if it fails alone, the instrumentation leaked into
// simulation behavior.
TEST(ObsDeterminism, TracedRunMatchesPinnedGolden) {
  GoldenRun golden;
  TraceCollector trace;
  DecisionAuditLog audit;
  const SimResult traced = golden.run(&trace, &audit);
  EXPECT_EQ(checksum(traced), 13401298517741172659ULL);
}

// A saturated ring (tiny capacity, guaranteed overwrites) is still free of
// side effects — eviction happens inside the collector only.
TEST(ObsDeterminism, RingOverflowDoesNotPerturbTheRun) {
  GoldenRun golden;
  TraceOptions tiny;
  tiny.capacity = 16;
  TraceCollector trace(tiny);
  const SimResult traced = golden.run(&trace, nullptr);
  EXPECT_EQ(checksum(traced), 13401298517741172659ULL);
  if constexpr (kTracingCompiledIn) {
    EXPECT_GT(trace.dropped(), 0u);
    EXPECT_EQ(trace.size(), 16u);
  }
}

// Two identical runs produce identical snapshots, including "obs.*": the
// counters themselves are deterministic, only the on/off contrast exempts
// them above.
TEST(ObsDeterminism, CountersSnapshotIsRunToRunDeterministic) {
  GoldenRun golden;
  TraceCollector t1, t2;
  DecisionAuditLog a1, a2;
  const SimResult r1 = golden.run(&t1, &a1);
  const SimResult r2 = golden.run(&t2, &a2);
  EXPECT_EQ(r1.counters, r2.counters);
  EXPECT_EQ(a1.to_jsonl(), a2.to_jsonl());
  if constexpr (kTracingCompiledIn) {
    EXPECT_EQ(t1.to_chrome_json(), t2.to_chrome_json());
  }
}

// The control-plane degradation layer's determinism contract: a
// zero-loss/zero-latency channel with the ack/retry actuator and the
// watchdog armed consumes no randomness and schedules no extra events, so
// the run reproduces the PR 2 golden bit-for-bit.  The stale-telemetry
// guard is enabled too — with synchronous delivery every observation has
// age 0 and the guard must be the exact identity.
TEST(ObsDeterminism, PerfectChannelWithActuatorMatchesPinnedGolden) {
  GoldenRun golden;
  golden.extra.channel.enabled = true;  // all links at zero loss / latency
  golden.extra.actuator.enabled = true;
  golden.extra.controller_faults.watchdog_ticks = 3;  // armed, never trips
  golden.popts.staleness.horizon_s = 60.0;
  const SimResult result = golden.run(nullptr, nullptr);
  EXPECT_EQ(checksum(result), 13401298517741172659ULL);
  EXPECT_EQ(result.command_retries, 0u);
  EXPECT_EQ(result.telemetry_dropped, 0u);
  EXPECT_EQ(result.ticks_missed, 0u);
  // Every command was delivered and acked synchronously.
  EXPECT_EQ(result.counters.counter_or("act.retries", 99), 0u);
  EXPECT_GT(result.counters.counter_or("act.acked", 0), 0u);
}

// Pinned golden for the degraded path itself: scripted data-plane faults +
// admission control (the PR 1 golden configuration) plus a lossy, latent
// control channel with retries and a scripted controller outage.  Pins the
// full fault stack — any drift in channel sampling, retry scheduling, era
// handling or watchdog behavior lands here.
// The lossy control-plane stack of FaultsAdmissionChannelGoldenIsPinned,
// shared with the time-series variants below.
GoldenRun make_lossy_golden() {
  GoldenRun golden;
  golden.extra.faults.script = {{600.0, 0, 900.0},
                                {600.0, 1, 900.0},
                                {601.0, 2, 1200.0},
                                {1200.0, 3, std::numeric_limits<double>::infinity()}};
  golden.extra.faults.seed = 99;
  golden.extra.admission.enabled = true;
  golden.extra.admission.mu_max = golden.config.mu_max;
  golden.extra.channel.enabled = true;
  golden.extra.channel.telemetry = {/*drop_prob=*/0.05, /*latency_base_s=*/0.05,
                                    /*latency_jitter_s=*/0.1};
  golden.extra.channel.command = {/*drop_prob=*/0.05, /*latency_base_s=*/0.05,
                                  /*latency_jitter_s=*/0.1};
  golden.extra.channel.ack = {/*drop_prob=*/0.05, /*latency_base_s=*/0.05,
                              /*latency_jitter_s=*/0.1};
  golden.extra.actuator.enabled = true;
  golden.extra.actuator.ack_timeout_s = 2.0;
  golden.extra.controller_faults.script = {{900.0, 120.0}};
  golden.popts.staleness.horizon_s = 60.0;
  return golden;
}

TEST(ObsDeterminism, FaultsAdmissionChannelGoldenIsPinned) {
  GoldenRun golden = make_lossy_golden();
  const SimResult result = golden.run(nullptr, nullptr);
  EXPECT_EQ(checksum(result), 13159024489807549190ULL);
  // The degraded path actually exercised what it pins.
  EXPECT_GT(result.telemetry_dropped, 0u);
  EXPECT_GT(result.commands_dropped, 0u);
  EXPECT_GT(result.command_retries, 0u);
  EXPECT_GT(result.ticks_missed, 0u);
  EXPECT_EQ(result.safe_mode_entries, 1u);
}

// The channel golden is observability-independent like every other run:
// tracing it changes nothing.
TEST(ObsDeterminism, DegradedChannelRunIsTraceIndependent) {
  GoldenRun golden;
  golden.extra.channel.enabled = true;
  golden.extra.channel.command = {/*drop_prob=*/0.1, /*latency_base_s=*/0.2,
                                  /*latency_jitter_s=*/0.3};
  golden.extra.actuator.enabled = true;
  TraceCollector trace;
  DecisionAuditLog audit;
  const SimResult traced = golden.run(&trace, &audit);
  const SimResult untraced = golden.run(nullptr, nullptr);
  EXPECT_EQ(checksum(traced), checksum(untraced));
  EXPECT_TRUE(counters_match_outside_obs(traced.counters, untraced.counters));
}

// The time-series recorder obeys the same contract as the trace collector:
// attaching it to the clean golden changes nothing, so the recorded run
// reproduces the PR 2 checksum bit-for-bit and the recorder actually saw
// every control instant.
TEST(ObsDeterminism, TimeSeriesRecorderMatchesPinnedGolden) {
  GoldenRun golden;
  TimeSeriesRecorder timeseries;
  const SimResult recorded = golden.run(nullptr, nullptr, &timeseries);
  EXPECT_EQ(checksum(recorded), 13401298517741172659ULL);
  EXPECT_GT(timeseries.periods(), 0u);
  EXPECT_EQ(timeseries.periods(),
            recorded.counters.counter_or("obs.timeseries.periods", 0));
  EXPECT_EQ(timeseries.size(),
            recorded.counters.counter_or("obs.timeseries.rows", 0));
}

// And the degraded-path golden: recording the lossy channel/faults/admission
// run must not shift a single RNG draw or retry timer.  This is the pin the
// issue asks for — the recorder samples channel counters and actuator state
// every tick, all read-only.
TEST(ObsDeterminism, TimeSeriesEnabledLossyRunMatchesPinnedGolden) {
  GoldenRun golden = make_lossy_golden();
  TimeSeriesRecorder timeseries;
  const SimResult recorded = golden.run(nullptr, nullptr, &timeseries);
  EXPECT_EQ(checksum(recorded), 13159024489807549190ULL);

  GoldenRun plain = make_lossy_golden();
  const SimResult unrecorded = plain.run(nullptr, nullptr);
  EXPECT_TRUE(counters_match_outside_obs(recorded.counters, unrecorded.counters));

  // The recorded trajectory localizes the degradation the run-level totals
  // only sum: period-level drop/retry/missed-tick deltas add back up to the
  // SimResult counters.
  const auto column_sum = [&](TimeSeriesRecorder::Col col) {
    double total = 0.0;
    for (std::size_t row = 0; row < timeseries.size(); ++row) {
      total += timeseries.value(col, row);
    }
    return static_cast<std::uint64_t>(total);
  };
  EXPECT_EQ(column_sum(TimeSeriesRecorder::kDTelemetryDropped),
            recorded.telemetry_dropped);
  EXPECT_EQ(column_sum(TimeSeriesRecorder::kDCommandsDropped),
            recorded.commands_dropped);
  EXPECT_EQ(column_sum(TimeSeriesRecorder::kDCmdRetries), recorded.command_retries);
  EXPECT_EQ(column_sum(TimeSeriesRecorder::kDTicksMissed), recorded.ticks_missed);
  // Safe mode was entered, and the recorder saw it.
  double safe_rows = 0.0;
  for (std::size_t row = 0; row < timeseries.size(); ++row) {
    safe_rows += timeseries.value(TimeSeriesRecorder::kSafeMode, row);
  }
  EXPECT_GT(safe_rows, 0.0);
}

// Recorder on/off is a pure observation contrast on the lossy path too:
// identical checksums and identical non-obs counters, twice over.
TEST(ObsDeterminism, LossyRunIsTimeSeriesIndependent) {
  GoldenRun with = make_lossy_golden();
  TimeSeriesRecorder timeseries;
  const SimResult recorded = with.run(nullptr, nullptr, &timeseries);
  GoldenRun without = make_lossy_golden();
  const SimResult unrecorded = without.run(nullptr, nullptr);
  EXPECT_EQ(checksum(recorded), checksum(unrecorded));
  EXPECT_TRUE(counters_match_outside_obs(recorded.counters, unrecorded.counters));
}

}  // namespace
}  // namespace gc
