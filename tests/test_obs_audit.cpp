// DecisionAuditLog: one record per control period on a short fig5-style
// run, field consistency against the run's counters, and stable writers.
#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>

#include "control/policies.h"
#include "exp/scenario.h"
#include "obs/audit.h"
#include "sim/simulation.h"

namespace gc {
namespace {

// A compressed diurnal half-day under combined-dcp: small enough for a unit
// test, long enough to exercise both tick kinds, boots and shutdowns.
SimResult run_fig5_style(DecisionAuditLog* audit) {
  ClusterConfig config = bench_cluster_config();
  PolicyOptions popts;
  popts.dcp = bench_dcp_params();
  const Scenario scenario = make_scenario(ScenarioKind::kDiurnal, config,
                                          /*level=*/0.7, /*seed=*/55,
                                          /*day_s=*/1200.0);
  Workload workload = scenario.make_workload(config, /*seed=*/97);
  const Provisioner solver(config);
  const auto controller = make_policy(PolicyKind::kCombinedDcp, &solver, popts);
  ClusterOptions cluster;
  cluster.num_servers = config.max_servers;
  cluster.power = config.power;
  cluster.transition = config.transition;
  cluster.initial_active = config.max_servers;
  cluster.dispatch_seed = 4242;
  SimulationOptions sim;
  sim.t_ref_s = config.t_ref_s;
  sim.warmup_s = popts.dcp.long_period_s;
  sim.audit = audit;
  return run_simulation(workload, cluster, *controller, sim);
}

std::size_t count_lines(const std::string& text) {
  std::size_t n = 0;
  for (const char c : text) n += c == '\n';
  return n;
}

TEST(DecisionAuditLog, OneRecordPerControlPeriod) {
  DecisionAuditLog audit;
  const SimResult result = run_fig5_style(&audit);
  ASSERT_FALSE(audit.empty());
  // The acceptance bar: exactly one audit record per control tick taken.
  EXPECT_EQ(audit.size(), result.counters.counter_or("control.ticks", 0));
  EXPECT_EQ(audit.size(), result.counters.counter_or("obs.audit.records", 0));

  std::size_t long_ticks = 0;
  double prev_time = -1.0;
  for (const AuditRecord& rec : audit.records()) {
    EXPECT_GE(rec.time_s, prev_time);  // ticks arrive in time order
    prev_time = rec.time_s;
    long_ticks += rec.long_tick;
    EXPECT_LE(rec.serving, rec.committed);
    EXPECT_LE(rec.committed, rec.powered);
    EXPECT_GE(rec.admit_probability, 0.0);
    EXPECT_LE(rec.admit_probability, 1.0);
    if (rec.long_tick) {
      // Combined-dcp long ticks always command a target and explain it.
      EXPECT_TRUE(rec.target_set);
      EXPECT_GT(rec.planned_servers, 0u);
      EXPECT_GT(rec.safety_margin, 1.0);
      EXPECT_GE(rec.planning_rate, rec.predicted_rate);
      EXPECT_EQ(rec.delta_servers, static_cast<int>(rec.target_servers) -
                                       static_cast<int>(rec.committed));
    } else {
      // Short ticks fit the speed only.
      EXPECT_TRUE(rec.speed_set);
      EXPECT_GT(rec.speed, 0.0);
      EXPECT_LE(rec.speed, 1.0);
    }
  }
  // Short period strictly divides the long one, so short ticks dominate.
  EXPECT_GT(long_ticks, 0u);
  EXPECT_LT(long_ticks, audit.size() - long_ticks);
}

TEST(DecisionAuditLog, AttachingTheLogDoesNotChangeTheRun) {
  DecisionAuditLog audit;
  const SimResult with = run_fig5_style(&audit);
  const SimResult without = run_fig5_style(nullptr);
  EXPECT_EQ(with.completed_jobs, without.completed_jobs);
  EXPECT_EQ(with.boots, without.boots);
  EXPECT_DOUBLE_EQ(with.mean_response_s, without.mean_response_s);
  EXPECT_DOUBLE_EQ(with.energy.total_j(), without.energy.total_j());
}

TEST(DecisionAuditLog, GoldenRunIsByteStable) {
  // The writers are part of the CI artifact contract: two identical runs
  // must serialize byte-identically (no iteration-order or formatting
  // nondeterminism).
  DecisionAuditLog first, second;
  (void)run_fig5_style(&first);
  (void)run_fig5_style(&second);
  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(first.to_jsonl(), second.to_jsonl());
  EXPECT_EQ(to_csv_text(first.to_csv_table()), to_csv_text(second.to_csv_table()));
}

TEST(DecisionAuditLog, JsonlHasOneObjectPerRecord) {
  DecisionAuditLog audit;
  (void)run_fig5_style(&audit);
  const std::string jsonl = audit.to_jsonl();
  EXPECT_EQ(count_lines(jsonl), audit.size());
  // Every line is a flat object carrying the tick kind.
  std::istringstream lines(jsonl);
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"tick\""), std::string::npos);
    EXPECT_NE(line.find("\"t\""), std::string::npos);
  }
}

TEST(DecisionAuditLog, CsvHasHeaderPlusOneRowPerRecord) {
  DecisionAuditLog audit;
  (void)run_fig5_style(&audit);
  const std::string text = to_csv_text(audit.to_csv_table());
  EXPECT_EQ(count_lines(text), audit.size() + 1);  // header + rows
  EXPECT_EQ(text.rfind("t,long_tick,", 0), 0u);
}

}  // namespace
}  // namespace gc
