#include "sim/metrics.h"

#include <gtest/gtest.h>

namespace gc {
namespace {

Job make_job(double arrival) {
  Job job;
  job.arrival_time = arrival;
  return job;
}

TEST(MetricsCollector, RejectsBadTref) {
  EXPECT_DEATH(MetricsCollector(0.0), "positive");
}

TEST(MetricsCollector, TracksResponseStatistics) {
  MetricsCollector metrics(1.0);
  metrics.on_job_completed(2.0, make_job(0.0));   // response 2.0 (violation)
  metrics.on_job_completed(2.5, make_job(2.0));   // response 0.5
  metrics.on_job_completed(3.0, make_job(2.9));   // response 0.1
  EXPECT_EQ(metrics.completed(), 3u);
  EXPECT_NEAR(metrics.response().mean(), (2.0 + 0.5 + 0.1) / 3.0, 1e-12);
  EXPECT_NEAR(metrics.job_violation_ratio(), 1.0 / 3.0, 1e-12);
}

TEST(MetricsCollector, WindowMeanResetsOnTake) {
  MetricsCollector metrics(1.0);
  metrics.on_job_completed(1.0, make_job(0.0));
  EXPECT_DOUBLE_EQ(metrics.take_window_mean_response(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.take_window_mean_response(), 0.0);  // emptied
  metrics.on_job_completed(5.0, make_job(4.5));
  EXPECT_DOUBLE_EQ(metrics.take_window_mean_response(), 0.5);
  // Global stats unaffected by window resets.
  EXPECT_EQ(metrics.completed(), 2u);
}

TEST(MetricsCollector, PercentilesOrdered) {
  MetricsCollector metrics(10.0);
  for (int i = 1; i <= 1000; ++i) {
    metrics.on_job_completed(i * 0.001, make_job(0.0));
  }
  EXPECT_LE(metrics.p95(), metrics.p99());
  EXPECT_GT(metrics.p95(), 0.0);
}

TEST(SimResult, SlaCheck) {
  SimResult result;
  result.mean_response_s = 0.4;
  EXPECT_TRUE(result.sla_met(0.5));
  EXPECT_FALSE(result.sla_met(0.3));
}

TEST(EnergyBreakdownStruct, TotalSums) {
  EnergyBreakdown e;
  e.busy_j = 1.0;
  e.idle_j = 2.0;
  e.transition_j = 3.0;
  e.off_j = 4.0;
  EXPECT_DOUBLE_EQ(e.total_j(), 10.0);
}

}  // namespace
}  // namespace gc
