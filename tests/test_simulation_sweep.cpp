// Parameterized validation sweep: the simulator against M/M/1 theory over
// a (utilization, speed) grid — the property-style counterpart of
// test_simulation_validation.cpp's hand-picked cases.
#include <gtest/gtest.h>

#include "queueing/mm1.h"
#include "sim/simulation.h"
#include "workload/workload.h"

namespace gc {
namespace {

struct SweepCase {
  double rho;    // target utilization at the chosen speed
  double speed;  // normalized server speed
};

class PinController final : public Controller {
 public:
  PinController(unsigned servers, double speed) : servers_(servers), speed_(speed) {}
  [[nodiscard]] double short_period_s() const override { return 1e9; }
  [[nodiscard]] double long_period_s() const override { return 1e9; }
  [[nodiscard]] ControlAction on_short_tick(const ControlContext&) override { return {}; }
  [[nodiscard]] ControlAction on_long_tick(const ControlContext&) override {
    ControlAction action;
    action.active_target = servers_;
    action.speed = speed_;
    return action;
  }
  [[nodiscard]] const char* name() const override { return "pin"; }

 private:
  unsigned servers_;
  double speed_;
};

class Mm1SweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(Mm1SweepTest, MeanResponseOnTheCurve) {
  const auto [rho, speed] = GetParam();
  constexpr double kMuMax = 10.0;
  const double mu_eff = speed * kMuMax;
  const double lambda = rho * mu_eff;
  // Enough jobs that the sample mean is tight even at rho = 0.9.
  const double horizon = 160000.0 / lambda;
  Workload workload = Workload::poisson_exponential(lambda, kMuMax, horizon,
                                                    static_cast<std::uint64_t>(
                                                        rho * 1000 + speed * 100));
  ClusterOptions options;
  options.num_servers = 1;
  options.initial_active = 1;
  PinController controller(1, speed);
  SimulationOptions sim;
  sim.t_ref_s = 1e6;  // not under test here
  sim.warmup_s = horizon * 0.05;
  const SimResult result = run_simulation(workload, options, controller, sim);

  const double expected = mm1::mean_response_time(lambda, mu_eff);
  EXPECT_NEAR(result.mean_response_s, expected, expected * 0.08)
      << "rho=" << rho << " speed=" << speed;
  // Busy-time fraction == rho (energy-side cross-check).
  const double busy_fraction =
      result.energy.busy_j /
      (result.energy.busy_j + result.energy.idle_j > 0.0
           ? result.energy.busy_j + result.energy.idle_j
           : 1.0);
  // Busy power at speed s is p(s,1), idle p(s,0): translate fractions via
  // the default gated model (idle 150 W, busy 150+100 s^3 W).
  const double p_busy = 150.0 + 100.0 * speed * speed * speed;
  const double p_idle = 150.0;
  const double expected_fraction =
      rho * p_busy / (rho * p_busy + (1.0 - rho) * p_idle);
  EXPECT_NEAR(busy_fraction, expected_fraction, 0.03)
      << "rho=" << rho << " speed=" << speed;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Mm1SweepTest,
    ::testing::Values(SweepCase{0.3, 1.0}, SweepCase{0.6, 1.0}, SweepCase{0.9, 1.0},
                      SweepCase{0.3, 0.5}, SweepCase{0.6, 0.5}, SweepCase{0.9, 0.5},
                      SweepCase{0.5, 0.25}, SweepCase{0.8, 0.75}),
    [](const ::testing::TestParamInfo<SweepCase>& param_info) {
      const int rho = static_cast<int>(param_info.param.rho * 100);
      const int speed = static_cast<int>(param_info.param.speed * 100);
      return "rho" + std::to_string(rho) + "_s" + std::to_string(speed);
    });

}  // namespace
}  // namespace gc
