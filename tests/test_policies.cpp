#include "control/policies.h"

#include <gtest/gtest.h>

#include "workload/rate_profile.h"

namespace gc {
namespace {

ClusterConfig small_config() {
  ClusterConfig config;
  config.max_servers = 16;
  config.mu_max = 10.0;
  config.t_ref_s = 0.5;
  return config;
}

ControlContext context(double rate, unsigned serving, unsigned committed = 0) {
  ControlContext ctx;
  ctx.now = 100.0;
  ctx.measured_rate = rate;
  ctx.serving = serving;
  ctx.committed = committed == 0 ? serving : committed;
  ctx.powered = ctx.committed;
  return ctx;
}

class PoliciesTest : public ::testing::Test {
 protected:
  PoliciesTest() : provisioner_(small_config()) {}
  Provisioner provisioner_;
  PolicyOptions options_;
};

TEST_F(PoliciesTest, FactoryBuildsEveryKind) {
  for (const auto kind :
       {PolicyKind::kNpm, PolicyKind::kDvfsOnly, PolicyKind::kVovfOnly,
        PolicyKind::kCombinedDcp, PolicyKind::kCombinedSinglePeriod,
        PolicyKind::kDcpFailureAware}) {
    const auto controller = make_policy(kind, &provisioner_, options_);
    ASSERT_NE(controller, nullptr);
    EXPECT_STREQ(controller->name(), to_string(kind));
    EXPECT_GT(controller->short_period_s(), 0.0);
    EXPECT_GE(controller->long_period_s(), controller->short_period_s());
  }
}

TEST_F(PoliciesTest, NpmPinsEverythingOn) {
  NpmController npm(&provisioner_, options_);
  const ControlAction action = npm.on_long_tick(context(5.0, 4));
  ASSERT_TRUE(action.active_target.has_value());
  EXPECT_EQ(*action.active_target, 16u);
  ASSERT_TRUE(action.speed.has_value());
  EXPECT_DOUBLE_EQ(*action.speed, 1.0);
  const ControlAction short_action = npm.on_short_tick(context(5.0, 16));
  EXPECT_FALSE(short_action.active_target.has_value());
  EXPECT_FALSE(short_action.speed.has_value());
}

TEST_F(PoliciesTest, DvfsOnlyKeepsAllServersAndScalesFrequency) {
  DvfsOnlyController dvfs(&provisioner_, options_);
  const ControlAction low = dvfs.on_short_tick(context(5.0, 16));
  ASSERT_TRUE(low.speed.has_value());
  DvfsOnlyController dvfs2(&provisioner_, options_);
  const ControlAction high = dvfs2.on_short_tick(context(100.0, 16));
  ASSERT_TRUE(high.speed.has_value());
  EXPECT_LT(*low.speed, *high.speed);
  const ControlAction long_action = dvfs.on_long_tick(context(5.0, 16));
  ASSERT_TRUE(long_action.active_target.has_value());
  EXPECT_EQ(*long_action.active_target, 16u);
}

TEST_F(PoliciesTest, VovfOnlyAlwaysFullSpeed) {
  VovfOnlyController vovf(&provisioner_, options_);
  const ControlAction short_action = vovf.on_short_tick(context(50.0, 8));
  ASSERT_TRUE(short_action.speed.has_value());
  EXPECT_DOUBLE_EQ(*short_action.speed, 1.0);
  const ControlAction long_action = vovf.on_long_tick(context(50.0, 8));
  ASSERT_TRUE(long_action.active_target.has_value());
  ASSERT_TRUE(long_action.speed.has_value());
  EXPECT_DOUBLE_EQ(*long_action.speed, 1.0);
}

TEST_F(PoliciesTest, VovfOnlyScalesServersWithLoad) {
  VovfOnlyController vovf(&provisioner_, options_);
  (void)vovf.on_short_tick(context(10.0, 8));
  const ControlAction low = vovf.on_long_tick(context(10.0, 8));
  VovfOnlyController vovf2(&provisioner_, options_);
  (void)vovf2.on_short_tick(context(100.0, 8));
  const ControlAction high = vovf2.on_long_tick(context(100.0, 8));
  EXPECT_LT(*low.active_target, *high.active_target);
}

TEST_F(PoliciesTest, CombinedShortTickFitsSpeedToServingServers) {
  CombinedDcpController combined(&provisioner_, options_);
  const ControlAction few = combined.on_short_tick(context(40.0, 6));
  CombinedDcpController combined2(&provisioner_, options_);
  const ControlAction many = combined2.on_short_tick(context(40.0, 14));
  ASSERT_TRUE(few.speed.has_value());
  ASSERT_TRUE(many.speed.has_value());
  // More servers -> lower per-server load -> lower frequency suffices.
  EXPECT_GE(*few.speed, *many.speed);
}

TEST_F(PoliciesTest, CombinedLongTickScalesServers) {
  CombinedDcpController combined(&provisioner_, options_);
  for (int i = 0; i < 5; ++i) (void)combined.on_short_tick(context(80.0, 10));
  const ControlAction action = combined.on_long_tick(context(80.0, 10));
  ASSERT_TRUE(action.active_target.has_value());
  // 80/s padded by 1.15 needs ~ solve(92).servers.
  EXPECT_EQ(*action.active_target, provisioner_.solve(80.0 * 1.15).servers);
}

TEST_F(PoliciesTest, CombinedAppliesHysteresisOnScaleDown) {
  PolicyOptions options;
  options.dcp.scale_down_patience = 2;
  CombinedDcpController combined(&provisioner_, options);
  // Prime with saturating load so the gate's streak stays reset (the
  // priming proposal is >= the current 16 servers), then drop the load.
  for (int i = 0; i < 5; ++i) (void)combined.on_short_tick(context(130.0, 16));
  (void)combined.on_long_tick(context(130.0, 16));
  // Load drops; sliding-max still remembers the peak, so feed several
  // short ticks to flush the window, then check the gate.
  for (int i = 0; i < 12; ++i) (void)combined.on_short_tick(context(10.0, 16));
  const ControlAction first = combined.on_long_tick(context(10.0, 16));
  EXPECT_EQ(*first.active_target, 16u);  // patience 2: first proposal held
  const ControlAction second = combined.on_long_tick(context(10.0, 16));
  EXPECT_LT(*second.active_target, 16u);
}

TEST_F(PoliciesTest, CombinedSinglePeriodSolvesJointly) {
  CombinedSinglePeriodController single(&provisioner_, options_);
  EXPECT_DOUBLE_EQ(single.short_period_s(), single.long_period_s());
  const ControlAction action = single.on_long_tick(context(40.0, 8));
  ASSERT_TRUE(action.active_target.has_value());
  ASSERT_TRUE(action.speed.has_value());
  const OperatingPoint expected = provisioner_.solve(40.0 * options_.dcp.safety_margin);
  EXPECT_EQ(*action.active_target, expected.servers);
  EXPECT_DOUBLE_EQ(*action.speed, expected.speed);
  EXPECT_FALSE(single.on_short_tick(context(40.0, 8)).speed.has_value());
}

TEST_F(PoliciesTest, PredictorKindIsRespected) {
  PolicyOptions options;
  options.predictor = PredictorKind::kLastValue;
  options.dcp.scale_down_patience = 1;  // isolate the predictor from the gate
  CombinedDcpController combined(&provisioner_, options);
  (void)combined.on_short_tick(context(100.0, 16));  // peak
  (void)combined.on_short_tick(context(10.0, 16));   // now low
  const ControlAction action = combined.on_long_tick(context(10.0, 16));
  // last-value forgets the peak immediately (modulo safety margin).
  EXPECT_LE(*action.active_target, provisioner_.solve(10.0 * 1.15).servers + 1);
}

TEST_F(PoliciesTest, BacklogAwareRaisesSpeedUnderQueueBuildup) {
  PolicyOptions plain = options_;
  PolicyOptions aware = options_;
  aware.backlog_aware = true;
  CombinedDcpController plain_ctrl(&provisioner_, plain);
  CombinedDcpController aware_ctrl(&provisioner_, aware);
  ControlContext ctx = context(40.0, 8);
  ctx.jobs_in_system = 500;  // far above the Little's-law target of 20
  const ControlAction plain_action = plain_ctrl.on_short_tick(ctx);
  const ControlAction aware_action = aware_ctrl.on_short_tick(ctx);
  ASSERT_TRUE(plain_action.speed.has_value());
  ASSERT_TRUE(aware_action.speed.has_value());
  EXPECT_GT(*aware_action.speed, *plain_action.speed);
  // Without backlog, both agree.
  ControlContext calm = context(40.0, 8);
  calm.jobs_in_system = 5;
  CombinedDcpController plain2(&provisioner_, plain);
  CombinedDcpController aware2(&provisioner_, aware);
  EXPECT_DOUBLE_EQ(*plain2.on_short_tick(calm).speed, *aware2.on_short_tick(calm).speed);
}

TEST_F(PoliciesTest, AutoPatienceFromBreakEvenSlowsScaleDown) {
  ClusterConfig config = small_config();
  config.transition.boot_delay_s = 200.0;  // t_be >> one long period
  const Provisioner solver(config);
  PolicyOptions options;
  options.dcp.scale_down_patience = 1;
  options.dcp.auto_patience_from_break_even = true;
  options.predictor = PredictorKind::kLastValue;
  CombinedDcpController combined(&solver, options);
  // Saturating prime keeps the gate streak reset.
  (void)combined.on_short_tick(context(130.0, 16));
  (void)combined.on_long_tick(context(130.0, 16));
  (void)combined.on_short_tick(context(5.0, 16));
  // One low period is not enough despite patience=1 in the params.
  const ControlAction first = combined.on_long_tick(context(5.0, 16));
  EXPECT_EQ(*first.active_target, 16u);
}

TEST_F(PoliciesTest, InfeasibleLoadIsFlagged) {
  // 16 servers serve at most 16 * (mu - 1/t_ref) = 128/s; 2000/s cannot be
  // planned for, and every solver-driven policy must say so.
  const ControlContext overload = context(2000.0, 16);
  CombinedDcpController combined(&provisioner_, options_);
  EXPECT_TRUE(combined.on_short_tick(overload).infeasible);
  EXPECT_TRUE(combined.on_long_tick(overload).infeasible);
  DvfsOnlyController dvfs(&provisioner_, options_);
  EXPECT_TRUE(dvfs.on_short_tick(overload).infeasible);
  VovfOnlyController vovf(&provisioner_, options_);
  (void)vovf.on_short_tick(overload);
  EXPECT_TRUE(vovf.on_long_tick(overload).infeasible);
  CombinedSinglePeriodController single(&provisioner_, options_);
  EXPECT_TRUE(single.on_long_tick(overload).infeasible);
  // NPM does not solve anything and never reports infeasibility.
  NpmController npm(&provisioner_, options_);
  EXPECT_FALSE(npm.on_long_tick(overload).infeasible);
}

TEST_F(PoliciesTest, FeasibleLoadIsNotFlagged) {
  const ControlContext calm = context(10.0, 16);
  CombinedDcpController combined(&provisioner_, options_);
  EXPECT_FALSE(combined.on_short_tick(calm).infeasible);
  EXPECT_FALSE(combined.on_long_tick(calm).infeasible);
  DvfsOnlyController dvfs(&provisioner_, options_);
  EXPECT_FALSE(dvfs.on_short_tick(calm).infeasible);
}

TEST_F(PoliciesTest, PolicyKindNames) {
  EXPECT_STREQ(to_string(PolicyKind::kNpm), "npm");
  EXPECT_STREQ(to_string(PolicyKind::kCombinedDcp), "combined-dcp");
  EXPECT_STREQ(to_string(PolicyKind::kOracle), "oracle");
}

TEST_F(PoliciesTest, ThresholdScalesOutUnderHighUtilization) {
  ThresholdController threshold(&provisioner_, options_);
  // 8 serving servers at mu 10: util = 70/80 = 0.875 > 0.8 -> +1.
  (void)threshold.on_short_tick(context(70.0, 8));
  const ControlAction action = threshold.on_long_tick(context(70.0, 8));
  ASSERT_TRUE(action.active_target.has_value());
  EXPECT_EQ(*action.active_target, 9u);
  ASSERT_TRUE(action.speed.has_value());
  EXPECT_DOUBLE_EQ(*action.speed, 1.0);
}

TEST_F(PoliciesTest, ThresholdScalesInUnderLowUtilization) {
  ThresholdController threshold(&provisioner_, options_);
  // util = 10/80 = 0.125 < 0.3 -> -1.
  (void)threshold.on_short_tick(context(10.0, 8));
  const ControlAction action = threshold.on_long_tick(context(10.0, 8));
  ASSERT_TRUE(action.active_target.has_value());
  EXPECT_EQ(*action.active_target, 7u);
}

TEST_F(PoliciesTest, ThresholdHoldsInTheDeadBand) {
  ThresholdController threshold(&provisioner_, options_);
  // util = 40/80 = 0.5: between the thresholds -> no change.
  (void)threshold.on_short_tick(context(40.0, 8));
  const ControlAction action = threshold.on_long_tick(context(40.0, 8));
  EXPECT_FALSE(action.active_target.has_value());
}

TEST_F(PoliciesTest, ThresholdRespectsClusterBounds) {
  ThresholdController threshold(&provisioner_, options_);
  (void)threshold.on_short_tick(context(155.0, 16));
  const ControlAction high = threshold.on_long_tick(context(155.0, 16));
  ASSERT_TRUE(high.active_target.has_value());
  EXPECT_EQ(*high.active_target, 16u);  // clamped at M
  ThresholdController threshold2(&provisioner_, options_);
  ControlContext low_ctx = context(0.1, 1);
  (void)threshold2.on_short_tick(low_ctx);
  const ControlAction low = threshold2.on_long_tick(low_ctx);
  EXPECT_FALSE(low.active_target.has_value());  // never below 1
}

TEST_F(PoliciesTest, ThresholdRejectsBadThresholds) {
  EXPECT_THROW(ThresholdController(&provisioner_, options_, 0.3, 0.8),
               std::invalid_argument);
  EXPECT_THROW(ThresholdController(&provisioner_, options_, 1.5, 0.3),
               std::invalid_argument);
}

TEST_F(PoliciesTest, ThresholdBuildableViaFactory) {
  const auto controller = make_policy(PolicyKind::kThreshold, &provisioner_, options_);
  EXPECT_STREQ(controller->name(), "threshold");
}

TEST_F(PoliciesTest, OracleNeedsProfileInFactory) {
  EXPECT_THROW((void)make_policy(PolicyKind::kOracle, &provisioner_, options_),
               std::invalid_argument);
}

TEST_F(PoliciesTest, OracleProvisionsForTheTrueFuturePeak) {
  // Profile: flat 10/s with a step to 80/s at t = 150.  At t = 100 the
  // oracle's horizon (long period + boot delay) covers the step, so it
  // provisions for 80/s * margin even though the measured rate is 10/s.
  auto profile = std::make_shared<PiecewiseLinearRate>(
      std::vector<PiecewiseLinearRate::Knot>{
          {0.0, 10.0}, {149.9, 10.0}, {150.0, 80.0}, {1000.0, 80.0}});
  PolicyOptions options;
  options.dcp.long_period_s = 60.0;
  options.dcp.short_period_s = 10.0;
  const auto oracle = make_oracle_policy(&provisioner_, options, profile);
  ControlContext ctx = context(10.0, 4);
  ctx.now = 100.0;
  const ControlAction action = oracle->on_long_tick(ctx);
  ASSERT_TRUE(action.active_target.has_value());
  EXPECT_EQ(*action.active_target,
            provisioner_.solve(80.0 * options.dcp.safety_margin).servers);
  // A causal last-value controller at the same instant would plan for 10/s.
  EXPECT_GT(*action.active_target,
            provisioner_.solve(10.0 * options.dcp.safety_margin).servers);
}

TEST_F(PoliciesTest, OracleShortTickUsesTrueRate) {
  auto profile = std::make_shared<ConstantRate>(60.0);
  const auto oracle = make_oracle_policy(&provisioner_, options_, profile);
  // Measured rate lies (says 5/s); the oracle plans for the true 60/s.
  ControlContext ctx = context(5.0, 16);
  const ControlAction action = oracle->on_short_tick(ctx);
  ASSERT_TRUE(action.speed.has_value());
  const double expected =
      provisioner_.best_speed_for(60.0 * options_.dcp.safety_margin, 16).speed;
  EXPECT_DOUBLE_EQ(*action.speed, expected);
}

}  // namespace
}  // namespace gc
