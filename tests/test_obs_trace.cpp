// TraceCollector: ring-buffer semantics and the Chrome trace_event JSON
// export (the schema shape chrome://tracing / Perfetto requires).
#include <gtest/gtest.h>

#include <string>

#include "obs/trace.h"

namespace gc {
namespace {

TEST(TraceCollector, RecordsInEmissionOrder) {
  TraceCollector trace;
  trace.instant(1.0, "cat", "a");
  trace.complete(2.0, 0.5, "cat", "b");
  trace.counter(3.0, "serving", "servers", 8.0);
  const auto records = trace.records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_STREQ(records[0].name, "a");
  EXPECT_EQ(records[1].phase, TracePhase::kComplete);
  EXPECT_DOUBLE_EQ(records[1].dur_s, 0.5);
  EXPECT_EQ(records[2].phase, TracePhase::kCounter);
  EXPECT_EQ(trace.emitted(), 3u);
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(TraceCollector, RingOverwritesOldestAndCountsDrops) {
  TraceOptions opts;
  opts.capacity = 4;
  TraceCollector trace(opts);
  for (int i = 0; i < 10; ++i) {
    trace.instant(static_cast<double>(i), "cat", i % 2 == 0 ? "even" : "odd");
  }
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.emitted(), 10u);
  EXPECT_EQ(trace.dropped(), 6u);
  const auto records = trace.records();
  ASSERT_EQ(records.size(), 4u);
  // Oldest-first: timestamps 6, 7, 8, 9 survive.
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(records[static_cast<std::size_t>(i)].ts_s, 6.0 + i);
  }
}

TEST(TraceCollector, ClearResetsEverything) {
  TraceCollector trace;
  trace.instant(1.0, "cat", "a");
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.emitted(), 0u);
  EXPECT_TRUE(trace.records().empty());
}

// Chrome trace_event JSON shape: top-level "traceEvents" array; every event
// has ph/ts/pid/tid; 'X' carries "dur", 'i' carries "s", 'b'/'e' carry "id".
// Timestamps are microseconds (sim seconds x 1e6).
TEST(TraceCollector, ChromeJsonShape) {
  TraceCollector trace;
  trace.complete(1.0, 0.25, "control", "short-period", /*tid=*/1);
  trace.instant(2.0, "admission", "shed");
  trace.counter(3.0, "serving", "servers", 12.0);
  trace.async_begin(4.0, "lifecycle", "boot", /*id=*/7);
  trace.async_end(5.0, "lifecycle", "boot", /*id=*/7);
  const std::string json = trace.to_chrome_json();

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  // Complete span: phase X, microsecond timestamp and duration.
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 1000000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 250000"), std::string::npos);
  // Instant: phase i with thread scope.
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\": \"t\""), std::string::npos);
  // Counter: phase C with the series in args.
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"servers\""), std::string::npos);
  // Async pair: phases b/e keyed by id.
  EXPECT_NE(json.find("\"ph\": \"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"e\""), std::string::npos);
  EXPECT_NE(json.find("\"id\": 7"), std::string::npos);
  // Every event sits in one process.
  EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
}

TEST(TraceCollector, ChromeJsonEscapesNothingUnexpected) {
  // Names are string literals by contract; the exporter must still produce
  // valid JSON for an empty collector.
  TraceCollector trace;
  const std::string json = trace.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_EQ(json.find("ph"), std::string::npos);
}

TEST(TraceHelpers, NullSinkIsSafe) {
  trace_instant(nullptr, 1.0, "cat", "name");
  trace_complete(nullptr, 1.0, 0.5, "cat", "name");
  trace_counter(nullptr, 1.0, "name", "series", 2.0);
  trace_async_begin(nullptr, 1.0, "cat", "name", 0);
  trace_async_end(nullptr, 1.0, "cat", "name", 0);
  TraceRecord record;
  trace_emit(nullptr, record);
  SUCCEED();
}

TEST(TraceHelpers, SinkReceivesWhenCompiledIn) {
  TraceCollector trace;
  trace_instant(&trace, 1.0, "cat", "name");
  if constexpr (kTracingCompiledIn) {
    EXPECT_EQ(trace.emitted(), 1u);
  } else {
    EXPECT_EQ(trace.emitted(), 0u);
  }
}

}  // namespace
}  // namespace gc
