#include "core/cluster_config.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace gc {
namespace {

TEST(ClusterConfig, DefaultsValidate) {
  const ClusterConfig config;
  EXPECT_NO_THROW(config.validate());
}

TEST(ClusterConfig, RejectsZeroServers) {
  ClusterConfig config;
  config.max_servers = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(ClusterConfig, RejectsBadMinServers) {
  ClusterConfig config;
  config.min_servers = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.min_servers = config.max_servers + 1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(ClusterConfig, RejectsNonPositiveMu) {
  ClusterConfig config;
  config.mu_max = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(ClusterConfig, RejectsUnreachableSla) {
  ClusterConfig config;
  config.mu_max = 10.0;
  config.t_ref_s = 0.05;  // < 1/mu: even an empty server misses it
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.t_ref_s = 0.1;  // equal: still impossible (needs strict headroom)
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(ClusterConfig, RejectsNegativeTransitions) {
  ClusterConfig config;
  config.transition.boot_delay_s = -1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(ClusterConfig, RejectsBadPowerModel) {
  ClusterConfig config;
  config.power.p_idle_watts = 1000.0;  // > p_max
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(ClusterConfig, MaxFeasibleArrivalRate) {
  ClusterConfig config;
  config.max_servers = 10;
  config.mu_max = 10.0;
  config.t_ref_s = 0.5;
  // Per server: mu - 1/t_ref = 8; cluster: 80.
  EXPECT_DOUBLE_EQ(config.max_feasible_arrival_rate(), 80.0);
  EXPECT_DOUBLE_EQ(config.raw_capacity(), 100.0);
}

TEST(PerfModelNames, ToString) {
  EXPECT_STREQ(to_string(PerfModel::kMm1PerServer), "mm1-per-server");
  EXPECT_STREQ(to_string(PerfModel::kMmcCluster), "mmc-cluster");
}

}  // namespace
}  // namespace gc
