// Randomized invariant test: drive a cluster with a random interleaving of
// arrivals, control actions and event processing, and check the global
// invariants after every step:
//   * job conservation: routed == completed + in flight (+ dropped);
//   * server states partition the fleet;
//   * the cluster never drops while a server is serving;
//   * energy is finite, non-negative and non-decreasing.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/cluster.h"
#include "stats/rng.h"

namespace gc {
namespace {

class ClusterPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ClusterPropertyTest, RandomWalkKeepsInvariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  EventQueue queue;
  ClusterOptions options;
  options.num_servers = 8;
  options.initial_active = 4;
  options.transition.boot_delay_s = 2.0;
  options.transition.shutdown_delay_s = 0.5;
  Cluster cluster(options, &queue);

  double now = 0.0;
  std::uint64_t next_job_id = 1;
  std::uint64_t routed = 0;
  std::uint64_t completed = 0;
  double last_energy = 0.0;

  auto check_invariants = [&] {
    // State partition.
    unsigned on = 0, booting = 0, shutting = 0, off = 0, failed = 0;
    for (std::uint32_t i = 0; i < cluster.num_servers(); ++i) {
      switch (cluster.server(i).state()) {
        case PowerState::kOn: ++on; break;
        case PowerState::kBooting: ++booting; break;
        case PowerState::kShuttingDown: ++shutting; break;
        case PowerState::kOff: ++off; break;
        case PowerState::kFailed: ++failed; break;
      }
    }
    ASSERT_EQ(on + booting + shutting + off + failed, cluster.num_servers());
    ASSERT_EQ(cluster.powered_count(), on + booting + shutting);
    ASSERT_LE(cluster.serving_count(), on);
    // Job conservation.
    ASSERT_EQ(routed, completed + cluster.jobs_in_system());
    // Energy monotone.
    cluster.flush_energy(now);
    const double energy = cluster.energy().total_j();
    ASSERT_GE(energy, last_energy - 1e-9);
    ASSERT_TRUE(std::isfinite(energy));
    last_energy = energy;
  };

  for (int step = 0; step < 5000; ++step) {
    const double dice = rng.uniform01();
    if (dice < 0.35) {
      // Arrival.
      Job job;
      job.id = next_job_id++;
      job.arrival_time = now;
      job.size = 0.01 + rng.uniform01() * 0.5;
      job.remaining = job.size;
      if (cluster.route_job(now, job)) {
        ++routed;
      }
    } else if (dice < 0.45) {
      cluster.set_active_target(now, 1 + static_cast<unsigned>(rng.uniform_below(8)));
    } else if (dice < 0.55) {
      const double speeds[] = {0.25, 0.5, 0.75, 1.0};
      cluster.set_all_speeds(now, speeds[rng.uniform_below(4)]);
    } else {
      // Process the next event (if any), advancing time.
      const auto event = queue.pop();
      if (event) {
        now = event->time;
        switch (event->type) {
          case EventType::kDeparture: {
            const Job job = cluster.handle_departure(now, event->subject);
            ASSERT_GE(now, job.arrival_time);
            ++completed;
            break;
          }
          case EventType::kBootComplete:
            cluster.handle_boot_complete(now, event->subject);
            break;
          case EventType::kShutdownComplete:
            cluster.handle_shutdown_complete(now, event->subject);
            break;
          default:
            break;
        }
      } else {
        now += 0.1;  // idle tick
      }
    }
    if (step % 50 == 0) check_invariants();
  }

  // Drain everything and verify total conservation.
  while (const auto event = queue.pop()) {
    now = event->time;
    switch (event->type) {
      case EventType::kDeparture:
        (void)cluster.handle_departure(now, event->subject);
        ++completed;
        break;
      case EventType::kBootComplete:
        cluster.handle_boot_complete(now, event->subject);
        break;
      case EventType::kShutdownComplete:
        cluster.handle_shutdown_complete(now, event->subject);
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(cluster.jobs_in_system(), 0u);
  EXPECT_EQ(routed, completed);
  // Dropped jobs only if the random walk drove serving to zero, which the
  // guard forbids.
  EXPECT_EQ(cluster.jobs_dropped(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterPropertyTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace gc
