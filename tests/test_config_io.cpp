#include "core/config_io.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace gc {
namespace {

TEST(ConfigIo, EmptyIniYieldsDefaults) {
  const IniFile ini;
  const ClusterConfig config = cluster_config_from_ini(ini);
  const ClusterConfig defaults;
  EXPECT_EQ(config.max_servers, defaults.max_servers);
  EXPECT_DOUBLE_EQ(config.mu_max, defaults.mu_max);
  EXPECT_DOUBLE_EQ(config.t_ref_s, defaults.t_ref_s);
  const DcpParams dcp = dcp_params_from_ini(ini);
  EXPECT_DOUBLE_EQ(dcp.long_period_s, DcpParams{}.long_period_s);
}

TEST(ConfigIo, ParsesFullConfig) {
  const IniFile ini = IniFile::parse(R"(
[cluster]
max_servers = 8
mu_max = 12.5
t_ref_ms = 400
min_servers = 2
perf_model = mmc

[power]
p_idle_w = 120
p_max_w = 260
p_off_w = 3
alpha = 2.5
utilization_gated = true

[ladder]
levels_ghz = 1.0 2.0 4.0

[transition]
boot_delay_s = 30
shutdown_delay_s = 4
)");
  const ClusterConfig config = cluster_config_from_ini(ini);
  EXPECT_EQ(config.max_servers, 8u);
  EXPECT_DOUBLE_EQ(config.mu_max, 12.5);
  EXPECT_DOUBLE_EQ(config.t_ref_s, 0.4);
  EXPECT_EQ(config.min_servers, 2u);
  EXPECT_EQ(config.perf_model, PerfModel::kMmcCluster);
  EXPECT_DOUBLE_EQ(config.power.p_idle_watts, 120.0);
  EXPECT_DOUBLE_EQ(config.power.alpha, 2.5);
  EXPECT_TRUE(config.power.utilization_gated);
  EXPECT_EQ(config.ladder.num_levels(), 3u);
  EXPECT_DOUBLE_EQ(config.ladder.min_speed(), 0.25);
  EXPECT_DOUBLE_EQ(config.transition.boot_delay_s, 30.0);
}

TEST(ConfigIo, ContinuousLadder) {
  const IniFile ini = IniFile::parse("[ladder]\ncontinuous_min_speed = 0.2\n");
  const ClusterConfig config = cluster_config_from_ini(ini);
  EXPECT_TRUE(config.ladder.is_continuous());
  EXPECT_DOUBLE_EQ(config.ladder.min_speed(), 0.2);
}

TEST(ConfigIo, DcpSection) {
  const IniFile ini = IniFile::parse(R"(
[dcp]
long_period_s = 120
short_period_s = 15
safety_margin = 1.3
scale_down_patience = 4
auto_patience_from_break_even = yes
)");
  const DcpParams dcp = dcp_params_from_ini(ini);
  EXPECT_DOUBLE_EQ(dcp.long_period_s, 120.0);
  EXPECT_DOUBLE_EQ(dcp.short_period_s, 15.0);
  EXPECT_DOUBLE_EQ(dcp.safety_margin, 1.3);
  EXPECT_EQ(dcp.scale_down_patience, 4u);
  EXPECT_TRUE(dcp.auto_patience_from_break_even);
}

TEST(ConfigIo, RejectsInvalidConfigs) {
  EXPECT_THROW((void)cluster_config_from_ini(IniFile::parse("[cluster]\nmax_servers = 0\n")),
               std::invalid_argument);
  EXPECT_THROW((void)cluster_config_from_ini(IniFile::parse("[cluster]\nperf_model = magic\n")),
               std::runtime_error);
  EXPECT_THROW((void)cluster_config_from_ini(IniFile::parse("[ladder]\nlevels_ghz = 1.0 oops\n")),
               std::runtime_error);
  // SLA below 1/mu is caught by validate().
  EXPECT_THROW((void)cluster_config_from_ini(
                   IniFile::parse("[cluster]\nmu_max = 10\nt_ref_ms = 50\n")),
               std::invalid_argument);
  EXPECT_THROW((void)dcp_params_from_ini(IniFile::parse("[dcp]\nsafety_margin = 0.5\n")),
               std::invalid_argument);
}

TEST(ConfigIo, RejectsNegativeCounts) {
  // A negative count must error out, not wrap around to a huge unsigned.
  EXPECT_THROW((void)cluster_config_from_ini(IniFile::parse("[cluster]\nmax_servers = -3\n")),
               std::runtime_error);
  EXPECT_THROW((void)cluster_config_from_ini(IniFile::parse("[cluster]\nmin_servers = -1\n")),
               std::runtime_error);
  EXPECT_THROW((void)dcp_params_from_ini(IniFile::parse("[dcp]\nscale_down_patience = -2\n")),
               std::runtime_error);
  EXPECT_THROW((void)hetero_config_from_ini(IniFile::parse(
                   "[class a]\ncount = -4\nmu_max = 10\nt_ref_ms = 500\n")),
               std::runtime_error);
  try {
    (void)cluster_config_from_ini(IniFile::parse("[cluster]\nmax_servers = -3\n"));
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    // The message names the offending section, key and value.
    EXPECT_NE(std::string(e.what()).find("max_servers"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("-3"), std::string::npos);
  }
}

TEST(ConfigIo, RejectsNonFiniteValues) {
  EXPECT_THROW((void)cluster_config_from_ini(IniFile::parse("[cluster]\nmu_max = inf\n")),
               std::runtime_error);
  EXPECT_THROW((void)cluster_config_from_ini(IniFile::parse("[cluster]\nmu_max = -5\n")),
               std::runtime_error);
  EXPECT_THROW((void)cluster_config_from_ini(IniFile::parse("[power]\nalpha = nan\n")),
               std::runtime_error);
  EXPECT_THROW((void)cluster_config_from_ini(IniFile::parse("[ladder]\nlevels_ghz = 1.0 nan\n")),
               std::runtime_error);
  EXPECT_THROW((void)cluster_config_from_ini(IniFile::parse("[ladder]\nlevels_ghz = 1.0 -2.0\n")),
               std::runtime_error);
  EXPECT_THROW((void)cluster_config_from_ini(
                   IniFile::parse("[ladder]\ncontinuous_min_speed = inf\n")),
               std::runtime_error);
  EXPECT_THROW((void)cluster_config_from_ini(
                   IniFile::parse("[transition]\nboot_delay_s = nan\n")),
               std::runtime_error);
  EXPECT_THROW((void)dcp_params_from_ini(IniFile::parse("[dcp]\nlong_period_s = inf\n")),
               std::runtime_error);
  EXPECT_THROW((void)dcp_params_from_ini(IniFile::parse("[dcp]\nsafety_margin = nan\n")),
               std::runtime_error);
}

TEST(ConfigIo, RoundTripPreservesEverything) {
  ClusterConfig config;
  config.max_servers = 24;
  config.mu_max = 33.5;
  config.t_ref_s = 0.125;
  config.min_servers = 3;
  config.perf_model = PerfModel::kMmcCluster;
  config.power.p_idle_watts = 111.0;
  config.power.utilization_gated = false;
  config.ladder = FrequencyLadder({0.8, 1.6, 3.2});
  config.transition.boot_delay_s = 45.0;
  DcpParams dcp;
  dcp.long_period_s = 200.0;
  dcp.safety_margin = 1.25;
  dcp.auto_patience_from_break_even = true;

  const IniFile ini = IniFile::parse(to_ini(config, dcp).to_string());
  const ClusterConfig back = cluster_config_from_ini(ini);
  const DcpParams dcp_back = dcp_params_from_ini(ini);
  EXPECT_EQ(back.max_servers, 24u);
  EXPECT_DOUBLE_EQ(back.mu_max, 33.5);
  EXPECT_DOUBLE_EQ(back.t_ref_s, 0.125);
  EXPECT_EQ(back.min_servers, 3u);
  EXPECT_EQ(back.perf_model, PerfModel::kMmcCluster);
  EXPECT_DOUBLE_EQ(back.power.p_idle_watts, 111.0);
  EXPECT_FALSE(back.power.utilization_gated);
  ASSERT_EQ(back.ladder.num_levels(), 3u);
  EXPECT_DOUBLE_EQ(back.ladder.f_max_ghz(), 3.2);
  EXPECT_DOUBLE_EQ(back.transition.boot_delay_s, 45.0);
  EXPECT_DOUBLE_EQ(dcp_back.long_period_s, 200.0);
  EXPECT_DOUBLE_EQ(dcp_back.safety_margin, 1.25);
  EXPECT_TRUE(dcp_back.auto_patience_from_break_even);
}

TEST(ConfigIo, HeteroFromIni) {
  const IniFile ini = IniFile::parse(R"(
[cluster]
t_ref_ms = 500

[class new]
count = 8
mu_max = 12
p_idle_w = 100
p_max_w = 200
utilization_gated = false

[class old]
count = 4
mu_max = 10
p_idle_w = 180
p_max_w = 300
levels_ghz = 1.2 2.4
)");
  const HeteroConfig config = hetero_config_from_ini(ini);
  ASSERT_EQ(config.classes.size(), 2u);
  EXPECT_DOUBLE_EQ(config.t_ref_s, 0.5);
  // Sections come back in sorted order: "class new" before "class old".
  EXPECT_EQ(config.classes[0].name, "new");
  EXPECT_EQ(config.classes[0].count, 8u);
  EXPECT_DOUBLE_EQ(config.classes[0].mu_max, 12.0);
  EXPECT_FALSE(config.classes[0].power.utilization_gated);
  EXPECT_EQ(config.classes[1].name, "old");
  EXPECT_EQ(config.classes[1].ladder.num_levels(), 2u);
}

TEST(ConfigIo, HeteroRequiresClassSections) {
  EXPECT_THROW((void)hetero_config_from_ini(IniFile::parse("[cluster]\nt_ref_ms = 500\n")),
               std::runtime_error);
}

TEST(ConfigIo, HeteroValidatesClasses) {
  // t_ref below 1/mu of a class fails validation.
  EXPECT_THROW((void)hetero_config_from_ini(IniFile::parse(
                   "[cluster]\nt_ref_ms = 50\n[class a]\ncount = 2\nmu_max = 10\n")),
               std::invalid_argument);
}

TEST(ConfigIo, RoundTripContinuousLadder) {
  ClusterConfig config;
  config.ladder = FrequencyLadder::continuous(0.15);
  const ClusterConfig back =
      cluster_config_from_ini(IniFile::parse(to_ini(config, {}).to_string()));
  EXPECT_TRUE(back.ladder.is_continuous());
  EXPECT_DOUBLE_EQ(back.ladder.min_speed(), 0.15);
}

}  // namespace
}  // namespace gc
