// Model-based property test: the EventQueue against a reference
// implementation (std::multimap ordered by (time, seq)) under a random
// stream of schedule / cancel / pop operations.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <vector>

#include "sim/event_queue.h"
#include "stats/rng.h"

namespace gc {
namespace {

class ReferenceQueue {
 public:
  EventId schedule(double time, EventType type, std::uint32_t subject) {
    ++seq_;
    entries_.emplace(std::make_pair(time, seq_), Event{time, type, subject, seq_});
    return seq_;
  }

  bool cancel(EventId id) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.id == id) {
        entries_.erase(it);
        return true;
      }
    }
    return false;
  }

  std::optional<Event> pop() {
    if (entries_.empty()) return std::nullopt;
    const Event event = entries_.begin()->second;
    entries_.erase(entries_.begin());
    now_ = event.time;
    return event;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] double now() const { return now_; }

 private:
  std::map<std::pair<double, std::uint64_t>, Event> entries_;
  std::uint64_t seq_ = 0;
  double now_ = 0.0;
};

class EventQueueModelTest : public ::testing::TestWithParam<int> {};

TEST_P(EventQueueModelTest, RandomOperationStreamsAgree) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  EventQueue real;
  ReferenceQueue reference;
  std::vector<EventId> live_ids;

  for (int step = 0; step < 20000; ++step) {
    const double dice = rng.uniform01();
    if (dice < 0.5) {
      // Schedule at or after `now`.
      const double time = real.now() + rng.uniform01() * 10.0;
      const auto type = static_cast<EventType>(rng.uniform_below(8));
      const auto subject = static_cast<std::uint32_t>(rng.uniform_below(64));
      const EventId a = real.schedule(time, type, subject);
      const EventId b = reference.schedule(time, type, subject);
      ASSERT_EQ(a, b);
      live_ids.push_back(a);
    } else if (dice < 0.65 && !live_ids.empty()) {
      // Cancel a random (possibly already-fired) id.
      const std::size_t pick = rng.uniform_below(live_ids.size());
      const EventId id = live_ids[pick];
      ASSERT_EQ(real.cancel(id), reference.cancel(id)) << "id " << id;
    } else {
      const auto a = real.pop();
      const auto b = reference.pop();
      ASSERT_EQ(a.has_value(), b.has_value());
      if (a) {
        ASSERT_DOUBLE_EQ(a->time, b->time);
        ASSERT_EQ(a->id, b->id);
        ASSERT_EQ(a->type, b->type);
        ASSERT_EQ(a->subject, b->subject);
      }
    }
    ASSERT_EQ(real.size(), reference.size()) << "step " << step;
  }

  // Drain both completely and compare the tails.
  for (;;) {
    const auto a = real.pop();
    const auto b = reference.pop();
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a) break;
    ASSERT_EQ(a->id, b->id);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueModelTest, ::testing::Range(0, 5));

}  // namespace
}  // namespace gc
