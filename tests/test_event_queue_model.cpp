// Model-based property test: the EventQueue against a reference
// implementation (std::multimap ordered by (time, seq)) under a random
// stream of schedule / cancel / pop operations.
//
// The real queue hands out generation-stamped slot ids, the reference a
// plain monotone counter; a real<->reference id map translates between the
// two so cancel hits/misses and pop order can still be compared exactly.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.h"
#include "stats/rng.h"

namespace gc {
namespace {

class ReferenceQueue {
 public:
  EventId schedule(double time, EventType type, std::uint32_t subject) {
    ++seq_;
    entries_.emplace(std::make_pair(time, seq_), Event{time, type, subject, seq_});
    return seq_;
  }

  bool cancel(EventId id) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.id == id) {
        entries_.erase(it);
        return true;
      }
    }
    return false;
  }

  std::optional<Event> pop() {
    if (entries_.empty()) return std::nullopt;
    const Event event = entries_.begin()->second;
    entries_.erase(entries_.begin());
    now_ = event.time;
    return event;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] double now() const { return now_; }

 private:
  std::map<std::pair<double, std::uint64_t>, Event> entries_;
  std::uint64_t seq_ = 0;
  double now_ = 0.0;
};

class EventQueueModelTest : public ::testing::TestWithParam<int> {};

TEST_P(EventQueueModelTest, RandomOperationStreamsAgree) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  EventQueue real;
  ReferenceQueue reference;
  // Parallel vectors: issued_real[i] / issued_ref[i] are the ids the two
  // queues returned for the i-th schedule call (fired or not — cancels are
  // drawn from the full history to exercise stale-id behaviour).
  std::vector<EventId> issued_real;
  std::vector<EventId> issued_ref;
  std::unordered_map<EventId, EventId> real_to_ref;

  for (int step = 0; step < 20000; ++step) {
    const double dice = rng.uniform01();
    if (dice < 0.5) {
      // Schedule at or after `now`.
      const double time = real.now() + rng.uniform01() * 10.0;
      const auto type = static_cast<EventType>(rng.uniform_below(8));
      const auto subject = static_cast<std::uint32_t>(rng.uniform_below(64));
      const EventId a = real.schedule(time, type, subject);
      const EventId b = reference.schedule(time, type, subject);
      ASSERT_NE(a, kInvalidEventId);
      // Generation stamping must make every issued id unique, even when a
      // slot is recycled.
      ASSERT_TRUE(real_to_ref.emplace(a, b).second) << "duplicate id " << a;
      issued_real.push_back(a);
      issued_ref.push_back(b);
    } else if (dice < 0.65 && !issued_real.empty()) {
      // Cancel a random (possibly already-fired or already-cancelled) id.
      const std::size_t pick = rng.uniform_below(issued_real.size());
      ASSERT_EQ(real.cancel(issued_real[pick]), reference.cancel(issued_ref[pick]))
          << "schedule #" << pick;
    } else {
      const auto a = real.pop();
      const auto b = reference.pop();
      ASSERT_EQ(a.has_value(), b.has_value());
      if (a) {
        ASSERT_DOUBLE_EQ(a->time, b->time);
        ASSERT_EQ(real_to_ref.at(a->id), b->id);
        ASSERT_EQ(a->type, b->type);
        ASSERT_EQ(a->subject, b->subject);
      }
    }
    ASSERT_EQ(real.size(), reference.size()) << "step " << step;
    ASSERT_DOUBLE_EQ(real.now(), reference.now()) << "step " << step;
  }

  // Drain both completely and compare the tails.
  for (;;) {
    const auto a = real.pop();
    const auto b = reference.pop();
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a) break;
    ASSERT_EQ(real_to_ref.at(a->id), b->id);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueModelTest, ::testing::Range(0, 5));

// -- generation-stamp specifics ---------------------------------------------

TEST(EventQueueGenerationTest, CancelledSlotIsRecycledWithFreshGeneration) {
  EventQueue q;
  const EventId first = q.schedule(1.0, EventType::kArrival, 7);
  ASSERT_TRUE(q.cancel(first));
  // The freed slot is reused, so the new id shares the low slot bits but
  // must differ in generation — and thus as a whole.
  const EventId second = q.schedule(2.0, EventType::kDeparture, 8);
  EXPECT_EQ(first & 0xffffffffULL, second & 0xffffffffULL);
  EXPECT_NE(first, second);
  // The stale id must not hit the recycled slot's new tenant.
  EXPECT_FALSE(q.cancel(first));
  EXPECT_EQ(q.size(), 1u);
  const auto event = q.pop();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->id, second);
  EXPECT_EQ(event->type, EventType::kDeparture);
}

TEST(EventQueueGenerationTest, CancelAfterFireIsANoOp) {
  EventQueue q;
  const EventId id = q.schedule(1.0, EventType::kArrival, 0);
  const auto event = q.pop();
  ASSERT_TRUE(event.has_value());
  ASSERT_EQ(event->id, id);
  EXPECT_FALSE(q.cancel(id));
  // ... including when the fired event's slot now hosts a live event.
  const EventId next = q.schedule(2.0, EventType::kDeparture, 1);
  EXPECT_FALSE(q.cancel(id));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(next));
}

TEST(EventQueueGenerationTest, ManyRecyclesNeverAliasLiveIds) {
  EventQueue q;
  EventId previous = kInvalidEventId;
  for (int round = 0; round < 1000; ++round) {
    const EventId id = q.schedule(static_cast<double>(round), EventType::kShortTick,
                                  static_cast<std::uint32_t>(round));
    ASSERT_NE(id, previous);
    if (previous != kInvalidEventId) {
      EXPECT_FALSE(q.cancel(previous)) << "round " << round;
    }
    ASSERT_TRUE(q.cancel(id));
    previous = id;
  }
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(q.pop().has_value());
}

}  // namespace
}  // namespace gc
