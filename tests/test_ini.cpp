#include "util/ini.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace gc {
namespace {

TEST(Ini, ParsesSectionsAndKeys) {
  const IniFile ini = IniFile::parse("[a]\nx = 1\ny = hello\n[b]\nz=2\n");
  EXPECT_TRUE(ini.has_section("a"));
  EXPECT_TRUE(ini.has_section("b"));
  EXPECT_FALSE(ini.has_section("c"));
  EXPECT_EQ(ini.get("a", "x").value(), "1");
  EXPECT_EQ(ini.get("a", "y").value(), "hello");
  EXPECT_EQ(ini.get("b", "z").value(), "2");
  EXPECT_FALSE(ini.get("a", "missing").has_value());
}

TEST(Ini, CommentsAndBlankLines) {
  const IniFile ini = IniFile::parse("# header\n[s]\n; comment\n\nk = v # not stripped\n");
  // Inline comments are not supported (values may contain '#').
  EXPECT_EQ(ini.get("s", "k").value(), "v # not stripped");
}

TEST(Ini, TrimsWhitespace) {
  const IniFile ini = IniFile::parse("[ s ]\n  key   =   value  \n");
  EXPECT_EQ(ini.get("s", "key").value(), "value");
}

TEST(Ini, MalformedInputThrows) {
  EXPECT_THROW(IniFile::parse("key = outside\n"), std::runtime_error);
  EXPECT_THROW(IniFile::parse("[unterminated\n"), std::runtime_error);
  EXPECT_THROW(IniFile::parse("[]\n"), std::runtime_error);
  EXPECT_THROW(IniFile::parse("[s]\nno equals sign\n"), std::runtime_error);
  EXPECT_THROW(IniFile::parse("[s]\n= value\n"), std::runtime_error);
}

TEST(Ini, TypedAccessors) {
  const IniFile ini =
      IniFile::parse("[t]\nd = 2.5\ni = 7\nb1 = true\nb2 = off\nbad = xyz\n");
  EXPECT_DOUBLE_EQ(ini.get_double_or("t", "d", 0.0), 2.5);
  EXPECT_EQ(ini.get_int_or("t", "i", 0), 7);
  EXPECT_TRUE(ini.get_bool_or("t", "b1", false));
  EXPECT_FALSE(ini.get_bool_or("t", "b2", true));
  EXPECT_DOUBLE_EQ(ini.get_double_or("t", "missing", 9.0), 9.0);
  EXPECT_THROW((void)ini.get_double_or("t", "bad", 0.0), std::runtime_error);
  EXPECT_THROW((void)ini.get_int_or("t", "d", 0), std::runtime_error);
  EXPECT_THROW((void)ini.get_bool_or("t", "bad", false), std::runtime_error);
}

TEST(Ini, SetAndRoundTrip) {
  IniFile ini;
  ini.set("z", "k2", "v2");
  ini.set("a", "k1", "v1");
  const IniFile again = IniFile::parse(ini.to_string());
  EXPECT_EQ(again.get("a", "k1").value(), "v1");
  EXPECT_EQ(again.get("z", "k2").value(), "v2");
}

TEST(Ini, SetRejectsEmptyNames) {
  IniFile ini;
  EXPECT_THROW(ini.set("", "k", "v"), std::runtime_error);
  EXPECT_THROW(ini.set("s", "", "v"), std::runtime_error);
}

TEST(Ini, LoadMissingFileThrows) {
  EXPECT_THROW(IniFile::load("/nonexistent/gc.ini"), std::runtime_error);
}

TEST(Ini, LastValueWinsOnDuplicates) {
  const IniFile ini = IniFile::parse("[s]\nk = 1\nk = 2\n");
  EXPECT_EQ(ini.get("s", "k").value(), "2");
}

}  // namespace
}  // namespace gc
