#include "exp/scenario.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace gc {
namespace {

TEST(Scenario, BenchConfigValidates) {
  const ClusterConfig config = bench_cluster_config();
  EXPECT_NO_THROW(config.validate());
  EXPECT_EQ(config.max_servers, 16u);
  // Feasible rate: 16 * (10 - 2) = 128/s.
  EXPECT_DOUBLE_EQ(config.max_feasible_arrival_rate(), 128.0);
}

TEST(Scenario, BenchDcpParamsValidate) {
  EXPECT_NO_THROW(bench_dcp_params().validate());
}

TEST(Scenario, RejectsBadLevel) {
  const ClusterConfig config = bench_cluster_config();
  EXPECT_THROW(make_scenario(ScenarioKind::kDiurnal, config, 0.0), std::invalid_argument);
  EXPECT_THROW(make_scenario(ScenarioKind::kDiurnal, config, 1.1), std::invalid_argument);
  EXPECT_THROW(make_scenario(ScenarioKind::kDiurnal, config, 0.5, 1, -1.0),
               std::invalid_argument);
}

TEST(Scenario, EveryKindProducesBoundedProfile) {
  const ClusterConfig config = bench_cluster_config();
  for (const auto kind : {ScenarioKind::kConstant, ScenarioKind::kDiurnal,
                          ScenarioKind::kFlashCrowd, ScenarioKind::kWc98Like}) {
    const Scenario scenario = make_scenario(kind, config, 0.7, 42, 7200.0);
    ASSERT_NE(scenario.profile, nullptr) << to_string(kind);
    EXPECT_GT(scenario.horizon_s, 0.0);
    EXPECT_FALSE(scenario.name.empty());
    // Rates stay within a flash-crowd factor of the feasible maximum.
    for (double t = 0.0; t <= scenario.horizon_s; t += scenario.horizon_s / 50.0) {
      const double r = scenario.profile->rate(t);
      EXPECT_GE(r, 0.0);
      EXPECT_LE(r, config.max_feasible_arrival_rate() * 1.05) << to_string(kind);
    }
  }
}

TEST(Scenario, DiurnalSwingsLowToHigh) {
  const ClusterConfig config = bench_cluster_config();
  const Scenario scenario = make_scenario(ScenarioKind::kDiurnal, config, 0.7, 1, 7200.0);
  double lo = 1e18, hi = 0.0;
  for (double t = 0.0; t <= scenario.horizon_s; t += 60.0) {
    const double r = scenario.profile->rate(t);
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  EXPECT_LT(lo, 0.2 * config.max_feasible_arrival_rate());
  EXPECT_GT(hi, 0.6 * config.max_feasible_arrival_rate());
}

TEST(Scenario, FlashCrowdHasSpikesAboveBase) {
  const ClusterConfig config = bench_cluster_config();
  const Scenario scenario =
      make_scenario(ScenarioKind::kFlashCrowd, config, 0.7, 3, 7200.0);
  // The global max over the day should clearly exceed the sinusoid-only max.
  const Scenario plain = make_scenario(ScenarioKind::kDiurnal, config, 0.7 / 2.2, 3, 7200.0);
  double spike_max = 0.0, plain_max = 0.0;
  for (double t = 0.0; t <= 7200.0; t += 10.0) {
    spike_max = std::max(spike_max, scenario.profile->rate(t));
    plain_max = std::max(plain_max, plain.profile->rate(t));
  }
  EXPECT_GT(spike_max, plain_max * 1.5);
}

TEST(Scenario, MakeWorkloadProducesArrivals) {
  const ClusterConfig config = bench_cluster_config();
  const Scenario scenario = make_scenario(ScenarioKind::kConstant, config, 0.5, 5, 800.0);
  Workload workload = scenario.make_workload(config, 77);
  std::size_t count = 0;
  while (const auto j = workload.next()) {
    EXPECT_LE(j->time, scenario.horizon_s);
    ++count;
  }
  // constant 0.5*128 = 64/s over 200 s -> ~12800 arrivals.
  EXPECT_NEAR(static_cast<double>(count), 12800.0, 600.0);
}

TEST(Scenario, NamesIncludeKindAndLevel) {
  const ClusterConfig config = bench_cluster_config();
  const Scenario scenario = make_scenario(ScenarioKind::kDiurnal, config, 0.7);
  EXPECT_NE(scenario.name.find("diurnal"), std::string::npos);
  EXPECT_NE(scenario.name.find("70"), std::string::npos);
}

}  // namespace
}  // namespace gc
