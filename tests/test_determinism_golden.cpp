// Determinism goldens: fixed-seed end-to-end runs whose SimResult checksums
// are pinned to the values produced by the pre-optimization simulator core.
//
// These tests exist to make hot-path rewrites (event queue internals,
// dispatcher indexing, solver caching) provably behavior-preserving: any
// change that alters a single event ordering, routing decision or solver
// output shifts the checksum.  If one of these fails after a refactor, the
// refactor changed simulation *behavior*, not just its speed — fix the
// refactor, do not re-pin the checksum (re-pinning is only legitimate for
// a deliberate, documented model change).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>

#include "control/policies.h"
#include "exp/scenario.h"
#include "sim/simulation.h"

namespace gc {
namespace {

// Order-sensitive 64-bit fold (FNV-style avalanche per word).
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0x100000001b3ULL;
  return h;
}

std::uint64_t mix(std::uint64_t h, double v) {
  return mix(h, std::bit_cast<std::uint64_t>(v));
}

// Covers every scalar of SimResult plus the full timeline, bit-exactly.
std::uint64_t checksum(const SimResult& r) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = mix(h, r.completed_jobs);
  h = mix(h, r.dropped_jobs);
  h = mix(h, r.shed_jobs);
  h = mix(h, r.failures);
  h = mix(h, r.repairs);
  h = mix(h, r.boot_timeouts);
  h = mix(h, r.jobs_redispatched);
  h = mix(h, r.jobs_lost);
  h = mix(h, r.sim_time_s);
  h = mix(h, r.mean_response_s);
  h = mix(h, r.p95_response_s);
  h = mix(h, r.p99_response_s);
  h = mix(h, r.max_response_s);
  h = mix(h, r.job_violation_ratio);
  h = mix(h, r.window_violation_ratio);
  h = mix(h, r.energy.busy_j);
  h = mix(h, r.energy.idle_j);
  h = mix(h, r.energy.transition_j);
  h = mix(h, r.energy.off_j);
  h = mix(h, r.mean_power_w);
  h = mix(h, r.boots);
  h = mix(h, r.shutdowns);
  h = mix(h, r.mean_serving);
  h = mix(h, r.mean_speed);
  h = mix(h, r.mean_jobs_in_system);
  h = mix(h, r.mean_available);
  h = mix(h, r.unavailability);
  h = mix(h, r.shed_ratio);
  h = mix(h, r.infeasible_ticks);
  h = mix(h, r.infeasible_ratio);
  for (const TimelinePoint& p : r.timeline) {
    h = mix(h, p.time);
    h = mix(h, p.arrival_rate);
    h = mix(h, static_cast<std::uint64_t>(p.serving));
    h = mix(h, static_cast<std::uint64_t>(p.powered));
    h = mix(h, static_cast<std::uint64_t>(p.available));
    h = mix(h, p.speed);
    h = mix(h, p.power_watts);
    h = mix(h, p.jobs_in_system);
    h = mix(h, p.window_mean_response_s);
    h = mix(h, p.admit_probability);
  }
  return h;
}

// The shared fixed-seed setup: the 16-server bench cluster on a diurnal
// day compressed to 2400 s, ~one day of load.
struct GoldenRun {
  ClusterConfig config = bench_cluster_config();
  PolicyOptions popts;
  Scenario scenario;

  GoldenRun() {
    popts.dcp = bench_dcp_params();
    scenario = make_scenario(ScenarioKind::kDiurnal, config, /*level=*/0.7,
                             /*seed=*/1234, /*day_s=*/2400.0);
  }

  [[nodiscard]] SimResult run(PolicyKind kind, const SimulationOptions& extra) {
    Workload workload = scenario.make_workload(config, /*seed=*/97);
    const Provisioner solver(config);
    const auto controller = make_policy(kind, &solver, popts);
    ClusterOptions cluster;
    cluster.num_servers = config.max_servers;
    cluster.power = config.power;
    cluster.transition = config.transition;
    cluster.initial_active = config.max_servers;
    cluster.dispatch_seed = 4242;
    SimulationOptions sim = extra;
    sim.t_ref_s = config.t_ref_s;
    sim.warmup_s = popts.dcp.long_period_s;
    sim.record_interval_s = 120.0;
    return run_simulation(workload, cluster, *controller, sim);
  }
};

TEST(DeterminismGolden, CombinedDcpDiurnal) {
  GoldenRun golden;
  const SimResult result = golden.run(PolicyKind::kCombinedDcp, {});
  EXPECT_EQ(checksum(result), 13401298517741172659ULL);
}

TEST(DeterminismGolden, FailureAwareDcpUnderBackgroundFaults) {
  GoldenRun golden;
  SimulationOptions sim;
  sim.faults.mtbf_s = 4000.0;
  sim.faults.mttr_s = 300.0;
  sim.faults.boot_hang_prob = 0.1;
  sim.faults.seed = 77;
  const SimResult result = golden.run(PolicyKind::kDcpFailureAware, sim);
  EXPECT_EQ(checksum(result), 12610961472770440868ULL);
}

TEST(DeterminismGolden, ScriptedFaultScenarioWithAdmission) {
  GoldenRun golden;
  SimulationOptions sim;
  sim.faults.script = {{600.0, 0, 900.0}, {600.0, 1, 900.0}, {601.0, 2, 1200.0},
                       {1200.0, 3, std::numeric_limits<double>::infinity()}};
  sim.faults.seed = 99;
  sim.admission.enabled = true;
  sim.admission.mu_max = golden.config.mu_max;
  const SimResult result = golden.run(PolicyKind::kCombinedDcp, sim);
  EXPECT_EQ(checksum(result), 17454101182521964540ULL);
}

// The checksum itself must be stable across platforms/compilers for the
// goldens to mean anything; pin its behavior on known words.
TEST(DeterminismGolden, ChecksumPrimitiveIsStable) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = mix(h, std::uint64_t{42});
  h = mix(h, 1.5);
  EXPECT_EQ(h, mix(mix(0xcbf29ce484222325ULL, std::uint64_t{42}), 1.5));
  EXPECT_NE(mix(0, std::uint64_t{1}), mix(0, std::uint64_t{2}));
  EXPECT_NE(mix(0, 1.0), mix(0, -1.0));
}

}  // namespace
}  // namespace gc
