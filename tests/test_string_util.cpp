#include "util/string_util.h"

#include <gtest/gtest.h>

namespace gc {
namespace {

TEST(Trim, Basics) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(Split, KeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Split, SingleField) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Split, TrailingSeparator) {
  const auto parts = split("a,b,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "");
}

TEST(Split, EmptyInput) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(ParseDouble, Valid) {
  EXPECT_DOUBLE_EQ(parse_double("3.25").value(), 3.25);
  EXPECT_DOUBLE_EQ(parse_double(" -1e3 ").value(), -1000.0);
  EXPECT_DOUBLE_EQ(parse_double("0").value(), 0.0);
}

TEST(ParseDouble, Invalid) {
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("abc").has_value());
  EXPECT_FALSE(parse_double("1.5x").has_value());
  EXPECT_FALSE(parse_double("1.5 2.5").has_value());
}

TEST(ParseInt, Valid) {
  EXPECT_EQ(parse_int("42").value(), 42);
  EXPECT_EQ(parse_int("-7").value(), -7);
  EXPECT_EQ(parse_int("  123  ").value(), 123);
}

TEST(ParseInt, Invalid) {
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("1.5").has_value());
  EXPECT_FALSE(parse_int("12a").has_value());
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("abcdef", "abc"));
  EXPECT_TRUE(starts_with("abc", ""));
  EXPECT_FALSE(starts_with("ab", "abc"));
}

TEST(Join, Basics) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(ToLower, Basics) {
  EXPECT_EQ(to_lower("AbC"), "abc");
  EXPECT_EQ(to_lower("123-X"), "123-x");
}

}  // namespace
}  // namespace gc
