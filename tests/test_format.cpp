#include "util/format.h"

#include <gtest/gtest.h>

#include <string>

namespace gc {
namespace {

TEST(Format, PlainPassthrough) {
  EXPECT_EQ(format("hello"), "hello");
  EXPECT_EQ(format(""), "");
}

TEST(Format, DefaultPlaceholders) {
  EXPECT_EQ(format("{} {}", 1, 2), "1 2");
  EXPECT_EQ(format("x={}", 3.5), "x=3.5");
  EXPECT_EQ(format("{}", std::string("abc")), "abc");
  EXPECT_EQ(format("{}", "literal"), "literal");
  EXPECT_EQ(format("{}", true), "true");
  EXPECT_EQ(format("{}", false), "false");
}

TEST(Format, IntegerTypes) {
  EXPECT_EQ(format("{}", static_cast<std::size_t>(42)), "42");
  EXPECT_EQ(format("{}", -7), "-7");
  EXPECT_EQ(format("{}", 1234567890123456789LL), "1234567890123456789");
  EXPECT_EQ(format("{}", static_cast<unsigned long long>(18446744073709551615ULL)),
            "18446744073709551615");
}

TEST(Format, FloatSpecs) {
  EXPECT_EQ(format("{:.2f}", 3.14159), "3.14");
  EXPECT_EQ(format("{:.0f}", 2.7), "3");
  EXPECT_EQ(format("{:g}", 1000000.0), "1e+06");
  EXPECT_EQ(format("{:.9g}", 0.125), "0.125");
}

TEST(Format, IntegerWithFloatSpecPromotes) {
  EXPECT_EQ(format("{:.1f}", 5), "5.0");
}

TEST(Format, StringAlignment) {
  EXPECT_EQ(format("{:>5}", std::string("ab")), "   ab");
  EXPECT_EQ(format("{:<5}", std::string("ab")), "ab   ");
  EXPECT_EQ(format("{:>2}", std::string("abcd")), "abcd");  // never truncates
}

TEST(Format, EscapedBraces) {
  EXPECT_EQ(format("{{}}"), "{}");
  EXPECT_EQ(format("{{{}}}", 7), "{7}");
}

TEST(Format, TooFewArgumentsThrows) {
  EXPECT_THROW((void)format("{} {}", 1), std::invalid_argument);
}

TEST(Format, TooManyArgumentsThrows) {
  EXPECT_THROW((void)format("{}", 1, 2), std::invalid_argument);
}

TEST(Format, UnterminatedBraceThrows) {
  EXPECT_THROW((void)format("{", 1), std::invalid_argument);
}

TEST(Format, BadSpecThrows) {
  EXPECT_THROW((void)format("{:%%}", 1.0), std::invalid_argument);
}

TEST(Format, NegativeAndSpecialFloats) {
  EXPECT_EQ(format("{:.1f}", -2.25), "-2.2");
  EXPECT_EQ(format("{}", 0.0), "0");
}

}  // namespace
}  // namespace gc
