#include "power/frequency_ladder.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace gc {
namespace {

TEST(FrequencyLadder, RejectsBadLevels) {
  EXPECT_THROW(FrequencyLadder({}), std::invalid_argument);
  EXPECT_THROW(FrequencyLadder({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(FrequencyLadder({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(FrequencyLadder({0.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(FrequencyLadder({-1.0, 1.0}), std::invalid_argument);
}

TEST(FrequencyLadder, DefaultLadderShape) {
  const FrequencyLadder ladder = FrequencyLadder::default_ladder();
  EXPECT_EQ(ladder.num_levels(), 10u);
  EXPECT_DOUBLE_EQ(ladder.f_max_ghz(), 2.4);
  EXPECT_DOUBLE_EQ(ladder.min_speed(), 0.25);
  EXPECT_DOUBLE_EQ(ladder.speed_of_level(9), 1.0);
  EXPECT_FALSE(ladder.is_continuous());
}

TEST(FrequencyLadder, RoundUpBasics) {
  const FrequencyLadder ladder({1.0, 2.0, 4.0});
  // speeds: 0.25, 0.5, 1.0
  EXPECT_DOUBLE_EQ(ladder.round_up(0.1), 0.25);
  EXPECT_DOUBLE_EQ(ladder.round_up(0.25), 0.25);
  EXPECT_DOUBLE_EQ(ladder.round_up(0.26), 0.5);
  EXPECT_DOUBLE_EQ(ladder.round_up(0.7), 1.0);
  EXPECT_DOUBLE_EQ(ladder.round_up(1.5), 1.0);  // clamps
}

TEST(FrequencyLadder, RoundDownBasics) {
  const FrequencyLadder ladder({1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(ladder.round_down(0.1), 0.25);  // clamps to slowest
  EXPECT_DOUBLE_EQ(ladder.round_down(0.49), 0.25);
  EXPECT_DOUBLE_EQ(ladder.round_down(0.5), 0.5);
  EXPECT_DOUBLE_EQ(ladder.round_down(0.99), 0.5);
  EXPECT_DOUBLE_EQ(ladder.round_down(1.0), 1.0);
}

TEST(FrequencyLadder, Contains) {
  const FrequencyLadder ladder({1.2, 2.4});
  EXPECT_TRUE(ladder.contains(0.5));
  EXPECT_TRUE(ladder.contains(1.0));
  EXPECT_FALSE(ladder.contains(0.75));
}

TEST(FrequencyLadder, ContinuousLadder) {
  const FrequencyLadder ladder = FrequencyLadder::continuous(0.2);
  EXPECT_TRUE(ladder.is_continuous());
  EXPECT_DOUBLE_EQ(ladder.round_up(0.5), 0.5);
  EXPECT_DOUBLE_EQ(ladder.round_up(0.05), 0.2);
  EXPECT_DOUBLE_EQ(ladder.round_up(1.7), 1.0);
  EXPECT_DOUBLE_EQ(ladder.round_down(0.05), 0.2);
  EXPECT_TRUE(ladder.contains(0.77));
  EXPECT_FALSE(ladder.contains(0.1));
}

TEST(FrequencyLadder, ContinuousRejectsBadMinSpeed) {
  EXPECT_THROW(FrequencyLadder::continuous(0.0), std::invalid_argument);
  EXPECT_THROW(FrequencyLadder::continuous(1.5), std::invalid_argument);
}

// Property sweep: for every target speed s, round_up(s) is the smallest
// ladder speed >= s, and round_down(s) the largest <= s (within clamps).
class LadderRoundingProperty : public ::testing::TestWithParam<double> {};

TEST_P(LadderRoundingProperty, RoundUpIsTightMajorant) {
  const FrequencyLadder ladder = FrequencyLadder::default_ladder();
  const double s = GetParam();
  const double up = ladder.round_up(s);
  EXPECT_TRUE(ladder.contains(up));
  if (s <= 1.0) {
    EXPECT_GE(up, s - 1e-9);
    // No ladder level strictly between s and up.
    for (std::size_t i = 0; i < ladder.num_levels(); ++i) {
      const double level = ladder.speed_of_level(i);
      EXPECT_FALSE(level >= s + 1e-9 && level < up - 1e-9)
          << "level " << level << " between " << s << " and " << up;
    }
  }
}

TEST_P(LadderRoundingProperty, RoundDownIsTightMinorant) {
  const FrequencyLadder ladder = FrequencyLadder::default_ladder();
  const double s = GetParam();
  const double down = ladder.round_down(s);
  EXPECT_TRUE(ladder.contains(down));
  if (s >= ladder.min_speed()) {
    EXPECT_LE(down, s + 1e-9);
    for (std::size_t i = 0; i < ladder.num_levels(); ++i) {
      const double level = ladder.speed_of_level(i);
      EXPECT_FALSE(level > down + 1e-9 && level <= s - 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SpeedSweep, LadderRoundingProperty,
                         ::testing::Values(0.01, 0.2, 0.25, 0.3, 0.41666, 0.5, 0.58,
                                           0.7499, 0.75, 0.9, 0.999, 1.0, 1.2));

}  // namespace
}  // namespace gc
